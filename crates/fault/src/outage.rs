//! Seeded schedules of whole-node outages (crash → reboot → recover).
//!
//! Where [`crate::plan::FaultPlan`] injects faults *inside* a running
//! kernel, an [`OutagePlan`] takes the whole node down: at the crash round
//! the node stops executing and loses all volatile state; at the recover
//! round it reboots from its boot image. The fleet layer owns the reboot
//! mechanics; this type owns the *when*, reproducible from a single seed.

use sep_model::rng::SplitMix64;

/// One scheduled outage: the node is down for every round in
/// `[crash, recover)` and reboots at the start of `recover`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Outage {
    /// First round the node is down.
    pub crash: u64,
    /// First round the node is back up (exclusive end of the outage).
    pub recover: u64,
}

impl Outage {
    /// Rounds the node spends down.
    pub fn down_rounds(&self) -> u64 {
        self.recover - self.crash
    }
}

/// A reproducible schedule of non-overlapping outages, sorted by crash
/// round.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OutagePlan {
    seed: u64,
    outages: Vec<Outage>,
}

impl OutagePlan {
    /// An empty plan (the node never crashes).
    pub fn none() -> OutagePlan {
        OutagePlan::default()
    }

    /// A single outage: down for `down_rounds` starting at `crash`.
    pub fn single(crash: u64, down_rounds: u64) -> OutagePlan {
        let mut p = OutagePlan::none();
        p.add(crash, down_rounds);
        p
    }

    /// Adds one outage, keeping the schedule sorted.
    ///
    /// # Panics
    ///
    /// Panics on a zero-length outage or one that overlaps or touches an
    /// existing one (touching outages would merge the reboot round of the
    /// first into the crash round of the second).
    pub fn add(&mut self, crash: u64, down_rounds: u64) {
        assert!(down_rounds > 0, "an outage must last at least one round");
        let o = Outage {
            crash,
            recover: crash + down_rounds,
        };
        assert!(
            self.outages
                .iter()
                .all(|e| o.recover < e.crash || e.recover < o.crash),
            "outage [{}, {}) overlaps or touches an existing one",
            o.crash,
            o.recover
        );
        self.outages.push(o);
        self.outages.sort_by_key(|o| o.crash);
    }

    /// Generates `count` non-overlapping outages over `[0, horizon)`,
    /// reproducible from `seed`. The horizon is cut into `count` equal
    /// slices; each slice gets one outage lasting between `min_down` and
    /// `max_down` rounds (clamped to fit its slice, so outages can never
    /// touch). Panics if a slice is too small to hold `min_down` plus one
    /// up round on either side.
    pub fn generate(
        seed: u64,
        horizon: u64,
        count: usize,
        min_down: u64,
        max_down: u64,
    ) -> OutagePlan {
        assert!(count > 0, "outage plan needs at least one outage");
        assert!(min_down > 0, "an outage must last at least one round");
        assert!(min_down <= max_down, "min_down must not exceed max_down");
        let slice = horizon / count as u64;
        assert!(
            slice >= min_down + 2,
            "horizon too short for {count} outages of at least {min_down} rounds"
        );
        let mut rng = SplitMix64::new(seed);
        let outages = (0..count as u64)
            .map(|i| {
                let lo = i * slice;
                // Keep one up round at each end of the slice so adjacent
                // outages never merge into one long one.
                let down = min_down + rng.below((max_down - min_down + 1) as usize) as u64;
                let down = down.min(slice - 2);
                let crash = lo + 1 + rng.below((slice - down - 1) as usize) as u64;
                Outage {
                    crash,
                    recover: crash + down,
                }
            })
            .collect();
        OutagePlan { seed, outages }
    }

    /// The seed this plan was generated from (recorded in reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled outages, sorted by crash round.
    pub fn outages(&self) -> &[Outage] {
        &self.outages
    }

    /// True if no outage is scheduled.
    pub fn is_empty(&self) -> bool {
        self.outages.is_empty()
    }

    /// True while `round` falls inside an outage.
    pub fn down_at(&self, round: u64) -> bool {
        self.outages
            .iter()
            .any(|o| o.crash <= round && round < o.recover)
    }

    /// True exactly at the reboot round that closes an outage.
    pub fn recovers_at(&self, round: u64) -> bool {
        self.outages.iter().any(|o| o.recover == round)
    }

    /// Total down rounds over the whole schedule.
    pub fn total_down(&self) -> u64 {
        self.outages.iter().map(Outage::down_rounds).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = OutagePlan::generate(11, 1000, 4, 10, 50);
        let b = OutagePlan::generate(11, 1000, 4, 10, 50);
        assert_eq!(a, b);
        let c = OutagePlan::generate(12, 1000, 4, 10, 50);
        assert_ne!(a, c);
    }

    #[test]
    fn generated_outages_are_sorted_disjoint_and_bounded() {
        let p = OutagePlan::generate(3, 800, 5, 5, 40);
        assert_eq!(p.outages().len(), 5);
        let mut last_recover = 0;
        for o in p.outages() {
            assert!(o.crash > last_recover || last_recover == 0);
            assert!(o.crash >= last_recover, "outages overlap");
            assert!(o.recover > o.crash);
            assert!(o.down_rounds() >= 5);
            assert!(o.down_rounds() <= 40);
            assert!(o.recover < 800);
            last_recover = o.recover;
        }
    }

    #[test]
    fn down_at_and_recovers_at_mark_the_half_open_interval() {
        let p = OutagePlan::single(10, 3);
        assert!(!p.down_at(9));
        assert!(p.down_at(10));
        assert!(p.down_at(12));
        assert!(!p.down_at(13));
        assert!(p.recovers_at(13));
        assert!(!p.recovers_at(12));
        assert_eq!(p.total_down(), 3);
    }

    #[test]
    fn empty_plan_is_inert() {
        let p = OutagePlan::none();
        assert!(p.is_empty());
        assert!(!p.down_at(0));
        assert!(!p.recovers_at(0));
        assert_eq!(p.total_down(), 0);
    }
}

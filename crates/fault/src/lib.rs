//! Deterministic, seeded fault injection.
//!
//! Rushby's separation argument is only interesting if it survives
//! misbehaviour: a regime that scribbles on itself, a device that glitches,
//! a wire that drops frames. This crate supplies the *adversary* half of
//! that argument — reproducible fault schedules — while the kernel and
//! network supply the *containment* half (restart policies, `PeerDown`,
//! CRC framing, retransmission).
//!
//! Everything here is driven by [`sep_model::rng::SplitMix64`], so an
//! entire fault campaign is reproducible from a single `u64` seed. The
//! experiment reports record that seed (`BENCH_obs_e9_fault_storm.json`),
//! which turns any CI failure into a one-command repro.
//!
//! * [`plan`] — [`plan::FaultPlan`]: a schedule of kernel-side faults
//!   (memory bit-flips inside a regime's partition, spurious or dropped
//!   interrupts, serial line errors, outright regime faults).
//! * [`outage`] — [`outage::OutagePlan`]: whole-node crash/recover
//!   schedules (the node loses all volatile state and reboots from its
//!   boot image at the recover round).
//! * [`loss`] — [`loss::LossModel`]: per-link wire misbehaviour
//!   (drop/duplicate/reorder/corrupt) expressed in per-mille rates.

#![forbid(unsafe_code)]

pub mod loss;
pub mod outage;
pub mod plan;

pub use loss::{LossModel, WireFault};
pub use outage::{Outage, OutagePlan};
pub use plan::{FaultKind, FaultPlan, PlannedFault};

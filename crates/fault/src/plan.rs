//! Seeded schedules of kernel-side faults.

use sep_model::rng::SplitMix64;

/// One kind of injectable fault. The kernel applies these through its
/// injection API (`sep_kernel::fault`); each maps onto a physical
/// misbehaviour the SUE's hardware could exhibit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum FaultKind {
    /// The regime is stopped as if it had trapped (a crashed program).
    RegimeFault,
    /// One bit of the regime's partition flips (a memory glitch).
    MemBitFlip {
        /// Byte offset within the partition.
        offset: u32,
        /// Bit index 0–7.
        bit: u8,
    },
    /// A spurious interrupt is queued for the regime (a noisy device).
    SpuriousInterrupt,
    /// The regime's oldest pending interrupt is silently dropped.
    DropInterrupt,
    /// A garbage byte arrives on the regime's serial line (line noise).
    SerialError,
}

/// A fault scheduled for a specific kernel step.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PlannedFault {
    /// The kernel step (stat `steps`) at which to inject.
    pub step: u64,
    /// The target regime index.
    pub regime: usize,
    /// What to inject.
    pub kind: FaultKind,
}

/// A reproducible schedule of faults, generated from a single seed and
/// drained in step order via [`FaultPlan::due`].
#[derive(Debug, Clone)]
pub struct FaultPlan {
    seed: u64,
    faults: Vec<PlannedFault>,
    cursor: usize,
}

impl FaultPlan {
    /// An empty plan (injection off). Keeping the harness code identical
    /// between fault-on and fault-off runs is what makes the differential
    /// non-interference test honest.
    pub fn none() -> FaultPlan {
        FaultPlan {
            seed: 0,
            faults: Vec::new(),
            cursor: 0,
        }
    }

    /// Generates `count` faults against `targets`, uniformly over
    /// `[0, steps)`, reproducible from `seed`. `partition_size` bounds the
    /// bit-flip offsets.
    pub fn generate(
        seed: u64,
        targets: &[usize],
        steps: u64,
        count: usize,
        partition_size: u32,
    ) -> FaultPlan {
        assert!(!targets.is_empty(), "fault plan needs at least one target");
        assert!(steps > 0, "fault plan needs a positive step horizon");
        let mut rng = SplitMix64::new(seed);
        let mut faults: Vec<PlannedFault> = (0..count)
            .map(|_| {
                let step = rng.below(steps as usize) as u64;
                let regime = targets[rng.below(targets.len())];
                let kind = match rng.below(5) {
                    0 => FaultKind::RegimeFault,
                    1 => FaultKind::MemBitFlip {
                        offset: rng.below(partition_size as usize) as u32,
                        bit: rng.below(8) as u8,
                    },
                    2 => FaultKind::SpuriousInterrupt,
                    3 => FaultKind::DropInterrupt,
                    _ => FaultKind::SerialError,
                };
                PlannedFault { step, regime, kind }
            })
            .collect();
        faults.sort_by_key(|f| f.step);
        FaultPlan {
            seed,
            faults,
            cursor: 0,
        }
    }

    /// The seed this plan was generated from (recorded in reports).
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// All scheduled faults, in step order.
    pub fn faults(&self) -> &[PlannedFault] {
        &self.faults
    }

    /// Faults not yet drained by [`FaultPlan::due`].
    pub fn remaining(&self) -> usize {
        self.faults.len() - self.cursor
    }

    /// The step at which the next undrained fault fires, if any. Batched
    /// drivers use this to run fault-free stretches through a kernel's
    /// `step_n` hot path and only re-check [`FaultPlan::due`] (which
    /// allocates) at actual due points.
    pub fn next_due(&self) -> Option<u64> {
        self.faults.get(self.cursor).map(|f| f.step)
    }

    /// Drains every fault scheduled at or before `step`, in order.
    pub fn due(&mut self, step: u64) -> Vec<PlannedFault> {
        let start = self.cursor;
        while self.cursor < self.faults.len() && self.faults[self.cursor].step <= step {
            self.cursor += 1;
        }
        self.faults[start..self.cursor].to_vec()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_plan() {
        let a = FaultPlan::generate(42, &[0, 1], 1000, 16, 8192);
        let b = FaultPlan::generate(42, &[0, 1], 1000, 16, 8192);
        assert_eq!(a.faults(), b.faults());
        let c = FaultPlan::generate(43, &[0, 1], 1000, 16, 8192);
        assert_ne!(a.faults(), c.faults());
    }

    #[test]
    fn due_drains_in_step_order() {
        let mut p = FaultPlan::generate(7, &[0], 100, 10, 8192);
        assert_eq!(p.remaining(), 10);
        let mut seen = 0;
        let mut last = 0;
        for step in 0..100 {
            for f in p.due(step) {
                assert!(f.step <= step);
                assert!(f.step >= last, "plan not sorted");
                last = f.step;
                seen += 1;
            }
        }
        assert_eq!(seen, 10);
        assert_eq!(p.remaining(), 0);
        assert!(p.due(1000).is_empty());
    }

    #[test]
    fn bit_flips_stay_inside_the_partition() {
        let p = FaultPlan::generate(9, &[2], 50, 64, 128);
        for f in p.faults() {
            assert_eq!(f.regime, 2);
            if let FaultKind::MemBitFlip { offset, bit } = f.kind {
                assert!(offset < 128);
                assert!(bit < 8);
            }
        }
    }

    #[test]
    fn empty_plan_is_inert() {
        let mut p = FaultPlan::none();
        assert_eq!(p.remaining(), 0);
        assert!(p.due(u64::MAX).is_empty());
    }

    /// A hand-built plan for the `next_due` boundary cases (batched
    /// drivers slice `step_n` runs on this value).
    fn plan_at(steps: &[u64]) -> FaultPlan {
        let mut faults: Vec<PlannedFault> = steps
            .iter()
            .map(|&step| PlannedFault {
                step,
                regime: 0,
                kind: FaultKind::SerialError,
            })
            .collect();
        faults.sort_by_key(|f| f.step);
        FaultPlan {
            seed: 0,
            faults,
            cursor: 0,
        }
    }

    #[test]
    fn next_due_on_empty_plan_is_none() {
        assert_eq!(FaultPlan::none().next_due(), None);
    }

    #[test]
    fn next_due_at_step_zero_fires_before_any_batch() {
        // A fault due at step 0 must be visible before the first step runs
        // — a batched driver that asked for a fault-free stretch first
        // would inject one step late.
        let mut p = plan_at(&[0, 5]);
        assert_eq!(p.next_due(), Some(0));
        let drained = p.due(0);
        assert_eq!(drained.len(), 1);
        assert_eq!(drained[0].step, 0);
        assert_eq!(p.next_due(), Some(5));
    }

    #[test]
    fn next_due_with_two_faults_in_one_slot_drains_both_at_once() {
        // Two faults in the same slot: `next_due` reports the slot once,
        // and one `due` call at that step must drain both — a driver that
        // assumed one-fault-per-slot would re-run the batch boundary and
        // double-apply.
        let mut p = plan_at(&[3, 3, 7]);
        assert_eq!(p.next_due(), Some(3));
        let drained = p.due(3);
        assert_eq!(drained.len(), 2);
        assert!(drained.iter().all(|f| f.step == 3));
        assert_eq!(p.next_due(), Some(7));
        assert_eq!(p.remaining(), 1);
        // Draining past the end leaves `next_due` empty for good.
        assert_eq!(p.due(7).len(), 1);
        assert_eq!(p.next_due(), None);
        assert!(p.due(u64::MAX).is_empty());
    }
}

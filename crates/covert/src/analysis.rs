//! Empirical interference probing.
//!
//! A dynamic, falsification-only check: run the same system twice, varying
//! only what a HIGH party does, and compare everything a LOW party
//! observes. Any difference is a channel (the converse does not hold — this
//! finds leaks, it cannot prove their absence; that is what Proof of
//! Separability is for).

/// The result of an interference probe.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InterferenceReport {
    /// Whether the LOW observations differed.
    pub interferes: bool,
    /// Index of the first differing observation, if any.
    pub first_difference: Option<usize>,
    /// Number of observations compared.
    pub compared: usize,
}

/// Runs `experiment` once per HIGH behaviour and compares the LOW
/// observation streams it returns.
///
/// `experiment` receives the behaviour selector and must return the LOW
/// side's complete observation sequence for that run.
pub fn probe_interference<B, F, O>(behaviours: &[B], mut experiment: F) -> InterferenceReport
where
    F: FnMut(&B) -> Vec<O>,
    O: PartialEq,
{
    assert!(behaviours.len() >= 2, "need at least two HIGH behaviours");
    let baseline = experiment(&behaviours[0]);
    let mut compared = baseline.len();
    for b in &behaviours[1..] {
        let other = experiment(b);
        compared = compared.max(other.len());
        let n = baseline.len().min(other.len());
        for i in 0..n {
            if baseline[i] != other[i] {
                return InterferenceReport {
                    interferes: true,
                    first_difference: Some(i),
                    compared,
                };
            }
        }
        if baseline.len() != other.len() {
            return InterferenceReport {
                interferes: true,
                first_difference: Some(n),
                compared,
            };
        }
    }
    InterferenceReport {
        interferes: false,
        first_difference: None,
        compared,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_observations_do_not_interfere() {
        let report = probe_interference(&[0u8, 1, 2], |_| vec![1u8, 2, 3]);
        assert!(!report.interferes);
        assert_eq!(report.compared, 3);
    }

    #[test]
    fn differing_observations_interfere() {
        let report = probe_interference(&[0u8, 1], |b| vec![1u8, *b, 3]);
        assert!(report.interferes);
        assert_eq!(report.first_difference, Some(1));
    }

    #[test]
    fn length_differences_interfere() {
        let report = probe_interference(&[1usize, 2], |b| vec![0u8; *b]);
        assert!(report.interferes);
        assert_eq!(report.first_difference, Some(1));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn single_behaviour_panics() {
        probe_interference(&[0u8], |_| vec![0u8]);
    }
}

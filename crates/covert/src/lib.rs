//! Covert-channel measurement.
//!
//! The paper's claim about the SNFE censor is quantitative in character:
//! "a fairly simple censor can reduce the bandwidth available for illicit
//! communication over the bypass to an acceptable level." This crate
//! provides the measuring instruments:
//!
//! * [`estimate`] — empirical entropy, mutual information, and
//!   binary-symmetric-channel capacity;
//! * [`channel`] — end-to-end covert channel scoring: given what the
//!   insider tried to send and what the accomplice recovered, the achieved
//!   accuracy and effective bandwidth in bits per round;
//! * [`analysis`] — an empirical interference probe: run a system twice
//!   differing only in HIGH behaviour and diff the LOW observations (a
//!   dynamic, falsification-only complement to Proof of Separability).

#![forbid(unsafe_code)]

pub mod analysis;
pub mod channel;
pub mod estimate;

pub use analysis::{probe_interference, InterferenceReport};
pub use channel::{score_transfer, TransferScore};
pub use estimate::{binary_entropy, bsc_capacity, entropy, mutual_information};

//! Scoring an attempted covert transfer.

use crate::estimate::bsc_capacity;

/// The outcome of one covert-transfer attempt.
#[derive(Debug, Clone, PartialEq)]
pub struct TransferScore {
    /// Bits the insider attempted to transfer.
    pub bits_attempted: usize,
    /// Bits the accomplice recovered correctly (position-wise).
    pub bits_correct: usize,
    /// Bit error rate over the attempted bits.
    pub error_rate: f64,
    /// Effective bandwidth in bits per round, discounting errors by
    /// binary-symmetric-channel capacity.
    pub bits_per_round: f64,
}

/// Compares the secret the insider tried to send with what the accomplice
/// recovered, over a run of `rounds` rounds.
///
/// Recovered data shorter than the secret counts the missing tail as
/// errored at rate ½ (unknown bits); longer recoveries are truncated.
pub fn score_transfer(secret: &[u8], recovered: &[u8], rounds: u64) -> TransferScore {
    let bits_attempted = secret.len() * 8;
    let mut bits_correct = 0usize;
    let mut compared = 0usize;
    for (s, r) in secret.iter().zip(recovered.iter()) {
        for bit in 0..8 {
            compared += 1;
            if (s >> bit) & 1 == (r >> bit) & 1 {
                bits_correct += 1;
            }
        }
    }
    // Missing tail: a guess is right half the time.
    let missing = bits_attempted.saturating_sub(compared);
    let effective_correct = bits_correct as f64 + missing as f64 * 0.5;
    let error_rate = if bits_attempted == 0 {
        0.0
    } else {
        1.0 - effective_correct / bits_attempted as f64
    };
    let capacity = bsc_capacity(error_rate);
    let bits_per_round = if rounds == 0 {
        0.0
    } else {
        capacity * bits_attempted as f64 / rounds as f64
    };
    TransferScore {
        bits_attempted,
        bits_correct,
        error_rate,
        bits_per_round,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_transfer_scores_full_bandwidth() {
        let secret = b"leak this";
        let score = score_transfer(secret, secret, 72);
        assert_eq!(score.bits_attempted, 72);
        assert_eq!(score.bits_correct, 72);
        assert!(score.error_rate.abs() < 1e-9);
        assert!((score.bits_per_round - 1.0).abs() < 1e-9);
    }

    #[test]
    fn garbled_transfer_scores_near_zero() {
        // Recovered bits uncorrelated with the secret (alternating vs 0x55
        // complement patterns give ~50% agreement).
        let secret = vec![0b0101_0101u8; 32];
        let recovered = vec![0b0011_0011u8; 32];
        let score = score_transfer(&secret, &recovered, 256);
        assert!((score.error_rate - 0.5).abs() < 0.1);
        assert!(score.bits_per_round < 0.3);
    }

    #[test]
    fn truncated_recovery_counts_missing_as_half() {
        let secret = vec![0xFFu8; 4];
        let recovered = vec![0xFFu8; 2];
        let score = score_transfer(&secret, &recovered, 32);
        assert_eq!(score.bits_correct, 16);
        assert!((score.error_rate - 0.25).abs() < 1e-9);
    }

    #[test]
    fn empty_secret_scores_zero() {
        let score = score_transfer(&[], &[], 100);
        assert_eq!(score.bits_attempted, 0);
        assert_eq!(score.bits_per_round, 0.0);
    }

    #[test]
    fn zero_rounds_yields_zero_bandwidth() {
        let score = score_transfer(b"x", b"x", 0);
        assert_eq!(score.bits_per_round, 0.0);
    }
}

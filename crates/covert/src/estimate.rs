//! Empirical information-theoretic estimators.

use std::collections::HashMap;

/// Shannon entropy (bits/symbol) of an empirical distribution over symbols.
pub fn entropy<T: std::hash::Hash + Eq>(symbols: &[T]) -> f64 {
    if symbols.is_empty() {
        return 0.0;
    }
    let mut counts: HashMap<&T, usize> = HashMap::new();
    for s in symbols {
        *counts.entry(s).or_insert(0) += 1;
    }
    let n = symbols.len() as f64;
    counts
        .values()
        .map(|&c| {
            let p = c as f64 / n;
            -p * p.log2()
        })
        .sum()
}

/// The binary entropy function `H₂(p)`.
pub fn binary_entropy(p: f64) -> f64 {
    if p <= 0.0 || p >= 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Capacity (bits/use) of a binary symmetric channel with error rate `p`.
pub fn bsc_capacity(p: f64) -> f64 {
    1.0 - binary_entropy(p.clamp(0.0, 1.0))
}

/// Empirical mutual information `I(X;Y)` (bits/symbol) between paired
/// sequences.
///
/// # Panics
///
/// Panics when the sequences have different lengths.
pub fn mutual_information<T, U>(xs: &[T], ys: &[U]) -> f64
where
    T: std::hash::Hash + Eq,
    U: std::hash::Hash + Eq,
{
    assert_eq!(xs.len(), ys.len(), "paired sequences must align");
    if xs.is_empty() {
        return 0.0;
    }
    let n = xs.len() as f64;
    let mut px: HashMap<&T, f64> = HashMap::new();
    let mut py: HashMap<&U, f64> = HashMap::new();
    let mut pxy: HashMap<(&T, &U), f64> = HashMap::new();
    for (x, y) in xs.iter().zip(ys) {
        *px.entry(x).or_insert(0.0) += 1.0 / n;
        *py.entry(y).or_insert(0.0) += 1.0 / n;
        *pxy.entry((x, y)).or_insert(0.0) += 1.0 / n;
    }
    pxy.iter()
        .map(|((x, y), &pj)| pj * (pj / (px[x] * py[y])).log2())
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) {
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn entropy_of_uniform_bits_is_one() {
        let xs: Vec<u8> = (0..1000).map(|i| (i % 2) as u8).collect();
        close(entropy(&xs), 1.0);
    }

    #[test]
    fn entropy_of_constant_is_zero() {
        close(entropy(&[7u8; 100]), 0.0);
        close(entropy::<u8>(&[]), 0.0);
    }

    #[test]
    fn binary_entropy_peaks_at_half() {
        close(binary_entropy(0.5), 1.0);
        close(binary_entropy(0.0), 0.0);
        close(binary_entropy(1.0), 0.0);
        assert!(binary_entropy(0.1) < binary_entropy(0.3));
    }

    #[test]
    fn bsc_capacity_is_complement_of_entropy() {
        close(bsc_capacity(0.0), 1.0);
        close(bsc_capacity(0.5), 0.0);
        close(bsc_capacity(1.0), 1.0); // a perfectly inverted channel is perfect
    }

    #[test]
    fn mi_of_identical_sequences_is_entropy() {
        let xs: Vec<u8> = (0..1024).map(|i| (i % 4) as u8).collect();
        close(mutual_information(&xs, &xs), entropy(&xs));
    }

    #[test]
    fn mi_of_independent_sequences_is_near_zero() {
        let xs: Vec<u8> = (0..1024).map(|i| (i % 2) as u8).collect();
        let ys: Vec<u8> = (0..1024).map(|i| ((i / 2) % 2) as u8).collect();
        assert!(mutual_information(&xs, &ys).abs() < 1e-9);
    }

    #[test]
    fn mi_is_symmetric() {
        let xs: Vec<u8> = (0..256).map(|i| (i % 3) as u8).collect();
        let ys: Vec<u8> = (0..256).map(|i| ((i + 1) % 3) as u8).collect();
        close(mutual_information(&xs, &ys), mutual_information(&ys, &xs));
    }

    #[test]
    #[should_panic(expected = "must align")]
    fn mismatched_lengths_panic() {
        mutual_information(&[1u8], &[1u8, 2]);
    }
}

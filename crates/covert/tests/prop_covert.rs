//! Gated behind the `ext-tests` feature: this suite needs the `proptest`
//! crate, which the offline tier-1 environment cannot download. Restore the
//! dev-dependency (see Cargo.toml) and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

//! Property tests for the information-theoretic estimators.

use proptest::prelude::*;
use sep_covert::channel::score_transfer;
use sep_covert::estimate::{binary_entropy, bsc_capacity, entropy, mutual_information};

proptest! {
    #[test]
    fn entropy_is_bounded(xs in prop::collection::vec(0u8..8, 1..300)) {
        let h = entropy(&xs);
        let distinct = xs.iter().collect::<std::collections::HashSet<_>>().len();
        prop_assert!(h >= -1e-9);
        prop_assert!(h <= (distinct as f64).log2() + 1e-9);
    }

    #[test]
    fn mutual_information_is_nonnegative_and_bounded(
        pairs in prop::collection::vec((0u8..4, 0u8..4), 1..300),
    ) {
        let xs: Vec<u8> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<u8> = pairs.iter().map(|p| p.1).collect();
        let mi = mutual_information(&xs, &ys);
        prop_assert!(mi >= -1e-9, "{mi}");
        prop_assert!(mi <= entropy(&xs) + 1e-9);
        prop_assert!(mi <= entropy(&ys) + 1e-9);
    }

    #[test]
    fn mi_symmetry(pairs in prop::collection::vec((0u8..4, 0u8..4), 1..200)) {
        let xs: Vec<u8> = pairs.iter().map(|p| p.0).collect();
        let ys: Vec<u8> = pairs.iter().map(|p| p.1).collect();
        let a = mutual_information(&xs, &ys);
        let b = mutual_information(&ys, &xs);
        prop_assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn binary_entropy_symmetry(p in 0.0f64..=1.0) {
        prop_assert!((binary_entropy(p) - binary_entropy(1.0 - p)).abs() < 1e-9);
        prop_assert!(binary_entropy(p) >= -1e-9 && binary_entropy(p) <= 1.0 + 1e-9);
    }

    #[test]
    fn bsc_capacity_bounded(p in 0.0f64..=1.0) {
        let c = bsc_capacity(p);
        prop_assert!((0.0..=1.0).contains(&(c + 1e-12)));
    }

    #[test]
    fn score_transfer_is_lawful(
        secret in prop::collection::vec(any::<u8>(), 0..64),
        recovered in prop::collection::vec(any::<u8>(), 0..64),
        rounds in 1u64..10_000,
    ) {
        let s = score_transfer(&secret, &recovered, rounds);
        prop_assert_eq!(s.bits_attempted, secret.len() * 8);
        prop_assert!(s.bits_correct <= s.bits_attempted);
        prop_assert!((0.0..=1.0).contains(&s.error_rate), "{}", s.error_rate);
        prop_assert!(s.bits_per_round >= 0.0);
        prop_assert!(s.bits_per_round <= s.bits_attempted as f64 / rounds as f64 + 1e-9);
    }

    #[test]
    fn perfect_recovery_scores_zero_error(secret in prop::collection::vec(any::<u8>(), 1..64)) {
        let s = score_transfer(&secret, &secret, 100);
        prop_assert!(s.error_rate.abs() < 1e-12);
        prop_assert_eq!(s.bits_correct, s.bits_attempted);
    }
}

//! Network topology behaviours: latency, multi-hop pipelines, and
//! determinism under richer shapes than the unit tests cover.

use sep_distributed::node::{Node, NodeIo};
use sep_distributed::Network;

/// Forwards everything from "in" to "out", stamping nothing.
struct Relay(String);

impl Node for Relay {
    fn name(&self) -> &str {
        &self.0
    }

    fn step(&mut self, io: &mut dyn NodeIo) {
        while let Some(m) = io.recv("in") {
            let _ = io.send("out", m);
        }
    }
}

/// Emits one numbered frame per round for `n` rounds.
struct Counter {
    name: String,
    n: u8,
    sent: u8,
}

impl Node for Counter {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, io: &mut dyn NodeIo) {
        if self.sent < self.n && io.send("out", vec![self.sent]).is_ok() {
            self.sent += 1;
        }
    }
}

/// Records arrival rounds.
struct Stamper {
    name: String,
    arrivals: Vec<(u64, Vec<u8>)>,
}

impl Node for Stamper {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, io: &mut dyn NodeIo) {
        while let Some(m) = io.recv("in") {
            self.arrivals.push((io.round(), m));
        }
    }
}

#[test]
fn latency_accumulates_across_hops() {
    // counter → relay → relay → stamper, one-round wires: frame 0 emitted
    // in round 0 arrives in round 3.
    let mut net = Network::new();
    let c = net.add_node(Box::new(Counter {
        name: "c".into(),
        n: 3,
        sent: 0,
    }));
    let r1 = net.add_node(Box::new(Relay("r1".into())));
    let r2 = net.add_node(Box::new(Relay("r2".into())));
    let s = net.add_node(Box::new(Stamper {
        name: "s".into(),
        arrivals: Vec::new(),
    }));
    net.connect(c, "out", r1, "in", 8, 1);
    net.connect(r1, "out", r2, "in", 8, 1);
    net.connect(r2, "out", s, "in", 8, 1);
    net.run(10);
    let trace = net.traces.trace("s").to_vec();
    // Frames arrive in order, exactly three of them.
    let recvs: Vec<&String> = trace.iter().filter(|e| e.starts_with("recv")).collect();
    assert_eq!(recvs.len(), 3);
    assert!(recvs[0].ends_with("00"));
    assert!(recvs[2].ends_with("02"));
}

#[test]
fn high_latency_wire_delays_delivery() {
    let mut net = Network::new();
    let c = net.add_node(Box::new(Counter {
        name: "c".into(),
        n: 1,
        sent: 0,
    }));
    let s = net.add_node(Box::new(Stamper {
        name: "s".into(),
        arrivals: Vec::new(),
    }));
    net.connect(c, "out", s, "in", 8, 5);
    net.run(4);
    assert!(net.traces.trace("s").is_empty(), "not yet deliverable");
    net.run(3);
    assert_eq!(
        net.traces
            .trace("s")
            .iter()
            .filter(|e| e.starts_with("recv"))
            .count(),
        1
    );
}

#[test]
fn fan_in_preserves_per_wire_fifo() {
    // Two counters into one stamper on separate ports.
    let mut net = Network::new();
    let a = net.add_node(Box::new(Counter {
        name: "a".into(),
        n: 4,
        sent: 0,
    }));
    let b = net.add_node(Box::new(Counter {
        name: "b".into(),
        n: 4,
        sent: 0,
    }));
    struct TwoPort {
        a_seen: Vec<u8>,
        b_seen: Vec<u8>,
    }
    impl Node for TwoPort {
        fn name(&self) -> &str {
            "two"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            while let Some(m) = io.recv("a") {
                self.a_seen.push(m[0]);
            }
            while let Some(m) = io.recv("b") {
                self.b_seen.push(m[0]);
            }
        }
    }
    let t = net.add_node(Box::new(TwoPort {
        a_seen: Vec::new(),
        b_seen: Vec::new(),
    }));
    net.connect(a, "out", t, "a", 8, 1);
    net.connect(b, "out", t, "b", 8, 2);
    net.run(12);
    // Inspect through a fresh run is impossible (nodes are consumed), so
    // assert through traces: both streams fully received, in order.
    let events = net.traces.trace("two").to_vec();
    let a_stream: Vec<&String> = events.iter().filter(|e| e.starts_with("recv a")).collect();
    let b_stream: Vec<&String> = events.iter().filter(|e| e.starts_with("recv b")).collect();
    assert_eq!(a_stream.len(), 4);
    assert_eq!(b_stream.len(), 4);
    assert!(a_stream.windows(2).all(|w| w[0] <= w[1]));
}

//! Wires: dedicated, unidirectional communication lines.

use std::collections::VecDeque;

/// A unidirectional FIFO line between two node ports.
#[derive(Debug, Clone)]
pub struct Wire {
    /// Source node index.
    pub from_node: usize,
    /// Source port name.
    pub from_port: String,
    /// Destination node index.
    pub to_node: usize,
    /// Destination port name.
    pub to_port: String,
    /// Maximum messages in flight.
    pub capacity: usize,
    /// Rounds between send and earliest delivery (≥ 1).
    pub latency: u64,
    queue: VecDeque<(u64, Vec<u8>)>, // (deliverable-at round, payload)
}

impl Wire {
    /// A wire with the given capacity and latency.
    pub fn new(
        from_node: usize,
        from_port: &str,
        to_node: usize,
        to_port: &str,
        capacity: usize,
        latency: u64,
    ) -> Wire {
        assert!(capacity > 0, "wire capacity must be positive");
        assert!(latency > 0, "wire latency must be at least one round");
        Wire {
            from_node,
            from_port: from_port.to_string(),
            to_node,
            to_port: to_port.to_string(),
            capacity,
            latency,
            queue: VecDeque::new(),
        }
    }

    /// True when another message can be enqueued.
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Number of messages in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a message sent at `round`.
    ///
    /// # Panics
    ///
    /// Panics when the wire is full (callers check [`Wire::has_room`]).
    pub fn push(&mut self, round: u64, msg: Vec<u8>) {
        assert!(self.has_room(), "wire overflow");
        self.queue.push_back((round + self.latency, msg));
    }

    /// Dequeues the next message deliverable at `round`, if any.
    pub fn pop_deliverable(&mut self, round: u64) -> Option<Vec<u8>> {
        match self.queue.front() {
            Some((at, _)) if *at <= round => self.queue.pop_front().map(|(_, m)| m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency() {
        let mut w = Wire::new(0, "out", 1, "in", 4, 2);
        w.push(10, vec![1]);
        assert_eq!(w.pop_deliverable(10), None);
        assert_eq!(w.pop_deliverable(11), None);
        assert_eq!(w.pop_deliverable(12), Some(vec![1]));
        assert_eq!(w.pop_deliverable(12), None);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut w = Wire::new(0, "out", 1, "in", 4, 1);
        w.push(0, vec![1]);
        w.push(0, vec![2]);
        assert_eq!(w.pop_deliverable(5), Some(vec![1]));
        assert_eq!(w.pop_deliverable(5), Some(vec![2]));
    }

    #[test]
    fn capacity_limits_in_flight() {
        let mut w = Wire::new(0, "out", 1, "in", 2, 1);
        w.push(0, vec![1]);
        w.push(0, vec![2]);
        assert!(!w.has_room());
        assert_eq!(w.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "wire overflow")]
    fn overflow_panics() {
        let mut w = Wire::new(0, "out", 1, "in", 1, 1);
        w.push(0, vec![1]);
        w.push(0, vec![2]);
    }

    #[test]
    #[should_panic(expected = "latency must be at least one round")]
    fn zero_latency_rejected() {
        Wire::new(0, "a", 1, "b", 1, 0);
    }
}

//! Wires: dedicated, unidirectional communication lines — optionally lossy,
//! with CRC-16 framing so endpoints can tell a damaged frame from a good
//! one.

use sep_fault::{LossModel, WireFault};
use std::collections::VecDeque;
use std::fmt;

/// Typed error for pushing onto a wire that has no room. Senders that
/// checked [`Wire::has_room`] first never see it; the round executor's
/// commit phase translates it into an over-capacity drop (a loss-model
/// duplicate can fill the last slot ahead of an admitted frame) instead of
/// a panic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WireOverflow;

impl fmt::Display for WireOverflow {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "wire overflow")
    }
}

impl std::error::Error for WireOverflow {}

/// CRC-16/CCITT (poly 0x1021, init 0xFFFF) over a byte slice. Detects every
/// single-bit error — which is exactly the damage a [`LossModel`] corrupt
/// fault inflicts, so a corrupted frame can never pass the check.
pub fn crc16(bytes: &[u8]) -> u16 {
    let mut crc: u16 = 0xFFFF;
    for &b in bytes {
        crc ^= (b as u16) << 8;
        for _ in 0..8 {
            crc = if crc & 0x8000 != 0 {
                (crc << 1) ^ 0x1021
            } else {
                crc << 1
            };
        }
    }
    crc
}

/// Wraps a payload in a CRC-16 frame (payload then checksum,
/// little-endian).
pub fn frame(payload: &[u8]) -> Vec<u8> {
    let mut f = payload.to_vec();
    f.extend_from_slice(&crc16(payload).to_le_bytes());
    f
}

/// Unwraps a CRC-16 frame, returning the payload only when the checksum
/// verifies. `None` is the caller's signal to count and discard.
pub fn deframe(framed: &[u8]) -> Option<Vec<u8>> {
    if framed.len() < 2 {
        return None;
    }
    let (payload, tail) = framed.split_at(framed.len() - 2);
    let expected = u16::from_le_bytes([tail[0], tail[1]]);
    (crc16(payload) == expected).then(|| payload.to_vec())
}

/// A unidirectional FIFO line between two node ports.
#[derive(Debug, Clone)]
pub struct Wire {
    /// Source node index.
    pub from_node: usize,
    /// Source port name.
    pub from_port: String,
    /// Destination node index.
    pub to_node: usize,
    /// Destination port name.
    pub to_port: String,
    /// Maximum messages in flight.
    pub capacity: usize,
    /// Rounds between send and earliest delivery (≥ 1).
    pub latency: u64,
    /// Frames this wire silently discarded.
    pub dropped: u64,
    /// Frames this wire delivered twice.
    pub duplicated: u64,
    /// Frames this wire delivered with a bit flipped.
    pub corrupted: u64,
    /// Frame pairs this wire swapped in flight.
    pub reordered: u64,
    loss: Option<LossModel>,
    queue: VecDeque<(u64, Vec<u8>)>, // (deliverable-at round, payload)
}

impl Wire {
    /// A wire with the given capacity and latency.
    pub fn new(
        from_node: usize,
        from_port: &str,
        to_node: usize,
        to_port: &str,
        capacity: usize,
        latency: u64,
    ) -> Wire {
        assert!(capacity > 0, "wire capacity must be positive");
        assert!(latency > 0, "wire latency must be at least one round");
        Wire {
            from_node,
            from_port: from_port.to_string(),
            to_node,
            to_port: to_port.to_string(),
            capacity,
            latency,
            dropped: 0,
            duplicated: 0,
            corrupted: 0,
            reordered: 0,
            loss: None,
            queue: VecDeque::new(),
        }
    }

    /// Attaches a seeded loss model, builder-style.
    pub fn with_loss(mut self, loss: LossModel) -> Wire {
        self.set_loss(loss);
        self
    }

    /// Attaches a seeded loss model to an already-built wire.
    pub fn set_loss(&mut self, loss: LossModel) {
        self.loss = Some(loss);
    }

    /// True when another message can be enqueued.
    pub fn has_room(&self) -> bool {
        self.queue.len() < self.capacity
    }

    /// Number of messages in flight.
    pub fn in_flight(&self) -> usize {
        self.queue.len()
    }

    /// Enqueues a message sent at `round`. A lossy wire rolls the frame's
    /// fate here: the *sender* still sees a successful send — that is what
    /// makes the loss silent and retransmission necessary.
    ///
    /// Returns [`WireOverflow`] when the wire is full; callers normally
    /// check [`Wire::has_room`] first and translate the error into
    /// back-pressure.
    pub fn push(&mut self, round: u64, msg: Vec<u8>) -> Result<(), WireOverflow> {
        if !self.has_room() {
            return Err(WireOverflow);
        }
        let deliver_at = round + self.latency;
        // Roll the fate and flip the corrupt bit in one borrow of the loss
        // model: a Corrupt fate can only come from a model, so the second
        // lookup the old code `expect`ed on is gone by construction.
        let (fault, corrupt_pos) = match self.loss.as_mut() {
            Some(l) => {
                let fault = l.decide();
                let pos = match fault {
                    WireFault::Corrupt if !msg.is_empty() => Some(l.corrupt_pos(msg.len())),
                    _ => None,
                };
                (fault, pos)
            }
            None => (WireFault::None, None),
        };
        match fault {
            WireFault::None => self.queue.push_back((deliver_at, msg)),
            WireFault::Drop => self.dropped += 1,
            WireFault::Duplicate => {
                self.queue.push_back((deliver_at, msg.clone()));
                // The copy rides only if the wire has room for it.
                if self.has_room() {
                    self.queue.push_back((deliver_at, msg));
                    self.duplicated += 1;
                }
            }
            WireFault::Corrupt => {
                let mut msg = msg;
                if let Some((byte, bit)) = corrupt_pos {
                    msg[byte] ^= 1 << bit;
                    self.corrupted += 1;
                }
                self.queue.push_back((deliver_at, msg));
            }
            WireFault::Reorder => {
                self.queue.push_back((deliver_at, msg));
                let n = self.queue.len();
                if n >= 2 {
                    // Swap payloads but keep each slot's delivery time, so
                    // reordering never smuggles a frame past the latency.
                    let last = self.queue[n - 1].1.clone();
                    let prev = std::mem::replace(&mut self.queue[n - 2].1, last);
                    self.queue[n - 1].1 = prev;
                    self.reordered += 1;
                }
            }
        }
        Ok(())
    }

    /// Dequeues the next message deliverable at `round`, if any.
    pub fn pop_deliverable(&mut self, round: u64) -> Option<Vec<u8>> {
        match self.queue.front() {
            Some((at, _)) if *at <= round => self.queue.pop_front().map(|(_, m)| m),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn delivery_respects_latency() {
        let mut w = Wire::new(0, "out", 1, "in", 4, 2);
        w.push(10, vec![1]).unwrap();
        assert_eq!(w.pop_deliverable(10), None);
        assert_eq!(w.pop_deliverable(11), None);
        assert_eq!(w.pop_deliverable(12), Some(vec![1]));
        assert_eq!(w.pop_deliverable(12), None);
    }

    #[test]
    fn fifo_order_preserved() {
        let mut w = Wire::new(0, "out", 1, "in", 4, 1);
        w.push(0, vec![1]).unwrap();
        w.push(0, vec![2]).unwrap();
        assert_eq!(w.pop_deliverable(5), Some(vec![1]));
        assert_eq!(w.pop_deliverable(5), Some(vec![2]));
    }

    #[test]
    fn capacity_limits_in_flight() {
        let mut w = Wire::new(0, "out", 1, "in", 2, 1);
        w.push(0, vec![1]).unwrap();
        w.push(0, vec![2]).unwrap();
        assert!(!w.has_room());
        assert_eq!(w.in_flight(), 2);
    }

    #[test]
    fn overflow_is_a_typed_error() {
        let mut w = Wire::new(0, "out", 1, "in", 1, 1);
        w.push(0, vec![1]).unwrap();
        assert_eq!(w.push(0, vec![2]), Err(WireOverflow));
        assert_eq!(w.in_flight(), 1, "rejected frame not enqueued");
    }

    #[test]
    #[should_panic(expected = "latency must be at least one round")]
    fn zero_latency_rejected() {
        Wire::new(0, "a", 1, "b", 1, 0);
    }

    #[test]
    #[should_panic(expected = "capacity must be positive")]
    fn zero_capacity_rejected() {
        // A zero-capacity wire could never carry anything and `has_room`
        // would be constant false — constructing one is a config bug.
        Wire::new(0, "a", 1, "b", 0, 1);
    }

    #[test]
    fn same_round_pushes_deliver_in_push_order() {
        let mut w = Wire::new(0, "out", 1, "in", 4, 3);
        w.push(7, vec![1]).unwrap();
        w.push(7, vec![2]).unwrap();
        w.push(7, vec![3]).unwrap();
        // All three mature at the same round and come out FIFO.
        assert_eq!(w.pop_deliverable(10), Some(vec![1]));
        assert_eq!(w.pop_deliverable(10), Some(vec![2]));
        assert_eq!(w.pop_deliverable(10), Some(vec![3]));
        assert_eq!(w.pop_deliverable(10), None);
    }

    #[test]
    fn delivery_at_exact_round_boundary() {
        // Deliverable at exactly round + latency: one round earlier is too
        // soon, the boundary round itself is not.
        let mut w = Wire::new(0, "out", 1, "in", 2, 1);
        w.push(5, vec![9]).unwrap();
        assert_eq!(w.pop_deliverable(5), None, "same round is too soon");
        assert_eq!(w.pop_deliverable(6), Some(vec![9]), "boundary delivers");
        w.push(u64::MAX - 1, vec![8]).unwrap();
        assert_eq!(w.pop_deliverable(u64::MAX), Some(vec![8]));
    }

    #[test]
    fn lossless_wire_with_model_rates_zero_is_transparent() {
        let mut w = Wire::new(0, "out", 1, "in", 8, 1).with_loss(LossModel::new(1));
        for i in 0..8u8 {
            w.push(0, vec![i]).unwrap();
        }
        for i in 0..8u8 {
            assert_eq!(w.pop_deliverable(1), Some(vec![i]));
        }
        assert_eq!(w.dropped + w.duplicated + w.corrupted + w.reordered, 0);
    }

    #[test]
    fn dropping_wire_loses_frames_silently() {
        let mut w =
            Wire::new(0, "out", 1, "in", 1024, 1).with_loss(LossModel::new(42).with_drop(1000));
        for _ in 0..64 {
            w.push(0, vec![1]).unwrap(); // "succeeds" from the sender's view
        }
        assert_eq!(w.in_flight(), 0);
        assert_eq!(w.dropped, 64);
    }

    #[test]
    fn corruption_flips_exactly_one_bit() {
        let mut w =
            Wire::new(0, "out", 1, "in", 8, 1).with_loss(LossModel::new(3).with_corrupt(1000));
        w.push(0, vec![0x55, 0xAA]).unwrap();
        let got = w.pop_deliverable(1).unwrap();
        let diff: u32 = got
            .iter()
            .zip([0x55u8, 0xAA])
            .map(|(a, b)| (a ^ b).count_ones())
            .sum();
        assert_eq!(diff, 1, "exactly one bit flipped");
        assert_eq!(w.corrupted, 1);
    }

    #[test]
    fn reorder_swaps_payloads_not_delivery_times() {
        // 100% reorder: each push swaps with the frame ahead of it.
        let mut w =
            Wire::new(0, "out", 1, "in", 8, 2).with_loss(LossModel::new(9).with_reorder(1000));
        w.push(0, vec![1]).unwrap(); // nothing ahead: delivered as-is
        w.push(0, vec![2]).unwrap(); // swaps with [1]
        assert_eq!(w.reordered, 1);
        assert_eq!(w.pop_deliverable(2), Some(vec![2]));
        assert_eq!(w.pop_deliverable(2), Some(vec![1]));
    }

    #[test]
    fn crc_roundtrip_and_rejection() {
        let payload = b"separation".to_vec();
        let f = frame(&payload);
        assert_eq!(deframe(&f), Some(payload.clone()));
        // Any single flipped bit — payload or checksum — is caught.
        for byte in 0..f.len() {
            for bit in 0..8 {
                let mut bad = f.clone();
                bad[byte] ^= 1 << bit;
                assert_eq!(deframe(&bad), None, "flip at {byte}:{bit} accepted");
            }
        }
        assert_eq!(deframe(&[0x12]), None, "truncated frame rejected");
        assert_eq!(deframe(&frame(&[])), Some(vec![]), "empty payload frames");
    }
}

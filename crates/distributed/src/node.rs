//! Nodes: the private, physically isolated machines of the distributed
//! design.
//!
//! # Error contract
//!
//! Nothing in this interface panics. Every refusable operation reports
//! through its type: a missing wire or exhausted capacity is a
//! [`SendError`], an empty port is `None`. The only panics in the crate
//! are boot-time configuration checks (zero-capacity wires, double-wired
//! ports) — documented invariants that fire before any traffic flows,
//! never on the hot path.

/// Why a send was refused.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SendError {
    /// The named port has no outgoing wire.
    NoSuchPort(String),
    /// The wire's capacity is exhausted this round (back-pressure).
    WireFull(String),
}

impl core::fmt::Display for SendError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        match self {
            SendError::NoSuchPort(p) => write!(f, "no outgoing wire on port {p}"),
            SendError::WireFull(p) => write!(f, "wire on port {p} is full"),
        }
    }
}

impl std::error::Error for SendError {}

/// The I/O context a node sees during its step: its own ports, nothing else.
///
/// This interface is the *whole* of a node's connection to the world — the
/// executable meaning of "physically isolated".
pub trait NodeIo {
    /// Receives the next pending message on an incoming port, if any.
    fn recv(&mut self, port: &str) -> Option<Vec<u8>>;

    /// Sends a message on an outgoing port.
    fn send(&mut self, port: &str, msg: Vec<u8>) -> Result<(), SendError>;

    /// The current round number (every node's only clock).
    fn round(&self) -> u64;

    /// Reports that a frame was sent *again* (retransmission protocols call
    /// this next to the repeated `send`). Purely observational — executors
    /// that keep books override it; the default is a no-op so plain nodes
    /// and test harnesses need not care.
    fn note_retransmit(&mut self, _seq: u16) {}
}

/// A component of the distributed system.
///
/// `Send` because the round executor may step nodes on a worker pool
/// ([`crate::Network::set_workers`]). A node's state is still exclusively
/// owned — the bound lets a node *move* to a worker thread for the
/// duration of a step phase, it never makes the state shared.
pub trait Node: Send {
    /// Display name (also the trace colour).
    fn name(&self) -> &str;

    /// Executes one round: consume available inputs, produce outputs.
    fn step(&mut self, io: &mut dyn NodeIo);
}

//! Ack/retransmit protocol for lossy wires, with crash-recovery epochs.
//!
//! A [`RetxSender`] and [`RetxReceiver`] pair turn a wire that drops,
//! duplicates, corrupts, and reorders frames into a reliable in-order
//! stream. The machinery is a textbook selective-repeat ARQ, scaled to the
//! round-based executor:
//!
//! * every data frame carries a 16-bit sequence number and a CRC-16
//!   ([`crate::wire::frame`]);
//! * the receiver acks every *valid* data frame (even duplicates — the ack
//!   may be what was lost), rejects any frame failing the CRC, buffers
//!   out-of-order arrivals, and releases payloads strictly in order;
//! * the sender keeps a window of unacked frames and retransmits each when
//!   its timeout expires, doubling the timeout per attempt (exponential
//!   backoff in rounds, the shift capped at [`MAX_BACKOFF_SHIFT`]) so a
//!   congested or dead link is not flooded.
//!
//! Sequence numbers wrap; ordering comparisons use the usual serial-number
//! arithmetic, sound while fewer than 2^15 frames are in flight — the
//! window is bounded far below that.
//!
//! # Epochs and reboot
//!
//! A selective-repeat ARQ is only sound while both endpoints remember the
//! conversation. A rebooted endpoint restarts its sequence space at zero,
//! and without further protection a stale frame or ack from *before* the
//! reboot could be mistaken for a fresh one — a replayed delivery or a
//! mis-ack. The protocol closes this with two epoch bytes:
//!
//! * every receiver has a **boot epoch** — a counter bumped on each reboot
//!   (the one word an endpoint keeps in non-volatile storage, the same
//!   trick as clock-derived TCP initial sequence numbers). Data frames
//!   carry the boot epoch the sender believes; a mismatch means the frame
//!   predates the receiver's current incarnation, so it is dropped unacked
//!   and answered with a [`FRAME_RESYNC`] advertising the true boot epoch;
//! * every sender stamps frames with a **session epoch**, bumped every
//!   time the sender restarts its sequence space (its own reboot, or a
//!   resync forced by the receiver's). Acks echo the session epoch; an ack
//!   from a previous session is counted and dropped, never matched against
//!   the new session's in-flight frames.
//!
//! On resync the sender re-queues everything in flight at the front of the
//! queue, in order: the new receiver incarnation has lost all prior state,
//! so redelivery is exactly what the application needs — end-to-end
//! duplicate suppression is the business of the layer above (request IDs),
//! not the link. Epochs use the same serial-number arithmetic as sequence
//! numbers, sound while fewer than 128 reboots happen within one frame's
//! lifetime on the wire.
//!
//! A sender whose peer has gone silent backs off until some frame has
//! climbed [`GIVE_UP_ATTEMPTS`] rungs of the retransmit ladder (whether or
//! not the wire accepted each attempt — a dead peer's wire fills up and
//! stays full), then reports [`RetxSender::peer_down`] —
//! a *level*, not an edge: it clears on the first ack or resync, so a
//! recovered peer turns the light off by itself.

use crate::node::NodeIo;
use crate::wire::{deframe, frame};
use std::collections::{BTreeMap, VecDeque};

/// Frame kind byte: application data.
pub const FRAME_DATA: u8 = 0;
/// Frame kind byte: acknowledgement.
pub const FRAME_ACK: u8 = 1;
/// Frame kind byte: epoch resync (receiver advertises its boot epoch).
pub const FRAME_RESYNC: u8 = 2;

/// Cap on the exponential-backoff shift: the retransmit interval saturates
/// at `timeout << MAX_BACKOFF_SHIFT` rounds so a long-dead peer can never
/// push the shift toward overflow.
pub const MAX_BACKOFF_SHIFT: u32 = 5;

/// Backoff-ladder rungs a single frame climbs before the sender reports
/// [`RetxSender::peer_down`].
pub const GIVE_UP_ATTEMPTS: u32 = 8;

/// Serial-number comparison: true when `a` precedes `b` modulo 2^16.
fn seq_before(a: u16, b: u16) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000
}

/// Serial-number comparison for epoch bytes: true when `a` precedes `b`
/// modulo 2^8.
fn epoch_before(a: u8, b: u8) -> bool {
    a != b && b.wrapping_sub(a) < 0x80
}

/// Builds a data frame: kind, session epoch, receiver boot epoch,
/// little-endian sequence number, payload, CRC.
fn data_frame(session: u8, rx_epoch: u8, seq: u16, payload: &[u8]) -> Vec<u8> {
    let mut inner = Vec::with_capacity(5 + payload.len());
    inner.push(FRAME_DATA);
    inner.push(session);
    inner.push(rx_epoch);
    inner.extend_from_slice(&seq.to_le_bytes());
    inner.extend_from_slice(payload);
    frame(&inner)
}

/// Builds an ack frame: kind, session epoch, little-endian sequence
/// number, CRC.
fn ack_frame(session: u8, seq: u16) -> Vec<u8> {
    let mut inner = Vec::with_capacity(4);
    inner.push(FRAME_ACK);
    inner.push(session);
    inner.extend_from_slice(&seq.to_le_bytes());
    frame(&inner)
}

/// Builds a resync frame: kind, receiver boot epoch, CRC.
fn resync_frame(boot_epoch: u8) -> Vec<u8> {
    frame(&[FRAME_RESYNC, boot_epoch])
}

#[derive(Debug, Clone)]
struct Pending {
    payload: Vec<u8>,
    last_sent: u64,
    attempts: u32,
}

/// The sending half: a bounded window of unacked frames with timeout-driven
/// retransmission, exponential backoff, and epoch resync.
#[derive(Debug, Clone)]
pub struct RetxSender {
    window: usize,
    timeout: u64,
    epoch: u8,
    rx_epoch: u8,
    next_seq: u16,
    inflight: BTreeMap<u16, Pending>,
    queue: VecDeque<Vec<u8>>,
    /// Frames sent more than once.
    pub retransmissions: u64,
    /// Frames acknowledged.
    pub acked: u64,
    /// Acks from a previous session epoch, counted and dropped.
    pub stale_acks_dropped: u64,
    /// Session restarts forced by a receiver resync.
    pub resyncs: u64,
}

impl RetxSender {
    /// A sender with the given window (max unacked frames) and base
    /// retransmit timeout in rounds, starting at session epoch 0.
    pub fn new(window: usize, timeout: u64) -> RetxSender {
        RetxSender::with_epoch(window, timeout, 0)
    }

    /// A sender starting at the given session epoch — the value a rebooted
    /// node reads from its non-volatile boot counter. The receiver's boot
    /// epoch is volatile and relearned via resync (assumed 0 until told).
    pub fn with_epoch(window: usize, timeout: u64, epoch: u8) -> RetxSender {
        assert!(window > 0, "retx window must be positive");
        assert!(timeout > 0, "retx timeout must be at least one round");
        RetxSender {
            window,
            timeout,
            epoch,
            rx_epoch: 0,
            next_seq: 0,
            inflight: BTreeMap::new(),
            queue: VecDeque::new(),
            retransmissions: 0,
            acked: 0,
            stale_acks_dropped: 0,
            resyncs: 0,
        }
    }

    /// The current session epoch stamped on outgoing frames.
    pub fn epoch(&self) -> u8 {
        self.epoch
    }

    /// Queues a payload for reliable delivery.
    pub fn enqueue(&mut self, payload: Vec<u8>) {
        self.queue.push_back(payload);
    }

    /// Payloads not yet acknowledged (queued or in flight).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// True while some frame has been retransmitted [`GIVE_UP_ATTEMPTS`]
    /// times without an ack. A level, not a latch: the first ack or resync
    /// from a recovered peer clears it.
    pub fn peer_down(&self) -> bool {
        self.inflight
            .values()
            .any(|p| p.attempts >= GIVE_UP_ATTEMPTS)
    }

    /// Restarts the session: bump the epoch, return every in-flight
    /// payload to the front of the queue in sequence order, and reset the
    /// sequence space. The bumped epoch makes every outstanding ack stale.
    fn restart_session(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        let inflight = std::mem::take(&mut self.inflight);
        for (_, p) in inflight.into_iter().rev() {
            self.queue.push_front(p.payload);
        }
        self.next_seq = 0;
        self.resyncs += 1;
    }

    /// One round of protocol work: drain acks and resyncs from `ack_port`,
    /// retransmit expired frames on `data_port`, then fill the window from
    /// the queue.
    pub fn poll(&mut self, io: &mut dyn NodeIo, data_port: &str, ack_port: &str) {
        // 1. Acks and resyncs. A corrupt frame fails the CRC and is
        //    ignored; the data frame it covered simply retransmits later.
        while let Some(raw) = io.recv(ack_port) {
            let Some(inner) = deframe(&raw) else { continue };
            match inner.first() {
                Some(&FRAME_ACK) if inner.len() == 4 => {
                    if inner[1] != self.epoch {
                        // An ack from a previous session: the frame it
                        // covers no longer exists. Matching it against the
                        // new session's sequence space would mis-ack.
                        self.stale_acks_dropped += 1;
                        continue;
                    }
                    let seq = u16::from_le_bytes([inner[2], inner[3]]);
                    if self.inflight.remove(&seq).is_some() {
                        self.acked += 1;
                    }
                }
                // The receiver rebooted: adopt its new boot epoch and
                // restart the session. Duplicate or stale resyncs (the
                // wire reorders) compare as not-newer and are ignored.
                Some(&FRAME_RESYNC)
                    if inner.len() == 2 && epoch_before(self.rx_epoch, inner[1]) =>
                {
                    self.rx_epoch = inner[1];
                    self.restart_session();
                }
                _ => {}
            }
        }
        let now = io.round();
        // 2. Retransmissions. Timeout doubles per attempt, the shift
        //    saturating at MAX_BACKOFF_SHIFT so the slot arithmetic cannot
        //    overflow however long the peer stays dead.
        let expired: Vec<u16> = self
            .inflight
            .iter()
            .filter(|(_, p)| {
                now >= p.last_sent + (self.timeout << p.attempts.min(MAX_BACKOFF_SHIFT))
            })
            .map(|(&seq, _)| seq)
            .collect();
        for seq in expired {
            // One lookup, no panic path: a seq collected above could only
            // vanish if this loop removed it, and it never removes.
            let Some(p) = self.inflight.get_mut(&seq) else {
                continue;
            };
            let f = data_frame(self.epoch, self.rx_epoch, seq, &p.payload);
            // The backoff ladder advances whether or not the wire accepts
            // the frame: a dead peer's wire fills up and stays full, and
            // the give-up level must still be reached. Only an actual
            // transmission counts as a retransmission.
            if io.send(data_port, f).is_ok() {
                self.retransmissions += 1;
                io.note_retransmit(seq);
            }
            p.last_sent = now;
            p.attempts = p.attempts.saturating_add(1);
        }
        // 3. New transmissions, up to the window.
        while self.inflight.len() < self.window {
            let Some(payload) = self.queue.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            let f = data_frame(self.epoch, self.rx_epoch, seq, &payload);
            if io.send(data_port, f).is_err() {
                // Wire full: put it back and try next round.
                self.queue.push_front(payload);
                break;
            }
            self.next_seq = self.next_seq.wrapping_add(1);
            self.inflight.insert(
                seq,
                Pending {
                    payload,
                    last_sent: now,
                    attempts: 0,
                },
            );
        }
    }
}

/// The receiving half: CRC guard, epoch guard, duplicate suppression,
/// in-order release.
#[derive(Debug, Clone)]
pub struct RetxReceiver {
    boot_epoch: u8,
    session: Option<u8>,
    expected: u16,
    buffer: BTreeMap<u16, Vec<u8>>,
    /// Frames rejected by the CRC or malformed past it. Never delivered —
    /// the e9 bench asserts this stays equal to "corrupt frames seen".
    pub corrupt_rejected: u64,
    /// Valid frames ignored as duplicates (still acked).
    pub duplicates_ignored: u64,
    /// Frames from a stale epoch (a pre-reboot straggler or a superseded
    /// session), dropped unacked.
    pub stale_epoch_dropped: u64,
    /// Session adoptions after the first (the sender restarted).
    pub resyncs: u64,
    /// Payloads released to the application, in order.
    pub delivered: u64,
}

impl RetxReceiver {
    /// A receiver at boot epoch 0, expecting sequence 0 first.
    pub fn new() -> RetxReceiver {
        RetxReceiver::with_epoch(0)
    }

    /// A receiver at the given boot epoch — the value a rebooted node
    /// reads from its non-volatile boot counter. Until the sender learns
    /// this epoch (via resync) its frames are dropped as stale.
    pub fn with_epoch(boot_epoch: u8) -> RetxReceiver {
        RetxReceiver {
            boot_epoch,
            session: None,
            expected: 0,
            buffer: BTreeMap::new(),
            corrupt_rejected: 0,
            duplicates_ignored: 0,
            stale_epoch_dropped: 0,
            resyncs: 0,
            delivered: 0,
        }
    }

    /// The receiver's own boot epoch.
    pub fn epoch(&self) -> u8 {
        self.boot_epoch
    }

    /// One round of protocol work: drain `data_port`, ack every valid
    /// current-epoch frame on `ack_port` (answering stale-epoch frames
    /// with a single resync instead), and return the in-order payload run.
    pub fn poll(&mut self, io: &mut dyn NodeIo, data_port: &str, ack_port: &str) -> Vec<Vec<u8>> {
        let mut resync_wanted = false;
        while let Some(raw) = io.recv(data_port) {
            // The CRC guard: damaged frames die here, unacked, before any
            // of their bytes are believed.
            let Some(inner) = deframe(&raw) else {
                self.corrupt_rejected += 1;
                continue;
            };
            if inner.len() < 5 || inner[0] != FRAME_DATA {
                self.corrupt_rejected += 1;
                continue;
            }
            let session = inner[1];
            if inner[2] != self.boot_epoch {
                // The sender believes a receiver incarnation that no
                // longer exists (or never did). Never ack — an ack would
                // be mistaken for one covering the *new* sequence space.
                // Advertise the true boot epoch instead.
                self.stale_epoch_dropped += 1;
                resync_wanted = true;
                continue;
            }
            match self.session {
                None => self.session = Some(session),
                Some(cur) if session == cur => {}
                Some(cur) if epoch_before(cur, session) => {
                    // The sender restarted its sequence space: drop the
                    // old session's buffered fragments and start over.
                    self.buffer.clear();
                    self.expected = 0;
                    self.session = Some(session);
                    self.resyncs += 1;
                }
                Some(_) => {
                    // A straggler from a superseded session.
                    self.stale_epoch_dropped += 1;
                    continue;
                }
            }
            let seq = u16::from_le_bytes([inner[3], inner[4]]);
            let payload = inner[5..].to_vec();
            // Ack even duplicates: the earlier ack may be the thing that
            // was lost. A full ack wire is fine — the data retransmits.
            let _ = io.send(ack_port, ack_frame(session, seq));
            if seq_before(seq, self.expected) || self.buffer.contains_key(&seq) {
                self.duplicates_ignored += 1;
                continue;
            }
            self.buffer.insert(seq, payload);
        }
        if resync_wanted {
            // One resync per poll is enough: the sender's retransmissions
            // re-trigger it next round if this frame is lost.
            let _ = io.send(ack_port, resync_frame(self.boot_epoch));
        }
        let mut out = Vec::new();
        while let Some(payload) = self.buffer.remove(&self.expected) {
            out.push(payload);
            self.expected = self.expected.wrapping_add(1);
            self.delivered += 1;
        }
        out
    }
}

impl Default for RetxReceiver {
    fn default() -> Self {
        RetxReceiver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::node::Node;
    use sep_fault::LossModel;
    use std::sync::{Arc, Mutex};

    /// Sends `count` numbered payloads reliably.
    struct Source {
        tx: RetxSender,
        fed: usize,
        count: usize,
    }

    impl Node for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            while self.fed < self.count && self.tx.pending() < 64 {
                self.tx.enqueue(vec![self.fed as u8, (self.fed >> 8) as u8]);
                self.fed += 1;
            }
            self.tx.poll(io, "data", "ack");
        }
    }

    /// Collects delivered payloads into a shared vector.
    struct Sink {
        rx: RetxReceiver,
        got: Arc<Mutex<Vec<Vec<u8>>>>,
    }

    impl Node for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            let msgs = self.rx.poll(io, "data", "ack");
            self.got.lock().unwrap().extend(msgs);
        }
    }

    fn run_transfer(
        count: usize,
        loss: Option<(LossModel, LossModel)>,
        rounds: u64,
    ) -> Vec<Vec<u8>> {
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(8, 4),
            fed: 0,
            count,
        }));
        let dst = net.add_node(Box::new(Sink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
        }));
        match loss {
            Some((data_loss, ack_loss)) => {
                net.connect_lossy(src, "data", dst, "data", 16, 1, data_loss);
                net.connect_lossy(dst, "ack", src, "ack", 16, 1, ack_loss);
            }
            None => {
                net.connect(src, "data", dst, "data", 16, 1);
                net.connect(dst, "ack", src, "ack", 16, 1);
            }
        }
        net.run(rounds);
        let result = got.lock().unwrap().clone();
        result
    }

    fn expected(count: usize) -> Vec<Vec<u8>> {
        (0..count).map(|i| vec![i as u8, (i >> 8) as u8]).collect()
    }

    #[test]
    fn lossless_transfer_is_complete_and_ordered() {
        assert_eq!(run_transfer(40, None, 60), expected(40));
    }

    #[test]
    fn lossy_transfer_recovers_everything_in_order() {
        // 20% drop + 5% each of duplicate/corrupt/reorder on data, 10%
        // drop on acks — and the stream still arrives complete, in order.
        let data_loss = LossModel::new(0xFEED)
            .with_drop(200)
            .with_duplicate(50)
            .with_corrupt(50)
            .with_reorder(50);
        let ack_loss = LossModel::new(0xACED).with_drop(100);
        assert_eq!(
            run_transfer(40, Some((data_loss, ack_loss)), 2000),
            expected(40)
        );
    }

    #[test]
    fn corrupt_frames_are_rejected_never_delivered() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(8, 4),
            fed: 0,
            count: 30,
        }));
        let dst = net.add_node(Box::new(Sink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
        }));
        net.connect_lossy(
            src,
            "data",
            dst,
            "data",
            16,
            1,
            LossModel::new(7).with_corrupt(300),
        );
        net.connect(dst, "ack", src, "ack", 16, 1);
        net.run(1000);
        // Every payload arrives intact: the corrupted copies were all
        // stopped at the CRC and made up with retransmissions.
        assert_eq!(got.lock().unwrap().clone(), expected(30));
        let corrupted: u64 = net.wires().iter().map(|w| w.corrupted).sum();
        assert!(corrupted > 0, "loss model never corrupted anything");
    }

    #[test]
    fn retransmissions_counted_in_observability() {
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(4, 3),
            fed: 0,
            count: 20,
        }));
        let got = Arc::new(Mutex::new(Vec::new()));
        let dst = net.add_node(Box::new(Sink {
            rx: RetxReceiver::new(),
            got,
        }));
        net.connect_lossy(
            src,
            "data",
            dst,
            "data",
            16,
            1,
            LossModel::new(11).with_drop(400),
        );
        net.connect(dst, "ack", src, "ack", 16, 1);
        net.run(600);
        assert!(
            net.obs.metrics.totals.retransmissions > 0,
            "40% drop must force retransmissions"
        );
        assert_eq!(
            net.obs.metrics.regime(0).map(|c| c.retransmissions),
            Some(net.obs.metrics.totals.retransmissions),
            "only the sender retransmits"
        );
    }

    #[test]
    fn sequence_comparison_wraps() {
        assert!(seq_before(0xFFFF, 0));
        assert!(seq_before(0xFFF0, 0x000F));
        assert!(!seq_before(0, 0xFFFF));
        assert!(!seq_before(5, 5));
        assert!(seq_before(5, 6));
    }

    #[test]
    fn epoch_comparison_wraps() {
        assert!(epoch_before(0xFF, 0));
        assert!(epoch_before(0, 1));
        assert!(!epoch_before(1, 0));
        assert!(!epoch_before(3, 3));
        assert!(epoch_before(0x80, 0x81));
        assert!(!epoch_before(0, 0x80 + 1));
    }

    #[test]
    fn one_resync_per_poll_regardless_of_stale_frame_count() {
        let mut io = PortIo::default();
        let mut rx = RetxReceiver::with_epoch(2);
        for seq in 0..5u16 {
            io.stage("data", data_frame(0, 0, seq, b"x"));
        }
        let out = rx.poll(&mut io, "data", "ack");
        assert!(out.is_empty());
        assert_eq!(rx.stale_epoch_dropped, 5);
        assert_eq!(io.resyncs_sent(), vec![2], "one resync with the boot epoch");
        assert!(io.acks_sent().is_empty(), "stale frames are never acked");
    }

    /// A scripted [`NodeIo`] for protocol edge cases: incoming frames are
    /// staged per port, outgoing frames and retransmit notes are recorded.
    #[derive(Default)]
    struct PortIo {
        incoming: std::collections::BTreeMap<String, VecDeque<Vec<u8>>>,
        sent: Vec<(String, Vec<u8>)>,
        now: u64,
        retx_notes: Vec<u16>,
    }

    impl PortIo {
        fn stage(&mut self, port: &str, frame: Vec<u8>) {
            self.incoming
                .entry(port.to_string())
                .or_default()
                .push_back(frame);
        }

        fn acks_sent(&self) -> Vec<u16> {
            self.sent
                .iter()
                .filter(|(port, _)| port == "ack")
                .filter_map(|(_, raw)| deframe(raw))
                .filter(|inner| inner.len() == 4 && inner[0] == FRAME_ACK)
                .map(|inner| u16::from_le_bytes([inner[2], inner[3]]))
                .collect()
        }

        fn resyncs_sent(&self) -> Vec<u8> {
            self.sent
                .iter()
                .filter(|(port, _)| port == "ack")
                .filter_map(|(_, raw)| deframe(raw))
                .filter(|inner| inner.len() == 2 && inner[0] == FRAME_RESYNC)
                .map(|inner| inner[1])
                .collect()
        }

        fn data_sent(&self) -> Vec<(u8, u8, u16, Vec<u8>)> {
            self.sent
                .iter()
                .filter(|(port, _)| port == "data")
                .filter_map(|(_, raw)| deframe(raw))
                .filter(|inner| inner.len() >= 5 && inner[0] == FRAME_DATA)
                .map(|inner| {
                    (
                        inner[1],
                        inner[2],
                        u16::from_le_bytes([inner[3], inner[4]]),
                        inner[5..].to_vec(),
                    )
                })
                .collect()
        }
    }

    impl NodeIo for PortIo {
        fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
            self.incoming.get_mut(port)?.pop_front()
        }
        fn send(&mut self, port: &str, msg: Vec<u8>) -> Result<(), crate::node::SendError> {
            self.sent.push((port.to_string(), msg));
            Ok(())
        }
        fn round(&self) -> u64 {
            self.now
        }
        fn note_retransmit(&mut self, seq: u16) {
            self.retx_notes.push(seq);
        }
    }

    #[test]
    fn duplicate_after_reorder_delivers_once_and_acks_every_copy() {
        // The duplicate-then-reorder edge: the wire duplicated frame 0 and
        // a reorder pushed frame 1 ahead of both copies. The receiver must
        // release each payload exactly once, in order, while still acking
        // all three arrivals (an earlier ack may be what was lost).
        let mut io = PortIo::default();
        io.stage("data", data_frame(0, 0, 1, b"one"));
        io.stage("data", data_frame(0, 0, 0, b"zero"));
        io.stage("data", data_frame(0, 0, 0, b"zero"));
        let mut rx = RetxReceiver::new();
        let out = rx.poll(&mut io, "data", "ack");
        assert_eq!(out, vec![b"zero".to_vec(), b"one".to_vec()]);
        assert_eq!(rx.delivered, 2);
        assert_eq!(rx.duplicates_ignored, 1);
        assert_eq!(io.acks_sent(), vec![1, 0, 0]);
        // A straggler copy of an already-released frame is also ignored —
        // `seq_before` catches it even though the buffer has moved on.
        io.stage("data", data_frame(0, 0, 1, b"one"));
        assert!(rx.poll(&mut io, "data", "ack").is_empty());
        assert_eq!(rx.delivered, 2);
        assert_eq!(rx.duplicates_ignored, 2);
    }

    #[test]
    fn duplicated_reordered_acks_never_double_count_retransmissions() {
        // Both inflight frames are long expired when their acks finally
        // arrive — duplicated and reordered by the wire. Acks drain before
        // the expiry scan, so nothing retransmits and nothing is counted
        // twice (`acked` bumps only on the first copy of each ack).
        let mut io = PortIo::default();
        let mut tx = RetxSender::new(4, 2);
        tx.enqueue(b"a".to_vec());
        tx.enqueue(b"b".to_vec());
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.pending(), 2);
        io.now = 10;
        io.stage("ack", ack_frame(0, 1));
        io.stage("ack", ack_frame(0, 0));
        io.stage("ack", ack_frame(0, 0));
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.acked, 2);
        assert_eq!(tx.pending(), 0);
        assert_eq!(tx.retransmissions, 0);
        assert!(io.retx_notes.is_empty(), "no frame was actually resent");
    }

    #[test]
    fn expired_frame_retransmits_once_and_notes_once_per_resend() {
        let mut io = PortIo::default();
        let mut tx = RetxSender::new(4, 2);
        tx.enqueue(b"a".to_vec());
        tx.poll(&mut io, "data", "ack"); // fresh send at round 0
        io.now = 2; // base timeout expired
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.retransmissions, 1);
        assert_eq!(io.retx_notes, vec![0]);
        io.now = 3; // backoff doubled: not expired again yet
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.retransmissions, 1, "backoff suppresses a re-resend");
        io.now = 6; // 2 + (2 << 1) = 6: second expiry
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.retransmissions, 2);
        assert_eq!(io.retx_notes, vec![0, 0]);
    }

    #[test]
    fn backoff_shift_saturates_at_the_cap() {
        // Drive one frame through more attempts than MAX_BACKOFF_SHIFT and
        // pin the interval sequence: it doubles up to timeout << cap, then
        // stays flat. With timeout=1 the expected gaps between resends are
        // 1, 2, 4, 8, 16, 32, 32, 32, ... — an uncapped shift would keep
        // doubling (and overflow u64 after attempt 63).
        let mut io = PortIo::default();
        let mut tx = RetxSender::new(1, 1);
        tx.enqueue(b"x".to_vec());
        tx.poll(&mut io, "data", "ack"); // fresh send at round 0
        let mut resend_rounds = Vec::new();
        let mut now = 0u64;
        while resend_rounds.len() < GIVE_UP_ATTEMPTS as usize + 2 {
            now += 1;
            io.now = now;
            let before = tx.retransmissions;
            tx.poll(&mut io, "data", "ack");
            if tx.retransmissions > before {
                resend_rounds.push(now);
            }
            assert!(now < 10_000, "backoff ran away");
        }
        let gaps: Vec<u64> = resend_rounds.windows(2).map(|w| w[1] - w[0]).collect();
        let capped = 1u64 << MAX_BACKOFF_SHIFT;
        assert_eq!(resend_rounds[0], 1, "first resend after the base timeout");
        assert_eq!(
            gaps,
            vec![2, 4, 8, 16, capped, capped, capped, capped, capped],
            "shift must saturate exactly at MAX_BACKOFF_SHIFT"
        );
        // And the give-up level is now lit...
        assert!(tx.peer_down(), "peer silent past GIVE_UP_ATTEMPTS resends");
        // ...until a single ack clears it.
        io.stage("ack", ack_frame(tx.epoch(), 0));
        tx.poll(&mut io, "data", "ack");
        assert!(!tx.peer_down(), "an ack clears the peer-down level");
    }

    #[test]
    fn receiver_reboot_forces_resync_and_fresh_session() {
        // Sender mid-stream at session 0; the receiver reboots to boot
        // epoch 1. Stale frames are dropped unacked and answered with a
        // resync; the sender restarts the session and redelivers from
        // sequence 0 at session 1.
        let mut io = PortIo::default();
        let mut tx = RetxSender::new(4, 2);
        tx.enqueue(b"a".to_vec());
        tx.enqueue(b"b".to_vec());
        tx.poll(&mut io, "data", "ack"); // seq 0,1 in flight at epoch (0,0)

        // The rebooted receiver sees the in-flight frames: all stale.
        let mut rx = RetxReceiver::with_epoch(1);
        for (_, raw) in io.sent.clone() {
            io.stage("rx_data", raw);
        }
        let out = rx.poll(&mut io, "rx_data", "rx_ack");
        assert!(out.is_empty(), "stale frames must not be delivered");
        assert_eq!(rx.stale_epoch_dropped, 2);
        let resyncs: Vec<Vec<u8>> = io
            .sent
            .iter()
            .filter(|(p, _)| p == "rx_ack")
            .map(|(_, raw)| raw.clone())
            .collect();
        assert_eq!(resyncs.len(), 1, "exactly one resync per poll");

        // The sender adopts the new boot epoch: session bumps, both
        // payloads requeue in order, sequence space restarts.
        io.stage("ack", resyncs[0].clone());
        io.sent.clear();
        io.now = 1;
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.resyncs, 1);
        assert_eq!(tx.epoch(), 1);
        let sent = io.data_sent();
        assert_eq!(
            sent,
            vec![(1, 1, 0, b"a".to_vec()), (1, 1, 1, b"b".to_vec()),],
            "redelivery restarts at seq 0, session 1, rx epoch 1"
        );

        // The new receiver incarnation accepts the fresh session.
        for (p, raw) in io.sent.clone() {
            if p == "data" {
                io.stage("rx_data", raw);
            }
        }
        let out = rx.poll(&mut io, "rx_data", "rx_ack");
        assert_eq!(out, vec![b"a".to_vec(), b"b".to_vec()]);
    }

    #[test]
    fn sender_reboot_is_adopted_and_stale_acks_dropped() {
        // A receiver that accepted session 0 up to seq 2 meets a rebooted
        // sender at session 1: it must reset its sequence space and accept
        // the new stream from seq 0 — and the old session's acks must not
        // be believed by the new sender.
        let mut io = PortIo::default();
        let mut rx = RetxReceiver::new();
        io.stage("data", data_frame(0, 0, 0, b"old0"));
        io.stage("data", data_frame(0, 0, 1, b"old1"));
        let out = rx.poll(&mut io, "data", "ack");
        assert_eq!(out, vec![b"old0".to_vec(), b"old1".to_vec()]);

        // The sender reboots: its boot counter gives session epoch 1.
        let mut tx = RetxSender::with_epoch(4, 2, 1);
        // Stale acks from the old incarnation arrive first.
        io.stage("tx_ack", ack_frame(0, 0));
        io.stage("tx_ack", ack_frame(0, 1));
        tx.enqueue(b"new0".to_vec());
        tx.poll(&mut io, "tx_data", "tx_ack");
        assert_eq!(tx.stale_acks_dropped, 2);
        assert_eq!(tx.pending(), 1, "stale acks must not clear new frames");

        // The receiver adopts the newer session and delivers from seq 0.
        io.stage("data", data_frame(1, 0, 0, b"new0"));
        let out = rx.poll(&mut io, "data", "ack");
        assert_eq!(out, vec![b"new0".to_vec()]);
        assert_eq!(rx.resyncs, 1);
        // A straggler from the superseded session is dropped, unacked.
        let acks_before = io.acks_sent().len();
        io.stage("data", data_frame(0, 0, 2, b"old2"));
        assert!(rx.poll(&mut io, "data", "ack").is_empty());
        assert_eq!(rx.stale_epoch_dropped, 1);
        assert_eq!(io.acks_sent().len(), acks_before, "stale frames unacked");
    }

    #[test]
    fn full_reboot_cycle_over_a_lossy_wire_stays_in_order() {
        // End-to-end over real wires: stream 20 payloads, "reboot" the
        // receiver mid-stream (epoch bump, fresh state), and check the
        // tail of the stream still arrives in order at the new
        // incarnation, with the sender's peer-down level cleared.
        let got = Arc::new(Mutex::new(Vec::new()));
        struct RebootingSink {
            rx: RetxReceiver,
            got: Arc<Mutex<Vec<Vec<u8>>>>,
            reboot_at: u64,
            rebooted: bool,
        }
        impl Node for RebootingSink {
            fn name(&self) -> &str {
                "sink"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                if !self.rebooted && io.round() >= self.reboot_at {
                    let epoch = self.rx.epoch().wrapping_add(1);
                    self.rx = RetxReceiver::with_epoch(epoch);
                    self.rebooted = true;
                }
                let msgs = self.rx.poll(io, "data", "ack");
                self.got.lock().unwrap().extend(msgs);
            }
        }
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(4, 2),
            fed: 0,
            count: 20,
        }));
        let dst = net.add_node(Box::new(RebootingSink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
            reboot_at: 10,
            rebooted: false,
        }));
        net.connect_lossy(
            src,
            "data",
            dst,
            "data",
            16,
            1,
            LossModel::new(0xB007).with_drop(100),
        );
        net.connect(dst, "ack", src, "ack", 16, 1);
        net.run(400);
        let delivered = got.lock().unwrap().clone();
        // The new incarnation re-receives whatever was unacked at reboot
        // time, then the rest — strictly in order with no gaps from the
        // resync point on. The full expected stream is a prefix delivered
        // to the old incarnation, then a suffix (with overlap) to the new.
        let all = expected(20);
        assert_eq!(
            delivered.last(),
            Some(&all[19]),
            "tail of the stream must reach the new incarnation"
        );
    }

    /// A [`Source`] that mirrors its sender counters into a shared cell so
    /// the test can compare them against the network's observability.
    struct CountingSource {
        tx: RetxSender,
        fed: usize,
        count: usize,
        stats: Arc<Mutex<(u64, u64)>>, // (retransmissions, acked)
    }

    impl Node for CountingSource {
        fn name(&self) -> &str {
            "source"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            while self.fed < self.count && self.tx.pending() < 64 {
                self.tx.enqueue(vec![self.fed as u8, (self.fed >> 8) as u8]);
                self.fed += 1;
            }
            self.tx.poll(io, "data", "ack");
            *self.stats.lock().unwrap() = (self.tx.retransmissions, self.tx.acked);
        }
    }

    /// A [`Sink`] that mirrors its receiver counters the same way.
    struct CountingSink {
        rx: RetxReceiver,
        got: Arc<Mutex<Vec<Vec<u8>>>>,
        stats: Arc<Mutex<(u64, u64)>>, // (delivered, duplicates_ignored)
    }

    impl Node for CountingSink {
        fn name(&self) -> &str {
            "sink"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            let msgs = self.rx.poll(io, "data", "ack");
            self.got.lock().unwrap().extend(msgs);
            *self.stats.lock().unwrap() = (self.rx.delivered, self.rx.duplicates_ignored);
        }
    }

    #[test]
    fn heavy_duplicate_reorder_loss_stays_exactly_once_with_agreeing_counters() {
        // The regression for the duplicate-then-reorder interaction under a
        // full LossModel: aggressive duplication and reordering on both
        // wires plus drops on data. The stream must arrive complete, in
        // order, exactly once, and the sender's own retransmission counter
        // must agree with the network's observability totals — a double
        // `note_retransmit` (or a missed one) breaks the equality.
        let count = 50;
        let got = Arc::new(Mutex::new(Vec::new()));
        let tx_stats = Arc::new(Mutex::new((0u64, 0u64)));
        let rx_stats = Arc::new(Mutex::new((0u64, 0u64)));
        let mut net = Network::new();
        let src = net.add_node(Box::new(CountingSource {
            tx: RetxSender::new(8, 4),
            fed: 0,
            count,
            stats: Arc::clone(&tx_stats),
        }));
        let dst = net.add_node(Box::new(CountingSink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
            stats: Arc::clone(&rx_stats),
        }));
        let data_loss = LossModel::new(0xD117)
            .with_drop(150)
            .with_duplicate(300)
            .with_reorder(200);
        let ack_loss = LossModel::new(0xD118).with_duplicate(300).with_reorder(200);
        net.connect_lossy(src, "data", dst, "data", 16, 1, data_loss);
        net.connect_lossy(dst, "ack", src, "ack", 16, 1, ack_loss);
        net.run(4000);
        assert_eq!(
            got.lock().unwrap().clone(),
            expected(count),
            "exactly once, in order"
        );
        let (retx, acked) = *tx_stats.lock().unwrap();
        let (delivered, dups_ignored) = *rx_stats.lock().unwrap();
        assert_eq!(delivered, count as u64);
        assert_eq!(acked, count as u64, "each sequence acked exactly once");
        assert_eq!(
            retx, net.obs.metrics.totals.retransmissions,
            "sender counter and observability must agree on every resend"
        );
        let duplicated: u64 = net.wires().iter().map(|w| w.duplicated).sum();
        assert!(duplicated > 0, "loss model never duplicated anything");
        assert!(dups_ignored > 0, "receiver never saw a duplicate");
    }
}

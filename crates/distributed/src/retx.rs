//! Ack/retransmit protocol for lossy wires.
//!
//! A [`RetxSender`] and [`RetxReceiver`] pair turn a wire that drops,
//! duplicates, corrupts, and reorders frames into a reliable in-order
//! stream. The machinery is a textbook selective-repeat ARQ, scaled to the
//! round-based executor:
//!
//! * every data frame carries a 16-bit sequence number and a CRC-16
//!   ([`crate::wire::frame`]);
//! * the receiver acks every *valid* data frame (even duplicates — the ack
//!   may be what was lost), rejects any frame failing the CRC, buffers
//!   out-of-order arrivals, and releases payloads strictly in order;
//! * the sender keeps a window of unacked frames and retransmits each when
//!   its timeout expires, doubling the timeout per attempt (exponential
//!   backoff in rounds) so a congested or dead link is not flooded.
//!
//! Sequence numbers wrap; ordering comparisons use the usual serial-number
//! arithmetic, sound while fewer than 2^15 frames are in flight — the
//! window is bounded far below that.

use crate::node::NodeIo;
use crate::wire::{deframe, frame};
use std::collections::{BTreeMap, VecDeque};

/// Frame kind byte: application data.
pub const FRAME_DATA: u8 = 0;
/// Frame kind byte: acknowledgement.
pub const FRAME_ACK: u8 = 1;

/// Serial-number comparison: true when `a` precedes `b` modulo 2^16.
fn seq_before(a: u16, b: u16) -> bool {
    a != b && b.wrapping_sub(a) < 0x8000
}

/// Builds a data frame: kind, little-endian sequence number, payload, CRC.
fn data_frame(seq: u16, payload: &[u8]) -> Vec<u8> {
    let mut inner = Vec::with_capacity(3 + payload.len());
    inner.push(FRAME_DATA);
    inner.extend_from_slice(&seq.to_le_bytes());
    inner.extend_from_slice(payload);
    frame(&inner)
}

/// Builds an ack frame: kind, little-endian sequence number, CRC.
fn ack_frame(seq: u16) -> Vec<u8> {
    let mut inner = Vec::with_capacity(3);
    inner.push(FRAME_ACK);
    inner.extend_from_slice(&seq.to_le_bytes());
    frame(&inner)
}

#[derive(Debug, Clone)]
struct Pending {
    payload: Vec<u8>,
    last_sent: u64,
    attempts: u32,
}

/// The sending half: a bounded window of unacked frames with timeout-driven
/// retransmission and exponential backoff.
#[derive(Debug, Clone)]
pub struct RetxSender {
    window: usize,
    timeout: u64,
    next_seq: u16,
    inflight: BTreeMap<u16, Pending>,
    queue: VecDeque<Vec<u8>>,
    /// Frames sent more than once.
    pub retransmissions: u64,
    /// Frames acknowledged.
    pub acked: u64,
}

impl RetxSender {
    /// A sender with the given window (max unacked frames) and base
    /// retransmit timeout in rounds.
    pub fn new(window: usize, timeout: u64) -> RetxSender {
        assert!(window > 0, "retx window must be positive");
        assert!(timeout > 0, "retx timeout must be at least one round");
        RetxSender {
            window,
            timeout,
            next_seq: 0,
            inflight: BTreeMap::new(),
            queue: VecDeque::new(),
            retransmissions: 0,
            acked: 0,
        }
    }

    /// Queues a payload for reliable delivery.
    pub fn enqueue(&mut self, payload: Vec<u8>) {
        self.queue.push_back(payload);
    }

    /// Payloads not yet acknowledged (queued or in flight).
    pub fn pending(&self) -> usize {
        self.queue.len() + self.inflight.len()
    }

    /// One round of protocol work: drain acks from `ack_port`, retransmit
    /// expired frames on `data_port`, then fill the window from the queue.
    pub fn poll(&mut self, io: &mut dyn NodeIo, data_port: &str, ack_port: &str) {
        // 1. Acks. A corrupt ack fails the CRC and is ignored; the data
        //    frame it covered simply retransmits later.
        while let Some(raw) = io.recv(ack_port) {
            let Some(inner) = deframe(&raw) else { continue };
            if inner.len() != 3 || inner[0] != FRAME_ACK {
                continue;
            }
            let seq = u16::from_le_bytes([inner[1], inner[2]]);
            if self.inflight.remove(&seq).is_some() {
                self.acked += 1;
            }
        }
        let now = io.round();
        // 2. Retransmissions. Timeout doubles per attempt (capped so the
        //    shift cannot overflow); a full wire just waits for next round.
        let expired: Vec<u16> = self
            .inflight
            .iter()
            .filter(|(_, p)| now >= p.last_sent + (self.timeout << p.attempts.min(5)))
            .map(|(&seq, _)| seq)
            .collect();
        for seq in expired {
            // One lookup, no panic path: a seq collected above could only
            // vanish if this loop removed it, and it never removes.
            let Some(p) = self.inflight.get_mut(&seq) else {
                continue;
            };
            let f = data_frame(seq, &p.payload);
            if io.send(data_port, f).is_ok() {
                p.last_sent = now;
                p.attempts += 1;
                self.retransmissions += 1;
                io.note_retransmit(seq);
            }
        }
        // 3. New transmissions, up to the window.
        while self.inflight.len() < self.window {
            let Some(payload) = self.queue.pop_front() else {
                break;
            };
            let seq = self.next_seq;
            if io.send(data_port, data_frame(seq, &payload)).is_err() {
                // Wire full: put it back and try next round.
                self.queue.push_front(payload);
                break;
            }
            self.next_seq = self.next_seq.wrapping_add(1);
            self.inflight.insert(
                seq,
                Pending {
                    payload,
                    last_sent: now,
                    attempts: 0,
                },
            );
        }
    }
}

/// The receiving half: CRC guard, duplicate suppression, in-order release.
#[derive(Debug, Clone)]
pub struct RetxReceiver {
    expected: u16,
    buffer: BTreeMap<u16, Vec<u8>>,
    /// Frames rejected by the CRC or malformed past it. Never delivered —
    /// the e9 bench asserts this stays equal to "corrupt frames seen".
    pub corrupt_rejected: u64,
    /// Valid frames ignored as duplicates (still acked).
    pub duplicates_ignored: u64,
    /// Payloads released to the application, in order.
    pub delivered: u64,
}

impl RetxReceiver {
    /// A receiver expecting sequence 0 first.
    pub fn new() -> RetxReceiver {
        RetxReceiver {
            expected: 0,
            buffer: BTreeMap::new(),
            corrupt_rejected: 0,
            duplicates_ignored: 0,
            delivered: 0,
        }
    }

    /// One round of protocol work: drain `data_port`, ack every valid
    /// frame on `ack_port`, and return the in-order payload run.
    pub fn poll(&mut self, io: &mut dyn NodeIo, data_port: &str, ack_port: &str) -> Vec<Vec<u8>> {
        while let Some(raw) = io.recv(data_port) {
            // The CRC guard: damaged frames die here, unacked, before any
            // of their bytes are believed.
            let Some(inner) = deframe(&raw) else {
                self.corrupt_rejected += 1;
                continue;
            };
            if inner.len() < 3 || inner[0] != FRAME_DATA {
                self.corrupt_rejected += 1;
                continue;
            }
            let seq = u16::from_le_bytes([inner[1], inner[2]]);
            let payload = inner[3..].to_vec();
            // Ack even duplicates: the earlier ack may be the thing that
            // was lost. A full ack wire is fine — the data retransmits.
            let _ = io.send(ack_port, ack_frame(seq));
            if seq_before(seq, self.expected) || self.buffer.contains_key(&seq) {
                self.duplicates_ignored += 1;
                continue;
            }
            self.buffer.insert(seq, payload);
        }
        let mut out = Vec::new();
        while let Some(payload) = self.buffer.remove(&self.expected) {
            out.push(payload);
            self.expected = self.expected.wrapping_add(1);
            self.delivered += 1;
        }
        out
    }
}

impl Default for RetxReceiver {
    fn default() -> Self {
        RetxReceiver::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::network::Network;
    use crate::node::Node;
    use sep_fault::LossModel;
    use std::sync::{Arc, Mutex};

    /// Sends `count` numbered payloads reliably.
    struct Source {
        tx: RetxSender,
        fed: usize,
        count: usize,
    }

    impl Node for Source {
        fn name(&self) -> &str {
            "source"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            while self.fed < self.count && self.tx.pending() < 64 {
                self.tx.enqueue(vec![self.fed as u8, (self.fed >> 8) as u8]);
                self.fed += 1;
            }
            self.tx.poll(io, "data", "ack");
        }
    }

    /// Collects delivered payloads into a shared vector.
    struct Sink {
        rx: RetxReceiver,
        got: Arc<Mutex<Vec<Vec<u8>>>>,
    }

    impl Node for Sink {
        fn name(&self) -> &str {
            "sink"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            let msgs = self.rx.poll(io, "data", "ack");
            self.got.lock().unwrap().extend(msgs);
        }
    }

    fn run_transfer(
        count: usize,
        loss: Option<(LossModel, LossModel)>,
        rounds: u64,
    ) -> Vec<Vec<u8>> {
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(8, 4),
            fed: 0,
            count,
        }));
        let dst = net.add_node(Box::new(Sink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
        }));
        match loss {
            Some((data_loss, ack_loss)) => {
                net.connect_lossy(src, "data", dst, "data", 16, 1, data_loss);
                net.connect_lossy(dst, "ack", src, "ack", 16, 1, ack_loss);
            }
            None => {
                net.connect(src, "data", dst, "data", 16, 1);
                net.connect(dst, "ack", src, "ack", 16, 1);
            }
        }
        net.run(rounds);
        let result = got.lock().unwrap().clone();
        result
    }

    fn expected(count: usize) -> Vec<Vec<u8>> {
        (0..count).map(|i| vec![i as u8, (i >> 8) as u8]).collect()
    }

    #[test]
    fn lossless_transfer_is_complete_and_ordered() {
        assert_eq!(run_transfer(40, None, 60), expected(40));
    }

    #[test]
    fn lossy_transfer_recovers_everything_in_order() {
        // 20% drop + 5% each of duplicate/corrupt/reorder on data, 10%
        // drop on acks — and the stream still arrives complete, in order.
        let data_loss = LossModel::new(0xFEED)
            .with_drop(200)
            .with_duplicate(50)
            .with_corrupt(50)
            .with_reorder(50);
        let ack_loss = LossModel::new(0xACED).with_drop(100);
        assert_eq!(
            run_transfer(40, Some((data_loss, ack_loss)), 2000),
            expected(40)
        );
    }

    #[test]
    fn corrupt_frames_are_rejected_never_delivered() {
        let got = Arc::new(Mutex::new(Vec::new()));
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(8, 4),
            fed: 0,
            count: 30,
        }));
        let dst = net.add_node(Box::new(Sink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
        }));
        net.connect_lossy(
            src,
            "data",
            dst,
            "data",
            16,
            1,
            LossModel::new(7).with_corrupt(300),
        );
        net.connect(dst, "ack", src, "ack", 16, 1);
        net.run(1000);
        // Every payload arrives intact: the corrupted copies were all
        // stopped at the CRC and made up with retransmissions.
        assert_eq!(got.lock().unwrap().clone(), expected(30));
        let corrupted: u64 = net.wires().iter().map(|w| w.corrupted).sum();
        assert!(corrupted > 0, "loss model never corrupted anything");
    }

    #[test]
    fn retransmissions_counted_in_observability() {
        let mut net = Network::new();
        let src = net.add_node(Box::new(Source {
            tx: RetxSender::new(4, 3),
            fed: 0,
            count: 20,
        }));
        let got = Arc::new(Mutex::new(Vec::new()));
        let dst = net.add_node(Box::new(Sink {
            rx: RetxReceiver::new(),
            got,
        }));
        net.connect_lossy(
            src,
            "data",
            dst,
            "data",
            16,
            1,
            LossModel::new(11).with_drop(400),
        );
        net.connect(dst, "ack", src, "ack", 16, 1);
        net.run(600);
        assert!(
            net.obs.metrics.totals.retransmissions > 0,
            "40% drop must force retransmissions"
        );
        assert_eq!(
            net.obs.metrics.regime(0).map(|c| c.retransmissions),
            Some(net.obs.metrics.totals.retransmissions),
            "only the sender retransmits"
        );
    }

    #[test]
    fn sequence_comparison_wraps() {
        assert!(seq_before(0xFFFF, 0));
        assert!(seq_before(0xFFF0, 0x000F));
        assert!(!seq_before(0, 0xFFFF));
        assert!(!seq_before(5, 5));
        assert!(seq_before(5, 6));
    }

    /// A scripted [`NodeIo`] for protocol edge cases: incoming frames are
    /// staged per port, outgoing frames and retransmit notes are recorded.
    #[derive(Default)]
    struct PortIo {
        incoming: std::collections::BTreeMap<String, VecDeque<Vec<u8>>>,
        sent: Vec<(String, Vec<u8>)>,
        now: u64,
        retx_notes: Vec<u16>,
    }

    impl PortIo {
        fn stage(&mut self, port: &str, frame: Vec<u8>) {
            self.incoming
                .entry(port.to_string())
                .or_default()
                .push_back(frame);
        }

        fn acks_sent(&self) -> Vec<u16> {
            self.sent
                .iter()
                .filter(|(port, _)| port == "ack")
                .filter_map(|(_, raw)| deframe(raw))
                .filter(|inner| inner.len() == 3 && inner[0] == FRAME_ACK)
                .map(|inner| u16::from_le_bytes([inner[1], inner[2]]))
                .collect()
        }
    }

    impl NodeIo for PortIo {
        fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
            self.incoming.get_mut(port)?.pop_front()
        }
        fn send(&mut self, port: &str, msg: Vec<u8>) -> Result<(), crate::node::SendError> {
            self.sent.push((port.to_string(), msg));
            Ok(())
        }
        fn round(&self) -> u64 {
            self.now
        }
        fn note_retransmit(&mut self, seq: u16) {
            self.retx_notes.push(seq);
        }
    }

    #[test]
    fn duplicate_after_reorder_delivers_once_and_acks_every_copy() {
        // The duplicate-then-reorder edge: the wire duplicated frame 0 and
        // a reorder pushed frame 1 ahead of both copies. The receiver must
        // release each payload exactly once, in order, while still acking
        // all three arrivals (an earlier ack may be what was lost).
        let mut io = PortIo::default();
        io.stage("data", data_frame(1, b"one"));
        io.stage("data", data_frame(0, b"zero"));
        io.stage("data", data_frame(0, b"zero"));
        let mut rx = RetxReceiver::new();
        let out = rx.poll(&mut io, "data", "ack");
        assert_eq!(out, vec![b"zero".to_vec(), b"one".to_vec()]);
        assert_eq!(rx.delivered, 2);
        assert_eq!(rx.duplicates_ignored, 1);
        assert_eq!(io.acks_sent(), vec![1, 0, 0]);
        // A straggler copy of an already-released frame is also ignored —
        // `seq_before` catches it even though the buffer has moved on.
        io.stage("data", data_frame(1, b"one"));
        assert!(rx.poll(&mut io, "data", "ack").is_empty());
        assert_eq!(rx.delivered, 2);
        assert_eq!(rx.duplicates_ignored, 2);
    }

    #[test]
    fn duplicated_reordered_acks_never_double_count_retransmissions() {
        // Both inflight frames are long expired when their acks finally
        // arrive — duplicated and reordered by the wire. Acks drain before
        // the expiry scan, so nothing retransmits and nothing is counted
        // twice (`acked` bumps only on the first copy of each ack).
        let mut io = PortIo::default();
        let mut tx = RetxSender::new(4, 2);
        tx.enqueue(b"a".to_vec());
        tx.enqueue(b"b".to_vec());
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.pending(), 2);
        io.now = 10;
        io.stage("ack", ack_frame(1));
        io.stage("ack", ack_frame(0));
        io.stage("ack", ack_frame(0));
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.acked, 2);
        assert_eq!(tx.pending(), 0);
        assert_eq!(tx.retransmissions, 0);
        assert!(io.retx_notes.is_empty(), "no frame was actually resent");
    }

    #[test]
    fn expired_frame_retransmits_once_and_notes_once_per_resend() {
        let mut io = PortIo::default();
        let mut tx = RetxSender::new(4, 2);
        tx.enqueue(b"a".to_vec());
        tx.poll(&mut io, "data", "ack"); // fresh send at round 0
        io.now = 2; // base timeout expired
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.retransmissions, 1);
        assert_eq!(io.retx_notes, vec![0]);
        io.now = 3; // backoff doubled: not expired again yet
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.retransmissions, 1, "backoff suppresses a re-resend");
        io.now = 6; // 2 + (2 << 1) = 6: second expiry
        tx.poll(&mut io, "data", "ack");
        assert_eq!(tx.retransmissions, 2);
        assert_eq!(io.retx_notes, vec![0, 0]);
    }

    /// A [`Source`] that mirrors its sender counters into a shared cell so
    /// the test can compare them against the network's observability.
    struct CountingSource {
        tx: RetxSender,
        fed: usize,
        count: usize,
        stats: Arc<Mutex<(u64, u64)>>, // (retransmissions, acked)
    }

    impl Node for CountingSource {
        fn name(&self) -> &str {
            "source"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            while self.fed < self.count && self.tx.pending() < 64 {
                self.tx.enqueue(vec![self.fed as u8, (self.fed >> 8) as u8]);
                self.fed += 1;
            }
            self.tx.poll(io, "data", "ack");
            *self.stats.lock().unwrap() = (self.tx.retransmissions, self.tx.acked);
        }
    }

    /// A [`Sink`] that mirrors its receiver counters the same way.
    struct CountingSink {
        rx: RetxReceiver,
        got: Arc<Mutex<Vec<Vec<u8>>>>,
        stats: Arc<Mutex<(u64, u64)>>, // (delivered, duplicates_ignored)
    }

    impl Node for CountingSink {
        fn name(&self) -> &str {
            "sink"
        }
        fn step(&mut self, io: &mut dyn NodeIo) {
            let msgs = self.rx.poll(io, "data", "ack");
            self.got.lock().unwrap().extend(msgs);
            *self.stats.lock().unwrap() = (self.rx.delivered, self.rx.duplicates_ignored);
        }
    }

    #[test]
    fn heavy_duplicate_reorder_loss_stays_exactly_once_with_agreeing_counters() {
        // The regression for the duplicate-then-reorder interaction under a
        // full LossModel: aggressive duplication and reordering on both
        // wires plus drops on data. The stream must arrive complete, in
        // order, exactly once, and the sender's own retransmission counter
        // must agree with the network's observability totals — a double
        // `note_retransmit` (or a missed one) breaks the equality.
        let count = 50;
        let got = Arc::new(Mutex::new(Vec::new()));
        let tx_stats = Arc::new(Mutex::new((0u64, 0u64)));
        let rx_stats = Arc::new(Mutex::new((0u64, 0u64)));
        let mut net = Network::new();
        let src = net.add_node(Box::new(CountingSource {
            tx: RetxSender::new(8, 4),
            fed: 0,
            count,
            stats: Arc::clone(&tx_stats),
        }));
        let dst = net.add_node(Box::new(CountingSink {
            rx: RetxReceiver::new(),
            got: Arc::clone(&got),
            stats: Arc::clone(&rx_stats),
        }));
        let data_loss = LossModel::new(0xD117)
            .with_drop(150)
            .with_duplicate(300)
            .with_reorder(200);
        let ack_loss = LossModel::new(0xD118).with_duplicate(300).with_reorder(200);
        net.connect_lossy(src, "data", dst, "data", 16, 1, data_loss);
        net.connect_lossy(dst, "ack", src, "ack", 16, 1, ack_loss);
        net.run(4000);
        assert_eq!(
            got.lock().unwrap().clone(),
            expected(count),
            "exactly once, in order"
        );
        let (retx, acked) = *tx_stats.lock().unwrap();
        let (delivered, dups_ignored) = *rx_stats.lock().unwrap();
        assert_eq!(delivered, count as u64);
        assert_eq!(acked, count as u64, "each sequence acked exactly once");
        assert_eq!(
            retx, net.obs.metrics.totals.retransmissions,
            "sender counter and observability must agree on every resend"
        );
        let duplicated: u64 = net.wires().iter().map(|w| w.duplicated).sum();
        assert!(duplicated > 0, "loss model never duplicated anything");
        assert!(dups_ignored > 0, "receiver never saw a duplicate");
    }
}

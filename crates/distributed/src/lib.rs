//! The idealized physically distributed system.
//!
//! > "We can imagine an idealized system in which each user is given his own
//! > private, physically isolated, single-user machine and a dedicated
//! > communication line to a common, shared file-server. ... the security of
//! > the rest of the system follows from the physical separation of its
//! > components and the absence of direct communications paths."
//!
//! This crate is that idealization, executable: [`Node`]s are private
//! machines, [`Network`] wires them together with dedicated unidirectional
//! lines, and a deterministic round-based executor runs them. It serves two
//! roles:
//!
//! 1. the *design level* at which trusted components (file-server, Guard,
//!    SNFE censor) are built and verified, assuming physical isolation; and
//! 2. the *reference behaviour* that a separation kernel must be
//!    indistinguishable from (experiment E6 compares per-component traces
//!    across the two substrates).

#![forbid(unsafe_code)]

pub mod network;
pub mod node;
pub mod retx;
pub mod wire;

pub use network::{Network, NodeId};
pub use node::{Node, NodeIo, SendError};
pub use retx::{RetxReceiver, RetxSender, GIVE_UP_ATTEMPTS, MAX_BACKOFF_SHIFT};
pub use wire::{crc16, deframe, frame, Wire, WireOverflow};

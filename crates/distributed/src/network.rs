//! The network executor: deterministic rounds over nodes and wires.

use crate::node::{Node, NodeIo, SendError};
use crate::wire::Wire;
use sep_model::trace::TraceSet;
use sep_obs::{ObsEvent, Recorder};

/// Identifies a node within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// A distributed system: nodes plus dedicated wires.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    wires: Vec<Wire>,
    round: u64,
    tracing: bool,
    /// Per-node observation traces: every receive and send, in order. Used
    /// for the indistinguishability experiments.
    pub traces: TraceSet<String>,
    /// Observability recorder: wire traffic counters, timestamped by round
    /// number. Nodes are registered as the recorder's "regimes".
    pub obs: Recorder,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            wires: Vec::new(),
            round: 0,
            tracing: true,
            traces: TraceSet::new(),
            obs: Recorder::disabled(),
        }
    }

    /// Switches per-message observation traces on or off (on by default).
    ///
    /// Tracing formats every send and receive into a per-node string — the
    /// right default for the indistinguishability and containment
    /// experiments, but measurable overhead for fleet-scale load runs,
    /// which turn it off. Counters in [`Network::obs`] stay on either way.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Adds a node.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.obs
            .metrics
            .register_regime(self.nodes.len(), node.name());
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `from`'s port to `to`'s port with a dedicated wire.
    ///
    /// # Panics
    ///
    /// Panics when either port already has a wire in that direction — ports
    /// are dedicated lines, not buses.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
        capacity: usize,
        latency: u64,
    ) {
        assert!(
            !self
                .wires
                .iter()
                .any(|w| w.from_node == from.0 && w.from_port == from_port),
            "port {from_port} of node {} already wired",
            self.nodes[from.0].name()
        );
        assert!(
            !self
                .wires
                .iter()
                .any(|w| w.to_node == to.0 && w.to_port == to_port),
            "port {to_port} of node {} already wired",
            self.nodes[to.0].name()
        );
        self.wires.push(Wire::new(
            from.0, from_port, to.0, to_port, capacity, latency,
        ));
    }

    /// Like [`Network::connect`], but the wire misbehaves per the seeded
    /// loss model (drops, duplicates, bit-flips, reorders). The wire is
    /// built with its loss model attached rather than patched after the
    /// fact, so there is no window in which a lossy wire looks lossless.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_lossy(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
        capacity: usize,
        latency: u64,
        loss: sep_fault::LossModel,
    ) {
        self.connect(from, from_port, to, to_port, capacity, latency);
        // `connect` either pushed the wire or panicked on a config bug.
        if let Some(w) = self.wires.last_mut() {
            w.set_loss(loss);
        }
    }

    /// The wires, in connection order (loss counters live on them).
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Runs one round: every node steps once, in insertion order.
    pub fn run_round(&mut self) {
        let round = self.round;
        for idx in 0..self.nodes.len() {
            // Split borrows: the node, the wires, and the recorder.
            let (node, wires, obs) = {
                let Network {
                    nodes, wires, obs, ..
                } = self;
                (&mut nodes[idx], wires, obs)
            };
            let name = node.name().to_string();
            let mut io = RoundIo {
                node: idx,
                round,
                wires,
                obs,
                tracing: self.tracing,
                events: Vec::new(),
            };
            node.step(&mut io);
            for ev in io.events {
                self.traces.record(&name, ev);
            }
        }
        self.round += 1;
    }

    /// Runs `n` rounds.
    pub fn run(&mut self, n: u64) {
        for _ in 0..n {
            self.run_round();
        }
    }

    /// Total messages currently in flight across all wires.
    pub fn in_flight(&self) -> usize {
        self.wires.iter().map(Wire::in_flight).sum()
    }
}

struct RoundIo<'a> {
    node: usize,
    round: u64,
    wires: &'a mut [Wire],
    obs: &'a mut Recorder,
    tracing: bool,
    events: Vec<String>,
}

impl NodeIo for RoundIo<'_> {
    fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
        let round = self.round;
        let wire = self
            .wires
            .iter_mut()
            .find(|w| w.to_node == self.node && w.to_port == port)?;
        let msg = wire.pop_deliverable(round)?;
        self.obs.metrics.regime_mut(self.node).messages_received += 1;
        self.obs
            .metrics
            .regime_mut(self.node)
            .channel_bytes_received += msg.len() as u64;
        self.obs.emit(
            round,
            ObsEvent::WireRecv {
                node: self.node as u16,
                bytes: msg.len() as u32,
            },
        );
        if self.tracing {
            self.events.push(format!("recv {port} {}", hex(&msg)));
        }
        Some(msg)
    }

    fn send(&mut self, port: &str, msg: Vec<u8>) -> Result<(), SendError> {
        let round = self.round;
        let wire = self
            .wires
            .iter_mut()
            .find(|w| w.from_node == self.node && w.from_port == port)
            .ok_or_else(|| SendError::NoSuchPort(port.to_string()))?;
        let bytes = msg.len() as u64;
        let traced = self.tracing.then(|| format!("send {port} {}", hex(&msg)));
        wire.push(round, msg)
            .map_err(|_| SendError::WireFull(port.to_string()))?;
        self.obs.metrics.totals.wire_messages += 1;
        self.obs.metrics.totals.wire_bytes += bytes;
        self.obs.metrics.regime_mut(self.node).messages_sent += 1;
        self.obs.metrics.regime_mut(self.node).channel_bytes_sent += bytes;
        self.obs.emit(
            round,
            ObsEvent::WireSend {
                node: self.node as u16,
                bytes: bytes as u32,
            },
        );
        if let Some(ev) = traced {
            self.events.push(ev);
        }
        Ok(())
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn note_retransmit(&mut self, seq: u16) {
        let round = self.round;
        self.obs.metrics.totals.retransmissions += 1;
        self.obs.metrics.regime_mut(self.node).retransmissions += 1;
        self.obs.emit(
            round,
            ObsEvent::Retransmit {
                node: self.node as u16,
                seq,
            },
        );
        if self.tracing {
            self.events.push(format!("retx seq{seq}"));
        }
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends its name's bytes once, then echoes everything it receives.
    struct Echo {
        name: String,
        greeted: bool,
    }

    impl Echo {
        fn new(name: &str) -> Box<Echo> {
            Box::new(Echo {
                name: name.to_string(),
                greeted: false,
            })
        }
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }

        fn step(&mut self, io: &mut dyn NodeIo) {
            if !self.greeted {
                let _ = io.send("out", self.name.clone().into_bytes());
                self.greeted = true;
            }
            while let Some(msg) = io.recv("in") {
                let _ = io.send("out", msg);
            }
        }
    }

    #[test]
    fn ring_passes_messages() {
        let mut net = Network::new();
        let a = net.add_node(Echo::new("a"));
        let b = net.add_node(Echo::new("b"));
        net.connect(a, "out", b, "in", 8, 1);
        net.connect(b, "out", a, "in", 8, 1);
        net.run(6);
        // Both greetings circulate; traces record sends and receives.
        assert!(net
            .traces
            .trace("a")
            .iter()
            .any(|e| e.starts_with("recv in")));
        assert!(net
            .traces
            .trace("b")
            .iter()
            .any(|e| e.starts_with("recv in")));
    }

    #[test]
    fn unconnected_port_errors() {
        struct Lost;
        impl Node for Lost {
            fn name(&self) -> &str {
                "lost"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                assert_eq!(
                    io.send("nowhere", vec![1]),
                    Err(SendError::NoSuchPort("nowhere".to_string()))
                );
                assert_eq!(io.recv("nothing"), None);
            }
        }
        let mut net = Network::new();
        net.add_node(Box::new(Lost));
        net.run_round();
    }

    #[test]
    fn back_pressure_reports_wire_full() {
        struct Flood;
        impl Node for Flood {
            fn name(&self) -> &str {
                "flood"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                let mut sent = 0;
                while io.send("out", vec![0]).is_ok() {
                    sent += 1;
                    assert!(sent <= 2, "capacity not enforced");
                }
            }
        }
        struct Sink;
        impl Node for Sink {
            fn name(&self) -> &str {
                "sink"
            }
            fn step(&mut self, _io: &mut dyn NodeIo) {}
        }
        let mut net = Network::new();
        let f = net.add_node(Box::new(Flood));
        let s = net.add_node(Box::new(Sink));
        net.connect(f, "out", s, "in", 2, 1);
        net.run_round();
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn ports_are_dedicated() {
        let mut net = Network::new();
        let a = net.add_node(Echo::new("a"));
        let b = net.add_node(Echo::new("b"));
        let c = net.add_node(Echo::new("c"));
        net.connect(a, "out", b, "in", 1, 1);
        net.connect(a, "out", c, "in", 1, 1);
    }

    #[test]
    fn rounds_advance_deterministically() {
        let mut net = Network::new();
        assert_eq!(net.round(), 0);
        net.run(5);
        assert_eq!(net.round(), 5);
    }

    #[test]
    fn tracing_off_keeps_counters_but_records_no_events() {
        let build = |tracing: bool| {
            let mut net = Network::new();
            net.set_tracing(tracing);
            let a = net.add_node(Echo::new("a"));
            let b = net.add_node(Echo::new("b"));
            net.connect(a, "out", b, "in", 8, 1);
            net.connect(b, "out", a, "in", 8, 1);
            net.run(10);
            net
        };
        let on = build(true);
        let off = build(false);
        assert!(off.traces.is_empty(), "gate left event strings behind");
        assert!(!on.traces.is_empty());
        // The counters are unaffected by the gate.
        assert_eq!(on.obs.metrics, off.obs.metrics);
        assert!(off.obs.metrics.totals.wire_messages > 0);
    }

    #[test]
    fn identical_networks_produce_identical_traces() {
        let build = || {
            let mut net = Network::new();
            let a = net.add_node(Echo::new("a"));
            let b = net.add_node(Echo::new("b"));
            net.connect(a, "out", b, "in", 8, 1);
            net.connect(b, "out", a, "in", 8, 1);
            net.run(10);
            net
        };
        let n1 = build();
        let n2 = build();
        assert!(n1.traces.equivalent(&n2.traces).is_ok());
    }
}

//! The network executor: deterministic rounds over nodes and wires,
//! sequentially or on a worker pool.
//!
//! # The staged round
//!
//! A round has two phases. In the **step phase** every node executes once
//! against a [`StagedIo`]: receives pop the node's incoming wires (a wire
//! has exactly one consumer, so receiving nodes touch disjoint state),
//! while sends are *staged* — admitted against the wire's start-of-round
//! occupancy plus what the node itself already staged this round, and
//! buffered instead of pushed. In the **commit phase** the staged frames
//! are applied to the wires (each wire has exactly one sender, so per-wire
//! FIFO order is simply that sender's send order), and each node's
//! buffered observability — counter deltas, events, trace strings — is
//! committed in node-index order, exactly the order a sequential executor
//! emits it in.
//!
//! Because wire latency is ≥ 1, nothing a node sends in a round is
//! deliverable to any node in the same round; and because send admission
//! never looks at what a *receiver* popped this round, no node's step
//! depends on any other node's step within the round. The step phase is
//! therefore embarrassingly parallel: [`Network::set_workers`] runs it on
//! a pool with a round barrier, and every output — wire state, traces,
//! counters, events, reports built from them — is byte-identical at any
//! worker count, including one.

use crate::node::{Node, NodeIo, SendError};
use crate::wire::Wire;
use sep_model::trace::TraceSet;
use sep_obs::{ObsEvent, Recorder};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::{Barrier, Mutex};

/// Identifies a node within a [`Network`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct NodeId(pub usize);

/// A distributed system: nodes plus dedicated wires.
pub struct Network {
    nodes: Vec<Box<dyn Node>>,
    wires: Vec<Wire>,
    round: u64,
    tracing: bool,
    workers: usize,
    /// Per-node observation traces: every receive and send, in order. Used
    /// for the indistinguishability experiments.
    pub traces: TraceSet<String>,
    /// Observability recorder: wire traffic counters, timestamped by round
    /// number. Nodes are registered as the recorder's "regimes".
    pub obs: Recorder,
}

impl Default for Network {
    fn default() -> Self {
        Network::new()
    }
}

impl Network {
    /// An empty network.
    pub fn new() -> Network {
        Network {
            nodes: Vec::new(),
            wires: Vec::new(),
            round: 0,
            tracing: true,
            workers: 1,
            traces: TraceSet::new(),
            obs: Recorder::disabled(),
        }
    }

    /// Switches per-message observation traces on or off (on by default).
    ///
    /// Tracing formats every send and receive into a per-node string — the
    /// right default for the indistinguishability and containment
    /// experiments, but measurable overhead for fleet-scale load runs,
    /// which turn it off. Counters in [`Network::obs`] stay on either way.
    pub fn set_tracing(&mut self, on: bool) {
        self.tracing = on;
    }

    /// Sets the step-phase worker count used by [`Network::run`] /
    /// [`Network::run_with`] (default 1 = run on the calling thread).
    ///
    /// Workers change wall-clock time and nothing else: the staged round
    /// makes every observable output byte-identical at any worker count.
    pub fn set_workers(&mut self, workers: usize) {
        self.workers = workers.max(1);
    }

    /// The configured step-phase worker count.
    pub fn workers(&self) -> usize {
        self.workers
    }

    /// Adds a node.
    pub fn add_node(&mut self, node: Box<dyn Node>) -> NodeId {
        self.obs
            .metrics
            .register_regime(self.nodes.len(), node.name());
        self.nodes.push(node);
        NodeId(self.nodes.len() - 1)
    }

    /// Connects `from`'s port to `to`'s port with a dedicated wire.
    ///
    /// # Panics
    ///
    /// Panics when either port already has a wire in that direction — ports
    /// are dedicated lines, not buses.
    pub fn connect(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
        capacity: usize,
        latency: u64,
    ) {
        assert!(
            !self
                .wires
                .iter()
                .any(|w| w.from_node == from.0 && w.from_port == from_port),
            "port {from_port} of node {} already wired",
            self.nodes[from.0].name()
        );
        assert!(
            !self
                .wires
                .iter()
                .any(|w| w.to_node == to.0 && w.to_port == to_port),
            "port {to_port} of node {} already wired",
            self.nodes[to.0].name()
        );
        self.wires.push(Wire::new(
            from.0, from_port, to.0, to_port, capacity, latency,
        ));
    }

    /// Like [`Network::connect`], but the wire misbehaves per the seeded
    /// loss model (drops, duplicates, bit-flips, reorders). The wire is
    /// built with its loss model attached rather than patched after the
    /// fact, so there is no window in which a lossy wire looks lossless.
    #[allow(clippy::too_many_arguments)]
    pub fn connect_lossy(
        &mut self,
        from: NodeId,
        from_port: &str,
        to: NodeId,
        to_port: &str,
        capacity: usize,
        latency: u64,
        loss: sep_fault::LossModel,
    ) {
        self.connect(from, from_port, to, to_port, capacity, latency);
        // `connect` either pushed the wire or panicked on a config bug.
        if let Some(w) = self.wires.last_mut() {
            w.set_loss(loss);
        }
    }

    /// The wires, in connection order (loss counters live on them).
    pub fn wires(&self) -> &[Wire] {
        &self.wires
    }

    /// The current round number.
    pub fn round(&self) -> u64 {
        self.round
    }

    /// Runs one round on the calling thread: step phase in node-index
    /// order, then commit. (The worker pool engages only in
    /// [`Network::run`]; a single round is always sequential.)
    pub fn run_round(&mut self) {
        let plan = self.plan();
        self.round_sequential(&plan);
    }

    /// Runs `n` rounds, on the worker pool when one is configured.
    pub fn run(&mut self, n: u64) {
        self.run_with(n, &mut |_| {});
    }

    /// Runs `n` rounds, invoking `after_round` with the just-completed
    /// round count after each commit. The callback runs on the calling
    /// thread while any workers are parked between barriers, so it may
    /// freely inspect state shared with the nodes (the fleet layer samples
    /// its queue-depth gauges here).
    pub fn run_with(&mut self, n: u64, after_round: &mut dyn FnMut(u64)) {
        let workers = self.workers.min(self.nodes.len());
        if workers <= 1 {
            let plan = self.plan();
            for _ in 0..n {
                self.round_sequential(&plan);
                after_round(self.round);
            }
        } else {
            self.run_pool(n, workers, after_round);
        }
    }

    /// Total messages currently in flight across all wires.
    pub fn in_flight(&self) -> usize {
        self.wires.iter().map(Wire::in_flight).sum()
    }

    /// Routing derived from the wire list once per run: which wires each
    /// node reads, and each node's outgoing ports (wire, name, capacity).
    fn plan(&self) -> Plan {
        let mut outs = vec![Vec::new(); self.nodes.len()];
        for (i, w) in self.wires.iter().enumerate() {
            outs[w.from_node].push((i, w.from_port.clone(), w.capacity));
        }
        Plan { outs }
    }

    /// One staged round on the calling thread.
    fn round_sequential(&mut self, plan: &Plan) {
        let round = self.round;
        let keep_events = self.obs.tracing();
        let tracing = self.tracing;
        let start_len: Vec<usize> = self.wires.iter().map(Wire::in_flight).collect();
        let mut outs: Vec<StepOut> = Vec::with_capacity(self.nodes.len());
        {
            let Network { nodes, wires, .. } = self;
            for (idx, node) in nodes.iter_mut().enumerate() {
                let ins: Vec<&mut Wire> = wires.iter_mut().filter(|w| w.to_node == idx).collect();
                let occ = plan.outs[idx]
                    .iter()
                    .map(|&(w, _, _)| start_len[w])
                    .collect();
                let mut io = StagedIo {
                    node: idx,
                    round,
                    ins,
                    outs: &plan.outs[idx],
                    occ,
                    keep_events,
                    tracing,
                    out: StepOut::default(),
                };
                node.step(&mut io);
                outs.push(io.out);
            }
        }
        for (idx, mut out) in outs.into_iter().enumerate() {
            for (w, msg) in out.staged.drain(..) {
                commit_push(&mut self.wires[w], round, msg);
            }
            let name = if out.trace.is_empty() {
                String::new()
            } else {
                self.nodes[idx].name().to_string()
            };
            self.apply_obs(round, idx, out, &name);
        }
        self.round += 1;
    }

    /// Commits one node's buffered observability: counter deltas, obs
    /// events, trace strings. Caller guarantees node-index order.
    fn apply_obs(&mut self, round: u64, idx: usize, out: StepOut, name: &str) {
        let m = &mut self.obs.metrics;
        m.totals.wire_messages += out.sent;
        m.totals.wire_bytes += out.bytes_sent;
        m.totals.retransmissions += out.retransmissions;
        let r = m.regime_mut(idx);
        r.messages_sent += out.sent;
        r.channel_bytes_sent += out.bytes_sent;
        r.messages_received += out.received;
        r.channel_bytes_received += out.bytes_received;
        r.retransmissions += out.retransmissions;
        self.obs.absorb(round, out.events);
        for ev in out.trace {
            self.traces.record(name, ev);
        }
    }

    /// `n` staged rounds with the step phase on `workers` threads.
    ///
    /// Nodes are binned by `index % workers` and *moved* to their worker;
    /// a wire moves to the worker of its receiving node, making every
    /// receive a plain owned-state pop. The only cross-worker traffic is
    /// the staged-frame mailbox per wire (single producer: the sender's
    /// worker), the atomically-published start-of-round occupancy per
    /// wire, and the per-node [`StepOut`] the main thread merges between
    /// the two barriers of each round.
    fn run_pool(&mut self, n: u64, workers: usize, after_round: &mut dyn FnMut(u64)) {
        let plan = self.plan();
        let keep_events = self.obs.tracing();
        let tracing = self.tracing;
        let round0 = self.round;
        let num_nodes = self.nodes.len();
        let num_wires = self.wires.len();
        let names: Vec<String> = self.nodes.iter().map(|nd| nd.name().to_string()).collect();
        // Start-of-round occupancy per wire, re-published by the owning
        // worker at each commit; barrier-separated from every reader.
        let lens: Vec<AtomicUsize> = self
            .wires
            .iter()
            .map(|w| AtomicUsize::new(w.in_flight()))
            .collect();
        // Staged-frame mailbox per wire. A wire has exactly one sender, so
        // each mailbox has one producer per round — the lock is for the
        // receiving worker draining it at commit.
        let staging: Vec<Mutex<Vec<Vec<u8>>>> =
            (0..num_wires).map(|_| Mutex::new(Vec::new())).collect();
        let mailbox: Vec<Mutex<Option<StepOut>>> =
            (0..num_nodes).map(|_| Mutex::new(None)).collect();
        // A panicking node poisons the run: everyone keeps meeting the
        // barriers (no deadlock), skips the work, and the panic is
        // re-raised on the calling thread once the pool drains.
        let poisoned = AtomicBool::new(false);
        let poison_msg: Mutex<Option<String>> = Mutex::new(None);
        let barrier = Barrier::new(workers + 1);

        let mut node_bins: Vec<Vec<(usize, Box<dyn Node>)>> =
            (0..workers).map(|_| Vec::new()).collect();
        for (i, node) in std::mem::take(&mut self.nodes).into_iter().enumerate() {
            node_bins[i % workers].push((i, node));
        }
        let mut wire_bins: Vec<Vec<(usize, Wire)>> = (0..workers).map(|_| Vec::new()).collect();
        for (i, w) in std::mem::take(&mut self.wires).into_iter().enumerate() {
            wire_bins[w.to_node % workers].push((i, w));
        }

        std::thread::scope(|s| {
            let mut handles = Vec::with_capacity(workers);
            for (mut bin_nodes, mut bin_wires) in node_bins.into_iter().zip(wire_bins) {
                let (plan, lens, staging, mailbox, poisoned, poison_msg, barrier) = (
                    &plan,
                    &lens,
                    &staging,
                    &mailbox,
                    &poisoned,
                    &poison_msg,
                    &barrier,
                );
                handles.push(s.spawn(move || {
                    for r in 0..n {
                        let round = round0 + r;
                        if !poisoned.load(Ordering::Acquire) {
                            for (idx, node) in bin_nodes.iter_mut() {
                                let idx = *idx;
                                let ins: Vec<&mut Wire> = bin_wires
                                    .iter_mut()
                                    .filter(|(_, w)| w.to_node == idx)
                                    .map(|(_, w)| w)
                                    .collect();
                                let occ: Vec<usize> = plan.outs[idx]
                                    .iter()
                                    .map(|&(w, _, _)| lens[w].load(Ordering::Acquire))
                                    .collect();
                                let mut io = StagedIo {
                                    node: idx,
                                    round,
                                    ins,
                                    outs: &plan.outs[idx],
                                    occ,
                                    keep_events,
                                    tracing,
                                    out: StepOut::default(),
                                };
                                let stepped = catch_unwind(AssertUnwindSafe(|| node.step(&mut io)));
                                if let Err(p) = stepped {
                                    let mut slot = poison_msg.lock().expect("poison message lock");
                                    if slot.is_none() {
                                        *slot = Some(panic_text(p));
                                    }
                                    poisoned.store(true, Ordering::Release);
                                    break;
                                }
                                for (w, msg) in io.out.staged.drain(..) {
                                    staging[w].lock().expect("wire staging lock").push(msg);
                                }
                                *mailbox[idx].lock().expect("step mailbox lock") = Some(io.out);
                            }
                        }
                        barrier.wait();
                        // The main thread is merging StepOuts now; workers
                        // commit the wires they own.
                        if !poisoned.load(Ordering::Acquire) {
                            for (wi, wire) in bin_wires.iter_mut() {
                                let frames = std::mem::take(
                                    &mut *staging[*wi].lock().expect("wire staging lock"),
                                );
                                for msg in frames {
                                    commit_push(wire, round, msg);
                                }
                                lens[*wi].store(wire.in_flight(), Ordering::Release);
                            }
                        }
                        barrier.wait();
                    }
                    (bin_nodes, bin_wires)
                }));
            }

            for r in 0..n {
                barrier.wait();
                let round = round0 + r;
                if !poisoned.load(Ordering::Acquire) {
                    for (idx, slot) in mailbox.iter().enumerate() {
                        if let Some(out) = slot.lock().expect("step mailbox lock").take() {
                            self.apply_obs(round, idx, out, &names[idx]);
                        }
                    }
                    self.round += 1;
                    after_round(self.round);
                }
                barrier.wait();
            }

            let mut nodes_back: Vec<Option<Box<dyn Node>>> = (0..num_nodes).map(|_| None).collect();
            let mut wires_back: Vec<Option<Wire>> = (0..num_wires).map(|_| None).collect();
            for h in handles {
                let (bn, bw) = h.join().expect("network worker thread");
                for (i, nd) in bn {
                    nodes_back[i] = Some(nd);
                }
                for (i, w) in bw {
                    wires_back[i] = Some(w);
                }
            }
            self.nodes = nodes_back
                .into_iter()
                .map(|o| o.expect("every node returned by its worker"))
                .collect();
            self.wires = wires_back
                .into_iter()
                .map(|o| o.expect("every wire returned by its worker"))
                .collect();
        });

        let poison = poison_msg.lock().expect("poison message lock").take();
        if let Some(msg) = poison {
            panic!("node step panicked in worker: {msg}");
        }
    }
}

/// Per-node outgoing-port routing, derived from the wire list once per run
/// (in-wires need no plan: both executors hand a node its in-wires as
/// exclusive `&mut` borrows).
struct Plan {
    /// Outgoing ports per node: (wire index, port name, capacity).
    outs: Vec<Vec<(usize, String, usize)>>,
}

/// Everything one node's step produced, buffered worker-locally during the
/// step phase and committed at the round barrier in node-index order.
#[derive(Default)]
struct StepOut {
    /// Admitted sends in call order: (wire index, frame).
    staged: Vec<(usize, Vec<u8>)>,
    /// Observability events in emission order (kept only while the
    /// recorder traces — a disabled recorder would drop them anyway).
    events: Vec<ObsEvent>,
    /// Per-node trace strings.
    trace: Vec<String>,
    sent: u64,
    bytes_sent: u64,
    received: u64,
    bytes_received: u64,
    retransmissions: u64,
}

/// The I/O context a stepping node sees: exclusive access to its incoming
/// wires, staged sends on its outgoing ports, and worker-local buffers for
/// everything observable. Send admission is against `start-of-round
/// occupancy + own staged count`, so it cannot depend on what any other
/// node did this round.
struct StagedIo<'a> {
    node: usize,
    round: u64,
    ins: Vec<&'a mut Wire>,
    outs: &'a [(usize, String, usize)],
    /// Occupancy per out-port: start-of-round length plus frames this node
    /// staged so far (parallel to `outs`).
    occ: Vec<usize>,
    keep_events: bool,
    tracing: bool,
    out: StepOut,
}

impl NodeIo for StagedIo<'_> {
    fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
        let round = self.round;
        let wire = self.ins.iter_mut().find(|w| w.to_port == port)?;
        let msg = wire.pop_deliverable(round)?;
        self.out.received += 1;
        self.out.bytes_received += msg.len() as u64;
        if self.keep_events {
            self.out.events.push(ObsEvent::WireRecv {
                node: self.node as u16,
                bytes: msg.len() as u32,
            });
        }
        if self.tracing {
            self.out.trace.push(format!("recv {port} {}", hex(&msg)));
        }
        Some(msg)
    }

    fn send(&mut self, port: &str, msg: Vec<u8>) -> Result<(), SendError> {
        let slot = self
            .outs
            .iter()
            .position(|(_, p, _)| p == port)
            .ok_or_else(|| SendError::NoSuchPort(port.to_string()))?;
        let (wire, _, capacity) = &self.outs[slot];
        if self.occ[slot] >= *capacity {
            return Err(SendError::WireFull(port.to_string()));
        }
        self.occ[slot] += 1;
        let bytes = msg.len() as u64;
        self.out.sent += 1;
        self.out.bytes_sent += bytes;
        if self.keep_events {
            self.out.events.push(ObsEvent::WireSend {
                node: self.node as u16,
                bytes: bytes as u32,
            });
        }
        if self.tracing {
            self.out.trace.push(format!("send {port} {}", hex(&msg)));
        }
        self.out.staged.push((*wire, msg));
        Ok(())
    }

    fn round(&self) -> u64 {
        self.round
    }

    fn note_retransmit(&mut self, seq: u16) {
        self.out.retransmissions += 1;
        if self.keep_events {
            self.out.events.push(ObsEvent::Retransmit {
                node: self.node as u16,
                seq,
            });
        }
        if self.tracing {
            self.out.trace.push(format!("retx seq{seq}"));
        }
    }
}

/// Applies one staged frame to its wire. Admission already checked the
/// start-of-round occupancy and pops only shrink the queue, so the only
/// way this can still overflow is a loss-model *duplicate* that rode along
/// earlier in the same commit; the excess frame is charged to the wire as
/// a drop — over-capacity loss, never a panic.
fn commit_push(wire: &mut Wire, round: u64, msg: Vec<u8>) {
    if wire.push(round, msg).is_err() {
        wire.dropped += 1;
    }
}

fn panic_text(p: Box<dyn std::any::Any + Send>) -> String {
    if let Some(s) = p.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = p.downcast_ref::<String>() {
        s.clone()
    } else {
        "non-string panic payload".to_string()
    }
}

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Sends its name's bytes once, then echoes everything it receives.
    struct Echo {
        name: String,
        greeted: bool,
    }

    impl Echo {
        fn new(name: &str) -> Box<Echo> {
            Box::new(Echo {
                name: name.to_string(),
                greeted: false,
            })
        }
    }

    impl Node for Echo {
        fn name(&self) -> &str {
            &self.name
        }

        fn step(&mut self, io: &mut dyn NodeIo) {
            if !self.greeted {
                let _ = io.send("out", self.name.clone().into_bytes());
                self.greeted = true;
            }
            while let Some(msg) = io.recv("in") {
                let _ = io.send("out", msg);
            }
        }
    }

    #[test]
    fn ring_passes_messages() {
        let mut net = Network::new();
        let a = net.add_node(Echo::new("a"));
        let b = net.add_node(Echo::new("b"));
        net.connect(a, "out", b, "in", 8, 1);
        net.connect(b, "out", a, "in", 8, 1);
        net.run(6);
        // Both greetings circulate; traces record sends and receives.
        assert!(net
            .traces
            .trace("a")
            .iter()
            .any(|e| e.starts_with("recv in")));
        assert!(net
            .traces
            .trace("b")
            .iter()
            .any(|e| e.starts_with("recv in")));
    }

    #[test]
    fn unconnected_port_errors() {
        struct Lost;
        impl Node for Lost {
            fn name(&self) -> &str {
                "lost"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                assert_eq!(
                    io.send("nowhere", vec![1]),
                    Err(SendError::NoSuchPort("nowhere".to_string()))
                );
                assert_eq!(io.recv("nothing"), None);
            }
        }
        let mut net = Network::new();
        net.add_node(Box::new(Lost));
        net.run_round();
    }

    #[test]
    fn back_pressure_reports_wire_full() {
        struct Flood;
        impl Node for Flood {
            fn name(&self) -> &str {
                "flood"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                let mut sent = 0;
                while io.send("out", vec![0]).is_ok() {
                    sent += 1;
                    assert!(sent <= 2, "capacity not enforced");
                }
            }
        }
        struct Sink;
        impl Node for Sink {
            fn name(&self) -> &str {
                "sink"
            }
            fn step(&mut self, _io: &mut dyn NodeIo) {}
        }
        let mut net = Network::new();
        let f = net.add_node(Box::new(Flood));
        let s = net.add_node(Box::new(Sink));
        net.connect(f, "out", s, "in", 2, 1);
        net.run_round();
        assert_eq!(net.in_flight(), 2);
    }

    #[test]
    #[should_panic(expected = "already wired")]
    fn ports_are_dedicated() {
        let mut net = Network::new();
        let a = net.add_node(Echo::new("a"));
        let b = net.add_node(Echo::new("b"));
        let c = net.add_node(Echo::new("c"));
        net.connect(a, "out", b, "in", 1, 1);
        net.connect(a, "out", c, "in", 1, 1);
    }

    #[test]
    fn rounds_advance_deterministically() {
        let mut net = Network::new();
        assert_eq!(net.round(), 0);
        net.run(5);
        assert_eq!(net.round(), 5);
    }

    #[test]
    fn tracing_off_keeps_counters_but_records_no_events() {
        let build = |tracing: bool| {
            let mut net = Network::new();
            net.set_tracing(tracing);
            let a = net.add_node(Echo::new("a"));
            let b = net.add_node(Echo::new("b"));
            net.connect(a, "out", b, "in", 8, 1);
            net.connect(b, "out", a, "in", 8, 1);
            net.run(10);
            net
        };
        let on = build(true);
        let off = build(false);
        assert!(off.traces.is_empty(), "gate left event strings behind");
        assert!(!on.traces.is_empty());
        // The counters are unaffected by the gate.
        assert_eq!(on.obs.metrics, off.obs.metrics);
        assert!(off.obs.metrics.totals.wire_messages > 0);
    }

    #[test]
    fn identical_networks_produce_identical_traces() {
        let build = || {
            let mut net = Network::new();
            let a = net.add_node(Echo::new("a"));
            let b = net.add_node(Echo::new("b"));
            net.connect(a, "out", b, "in", 8, 1);
            net.connect(b, "out", a, "in", 8, 1);
            net.run(10);
            net
        };
        let n1 = build();
        let n2 = build();
        assert!(n1.traces.equivalent(&n2.traces).is_ok());
    }

    /// A four-node ring with capacity pressure and one lossy wire: the
    /// parallel executor must reproduce the sequential one byte for byte —
    /// traces, counters, wire loss books, in-flight totals, round count.
    fn contended_ring(workers: usize) -> Network {
        let mut net = Network::new();
        net.obs.enable_tracing(4096);
        let ids: Vec<NodeId> = ["a", "b", "c", "d"]
            .iter()
            .map(|n| net.add_node(Echo::new(n)))
            .collect();
        for i in 0..ids.len() {
            let next = ids[(i + 1) % ids.len()];
            if i == 1 {
                // One misbehaving hop exercises loss-fate rolls at commit.
                net.connect_lossy(
                    ids[i],
                    "out",
                    next,
                    "in",
                    2,
                    1,
                    sep_fault::LossModel::new(7)
                        .with_drop(120)
                        .with_duplicate(200)
                        .with_reorder(150),
                );
            } else {
                net.connect(ids[i], "out", next, "in", 2, 1);
            }
        }
        net.set_workers(workers);
        net.run(25);
        net
    }

    #[test]
    fn worker_pool_matches_sequential_byte_for_byte() {
        let seq = contended_ring(1);
        for workers in [2, 3, 4, 8] {
            let par = contended_ring(workers);
            assert!(
                seq.traces.equivalent(&par.traces).is_ok(),
                "traces diverged at {workers} workers"
            );
            assert_eq!(seq.obs.metrics, par.obs.metrics, "{workers} workers");
            assert_eq!(
                seq.obs.trace().map(|t| t.events().to_vec()),
                par.obs.trace().map(|t| t.events().to_vec()),
                "obs event streams diverged at {workers} workers"
            );
            assert_eq!(seq.in_flight(), par.in_flight());
            assert_eq!(seq.round(), par.round());
            for (ws, wp) in seq.wires().iter().zip(par.wires()) {
                assert_eq!(
                    (ws.dropped, ws.duplicated, ws.corrupted, ws.reordered),
                    (wp.dropped, wp.duplicated, wp.corrupted, wp.reordered),
                    "loss books diverged at {workers} workers"
                );
            }
        }
    }

    #[test]
    fn worker_pool_survives_more_workers_than_nodes() {
        let mut net = Network::new();
        let a = net.add_node(Echo::new("a"));
        let b = net.add_node(Echo::new("b"));
        net.connect(a, "out", b, "in", 8, 1);
        net.connect(b, "out", a, "in", 8, 1);
        net.set_workers(64);
        net.run(10);
        assert_eq!(net.round(), 10);
        assert!(!net.traces.is_empty());
    }

    #[test]
    #[should_panic(expected = "node step panicked in worker: boom at round 3")]
    fn worker_panic_is_reraised_not_deadlocked() {
        struct Grenade;
        impl Node for Grenade {
            fn name(&self) -> &str {
                "grenade"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                if io.round() == 3 {
                    panic!("boom at round {}", io.round());
                }
            }
        }
        let mut net = Network::new();
        net.add_node(Box::new(Grenade));
        net.add_node(Echo::new("bystander"));
        net.set_workers(2);
        net.run(10);
    }

    /// Back-pressure admission is against start-of-round occupancy: a
    /// receiver draining a full wire in the same round must not open room
    /// for the sender until the *next* round, regardless of node order.
    #[test]
    fn same_round_drain_does_not_open_capacity() {
        struct Pump;
        impl Node for Pump {
            fn name(&self) -> &str {
                "pump"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                while io.send("out", vec![io.round() as u8]).is_ok() {}
            }
        }
        struct Drain;
        impl Node for Drain {
            fn name(&self) -> &str {
                "drain"
            }
            fn step(&mut self, io: &mut dyn NodeIo) {
                while io.recv("in").is_some() {}
            }
        }
        // Same wiring, both orders: pump-before-drain and drain-before-pump
        // must count identical sends every round.
        let run = |drain_first: bool| {
            let mut net = Network::new();
            let (p, d) = if drain_first {
                let d = net.add_node(Box::new(Drain));
                let p = net.add_node(Box::new(Pump));
                (p, d)
            } else {
                let p = net.add_node(Box::new(Pump));
                let d = net.add_node(Box::new(Drain));
                (p, d)
            };
            net.connect(p, "out", d, "in", 2, 1);
            net.run(6);
            net.obs.metrics.totals.wire_messages
        };
        assert_eq!(run(false), run(true));
    }
}

//! Gated behind the `ext-tests` feature: this suite needs the `proptest`
//! crate, which the offline tier-1 environment cannot download. Restore the
//! dev-dependency (see Cargo.toml) and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

//! Property tests for the trusted components: the security invariants hold
//! under randomized request streams.

use proptest::prelude::*;
use sep_components::component::TestIo;
use sep_components::fileserver::{request as fsreq, FileServer, FsClient};
use sep_components::guard::{Guard, ScriptedOfficer};
use sep_components::proto::{MsgReader, Status};
use sep_components::snfe::{Censor, CensorPolicy, Header, HEADER_LEN, HEADER_MAGIC};
use sep_policy::level::{Classification, SecurityLevel};

fn level(rank: u8) -> SecurityLevel {
    SecurityLevel::plain(Classification::from_rank(rank % 4).unwrap())
}

/// A randomized file-server request.
#[derive(Debug, Clone)]
enum Req {
    Create(u8, u8), // name id, level rank
    Write(u8, u8),
    Read(u8, u8),
    Delete(u8, u8),
    List,
}

fn arb_req() -> impl Strategy<Value = Req> {
    prop_oneof![
        (any::<u8>(), 0u8..4).prop_map(|(n, l)| Req::Create(n % 8, l)),
        (any::<u8>(), 0u8..4).prop_map(|(n, l)| Req::Write(n % 8, l)),
        (any::<u8>(), 0u8..4).prop_map(|(n, l)| Req::Read(n % 8, l)),
        (any::<u8>(), 0u8..4).prop_map(|(n, l)| Req::Delete(n % 8, l)),
        Just(Req::List),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// The MLS invariant: a client NEVER receives file contents written at
    /// a level its own level does not dominate, no matter the request
    /// stream.
    #[test]
    fn fileserver_never_leaks_upward_content(
        reqs in prop::collection::vec((0usize..3, arb_req()), 1..60),
    ) {
        let clients = [level(0), level(1), level(3)];
        let mut fs = FileServer::new(
            clients
                .iter()
                .enumerate()
                .map(|(i, &l)| FsClient {
                    name: format!("c{i}"),
                    level: l,
                    special_delete: false,
                })
                .collect(),
        );
        // Tag every written byte stream with its level so leaks are
        // recognizable: payload = [level_rank; 8].
        for (client, req) in &reqs {
            let frame = match req {
                Req::Create(n, l) => fsreq::create(&format!("f{n}"), level(*l)),
                Req::Write(n, l) => {
                    fsreq::write(&format!("f{n}"), level(*l), &[*l % 4; 8])
                }
                Req::Read(n, l) => fsreq::read(&format!("f{n}"), level(*l)),
                Req::Delete(n, l) => fsreq::delete(&format!("f{n}"), level(*l)),
                Req::List => fsreq::list(),
            };
            let mut io = TestIo::new();
            io.push(&format!("c{client}.req"), &frame);
            io.run(&mut fs, 1);
            let responses = io.take_sent(&format!("c{client}.rsp"));
            prop_assert_eq!(responses.len(), 1);
            let (status, payload) = fsreq::decode(&responses[0]);
            if status == Status::Ok {
                if let Req::Read(_, _) = req {
                    let mut r = MsgReader::new(payload);
                    let data = r.bytes().unwrap();
                    if let Some(&tag) = data.first() {
                        // The data's provenance level must be dominated by
                        // the reader's level.
                        prop_assert!(
                            clients[*client].dominates(&level(tag)),
                            "client {} at {:?} read data written at rank {}",
                            client, clients[*client], tag
                        );
                    }
                }
            }
        }
    }

    /// Whatever the censor is fed, its canonical output is always a
    /// well-formed header with zero padding and in-bounds fields.
    #[test]
    fn censor_canonical_output_is_always_canonical(
        frames in prop::collection::vec(prop::collection::vec(any::<u8>(), 0..14), 1..40),
    ) {
        let mut censor = Censor::new(CensorPolicy::canonical());
        let mut io = TestIo::new();
        for f in &frames {
            io.push("red.in", f);
        }
        io.run(&mut censor, 1);
        for out in io.sent("black.out") {
            let h = Header::decode(out).expect("canonical output parses");
            prop_assert_eq!(out.len(), HEADER_LEN);
            prop_assert_eq!(out[0], HEADER_MAGIC);
            prop_assert_eq!(h.pad, 0);
            prop_assert!(h.dst <= 3);
            prop_assert!(h.len <= 4096);
        }
    }

    /// The rate limit is a hard bound per window regardless of input volume.
    #[test]
    fn censor_rate_limit_is_hard(n in 1usize..120, limit in 1u32..8) {
        let mut censor = Censor::new(CensorPolicy {
            check_format: true,
            canonicalize: true,
            rate_limit: Some(limit),
        });
        let mut io = TestIo::new();
        let h = Header { seq: 0, len: 1, dst: 1, pad: 0 };
        for _ in 0..n {
            io.push("red.in", &h.encode());
        }
        io.run(&mut censor, 1); // all within one window
        prop_assert!(io.sent("black.out").len() <= limit as usize);
    }

    /// The guard releases exactly the officer-approved prefix, in order,
    /// and nothing else ever reaches the LOW side.
    #[test]
    fn guard_releases_only_approved(script in prop::collection::vec(any::<bool>(), 1..20)) {
        let mut guard = Guard::new(Box::new(ScriptedOfficer::new(&script)));
        let mut io = TestIo::new();
        let msgs: Vec<Vec<u8>> = (0..script.len() as u8).map(|i| vec![i, 0xEE]).collect();
        for m in &msgs {
            io.push("high.in", m);
        }
        io.run(&mut guard, script.len() as u64 + 2);
        let released: Vec<Vec<u8>> = io.take_sent("low.out");
        let expected: Vec<Vec<u8>> = msgs
            .iter()
            .zip(&script)
            .filter(|(_, &ok)| ok)
            .map(|(m, _)| m.clone())
            .collect();
        prop_assert_eq!(released, expected);
        prop_assert_eq!(guard.released + guard.denied, script.len() as u64);
    }

    /// CTR encryption never leaks 4-byte plaintext runs for plaintexts with
    /// repeated structure.
    #[test]
    fn cipher_hides_structured_plaintext(byte in any::<u8>(), len in 16usize..64) {
        use sep_components::snfe::xtea_ctr;
        let pt = vec![byte; len];
        let ct = xtea_ctr([1, 2, 3, 4], 99, &pt);
        prop_assert_eq!(ct.len(), len);
        let run = [byte; 4];
        prop_assert!(!ct.windows(4).any(|w| w == run));
    }
}

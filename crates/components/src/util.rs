//! Small utility components: traffic sources and sinks.

use crate::component::{Component, ComponentIo};
use std::any::Any;
use std::collections::VecDeque;

/// Emits a scripted sequence of frames on port `out`, one per round.
#[derive(Debug, Clone)]
pub struct Source {
    name: String,
    frames: VecDeque<Vec<u8>>,
}

impl Source {
    /// A source that will emit `frames` in order.
    pub fn new(name: &str, frames: Vec<Vec<u8>>) -> Source {
        Source {
            name: name.to_string(),
            frames: frames.into(),
        }
    }

    /// Frames not yet emitted.
    pub fn remaining(&self) -> usize {
        self.frames.len()
    }
}

impl Component for Source {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        if let Some(frame) = self.frames.front() {
            if io.send("out", frame) {
                self.frames.pop_front();
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Collects every frame arriving on port `in`.
#[derive(Debug, Clone)]
pub struct Sink {
    name: String,
    /// Everything received, in order.
    pub received: Vec<Vec<u8>>,
}

impl Sink {
    /// An empty sink.
    pub fn new(name: &str) -> Sink {
        Sink {
            name: name.to_string(),
            received: Vec::new(),
        }
    }
}

impl Component for Sink {
    fn name(&self) -> &str {
        &self.name
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        while let Some(frame) = io.recv("in") {
            self.received.push(frame);
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;

    #[test]
    fn source_emits_one_frame_per_round() {
        let mut s = Source::new("src", vec![b"a".to_vec(), b"b".to_vec()]);
        let mut io = TestIo::new();
        io.run(&mut s, 3);
        assert_eq!(io.sent("out"), &[b"a".to_vec(), b"b".to_vec()]);
        assert_eq!(s.remaining(), 0);
    }

    #[test]
    fn sink_collects_everything() {
        let mut s = Sink::new("snk");
        let mut io = TestIo::new();
        io.push("in", b"x");
        io.push("in", b"y");
        io.run(&mut s, 1);
        assert_eq!(s.received, vec![b"x".to_vec(), b"y".to_vec()]);
    }
}

//! The multilevel secure file-server of the paper's §2.
//!
//! > "Provided that single component adheres to and enforces the multilevel
//! > security policy, the security of the rest of the system follows from
//! > the physical separation of its components."
//!
//! Files are identified by *(name, level)* — carrying the level explicitly
//! in every request keeps the namespace free of the existence-inference
//! channels that a flat namespace would open. Per request the server
//! enforces:
//!
//! * **read** (`READ`, `LIST`): the client's level must dominate the
//!   file's;
//! * **alter** (`CREATE`, `WRITE`, `APPEND`): the file's level must
//!   dominate the client's;
//! * **delete**: levels must be equal — *except* for clients holding the
//!   printer-server's **special service** privilege, which may delete spool
//!   files of any classification. That privilege is exactly the paper's
//!   point: a concrete, stated, auditable service, not a kernel dispensation
//!   to flout the ★-property.
//!
//! Each client owns a dedicated pair of ports (`c{i}.req`, `c{i}.rsp`) —
//! the "dedicated communication line" of the idealized design.

use crate::component::{Component, ComponentIo};
use crate::proto::{MsgReader, MsgWriter, Status};
use sep_policy::level::SecurityLevel;
use std::any::Any;
use std::collections::{BTreeMap, VecDeque};

/// Request opcodes.
pub mod op {
    /// `CREATE name level` — create an empty file.
    pub const CREATE: u8 = 0;
    /// `WRITE name level data` — replace contents (blind alter).
    pub const WRITE: u8 = 1;
    /// `APPEND name level data` — extend contents (blind alter).
    pub const APPEND: u8 = 2;
    /// `READ name level` — fetch contents.
    pub const READ: u8 = 3;
    /// `DELETE name level` — remove the file.
    pub const DELETE: u8 = 4;
    /// `LIST` — enumerate files the client may observe.
    pub const LIST: u8 = 5;
    /// `TAGGED id:u64le inner-request` — an idempotent envelope: the
    /// response repeats the envelope, and a server with a dedup window
    /// replays the cached response for a repeated id instead of
    /// re-executing (exactly-once under client retry).
    pub const TAGGED: u8 = 6;
}

/// A registered client of the file server.
#[derive(Debug, Clone)]
pub struct FsClient {
    /// Display name (for the audit log).
    pub name: String,
    /// The session level (fixed; supplied by the authentication service).
    pub level: SecurityLevel,
    /// The printer-server's special privilege: delete spool files of any
    /// classification. Every exercise is audited.
    pub special_delete: bool,
}

#[derive(Debug, Clone, PartialEq, Eq)]
struct FileRecord {
    level: SecurityLevel,
    data: Vec<u8>,
}

/// The multilevel secure file server.
#[derive(Debug, Clone)]
pub struct FileServer {
    clients: Vec<FsClient>,
    files: BTreeMap<(String, u8), FileRecord>, // key includes the level rank
    /// Cached responses for recently seen tagged request ids, per client
    /// (bounded by `dedup_window`, FIFO eviction).
    recent: BTreeMap<(usize, u64), Vec<u8>>,
    recent_order: VecDeque<(usize, u64)>,
    dedup_window: usize,
    /// Audit log of special-service exercises, host-inspectable.
    pub audit: Vec<String>,
    /// Requests *executed* (a replayed duplicate does not count — the
    /// exactly-once argument is `requests_served == unique ids seen`).
    pub requests_served: u64,
    /// Requests denied by policy.
    pub denials: u64,
    /// Tagged duplicates answered from the dedup cache, not re-executed.
    pub duplicates_replayed: u64,
}

impl FileServer {
    /// A file server with the given client sessions.
    pub fn new(clients: Vec<FsClient>) -> FileServer {
        FileServer {
            clients,
            files: BTreeMap::new(),
            recent: BTreeMap::new(),
            recent_order: VecDeque::new(),
            dedup_window: 0,
            audit: Vec::new(),
            requests_served: 0,
            denials: 0,
            duplicates_replayed: 0,
        }
    }

    /// Enables the bounded dedup window: the last `n` tagged responses per
    /// server are cached and replayed for repeated ids. The bound is the
    /// honesty of the exactly-once claim — a duplicate arriving after its
    /// id has been evicted re-executes, so clients must retire (stop
    /// retrying) well within `n` fresh requests.
    pub fn with_dedup_window(mut self, n: usize) -> FileServer {
        self.dedup_window = n;
        self
    }

    /// Host-side: the contents of a file, if it exists.
    pub fn host_file(&self, name: &str, level: SecurityLevel) -> Option<&[u8]> {
        self.files
            .get(&(name.to_string(), level.class.rank()))
            .filter(|f| f.level == level)
            .map(|f| f.data.as_slice())
    }

    /// Host-side: number of files stored.
    pub fn file_count(&self) -> usize {
        self.files.len()
    }

    /// Handles one frame, unwrapping a [`op::TAGGED`] envelope: repeated
    /// ids inside the dedup window replay the cached response verbatim —
    /// the request is *not* re-executed.
    fn handle_framed(&mut self, client: usize, frame: &[u8]) -> Vec<u8> {
        if frame.len() < 9 || frame[0] != op::TAGGED {
            return self.handle(client, frame);
        }
        let id = u64::from_le_bytes(frame[1..9].try_into().expect("8 id bytes"));
        if let Some(cached) = self.recent.get(&(client, id)) {
            self.duplicates_replayed += 1;
            return cached.clone();
        }
        let inner = self.handle(client, &frame[9..]);
        let mut out = Vec::with_capacity(9 + inner.len());
        out.extend_from_slice(&frame[..9]);
        out.extend_from_slice(&inner);
        if self.dedup_window > 0 {
            self.recent.insert((client, id), out.clone());
            self.recent_order.push_back((client, id));
            if self.recent_order.len() > self.dedup_window {
                let oldest = self.recent_order.pop_front().expect("non-empty window");
                self.recent.remove(&oldest);
            }
        }
        out
    }

    fn handle(&mut self, client: usize, frame: &[u8]) -> Vec<u8> {
        self.requests_served += 1;
        match self.dispatch(client, frame) {
            Ok(mut rsp) => {
                let mut out = vec![Status::Ok.code()];
                out.append(&mut rsp);
                out
            }
            Err(status) => {
                if status == Status::Denied {
                    self.denials += 1;
                }
                vec![status.code()]
            }
        }
    }

    fn dispatch(&mut self, client: usize, frame: &[u8]) -> Result<Vec<u8>, Status> {
        let me = self.clients[client].clone();
        let mut r = MsgReader::new(frame);
        let opcode = r.u8().map_err(|_| Status::Bad)?;
        match opcode {
            op::CREATE => {
                let (name, level) = read_name_level(&mut r)?;
                r.finish().map_err(|_| Status::Bad)?;
                // Alter: the new file's level must dominate the client's.
                if !level.dominates(&me.level) {
                    return Err(Status::Denied);
                }
                // Blind operations (the client cannot observe the target
                // level) must not reveal namespace state: a collision with
                // a higher-level file would otherwise be a HIGH→LOW storage
                // channel, so the status is masked to Ok.
                let blind = !me.level.dominates(&level);
                let key = (name.clone(), level.class.rank());
                if self.files.contains_key(&key) {
                    return if blind {
                        Ok(Vec::new())
                    } else {
                        Err(Status::Full)
                    };
                }
                self.files.insert(
                    key,
                    FileRecord {
                        level,
                        data: Vec::new(),
                    },
                );
                Ok(Vec::new())
            }
            op::WRITE | op::APPEND => {
                let (name, level) = read_name_level(&mut r)?;
                let data = r.bytes().map_err(|_| Status::Bad)?.to_vec();
                r.finish().map_err(|_| Status::Bad)?;
                if !level.dominates(&me.level) {
                    return Err(Status::Denied);
                }
                // Mask existence on blind alters (see CREATE above).
                let blind = !me.level.dominates(&level);
                let rec = match self
                    .files
                    .get_mut(&(name, level.class.rank()))
                    .filter(|f| f.level == level)
                {
                    Some(rec) => rec,
                    None if blind => return Ok(Vec::new()),
                    None => return Err(Status::NotFound),
                };
                if opcode == op::WRITE {
                    rec.data = data;
                } else {
                    rec.data.extend_from_slice(&data);
                }
                Ok(Vec::new())
            }
            op::READ => {
                let (name, level) = read_name_level(&mut r)?;
                r.finish().map_err(|_| Status::Bad)?;
                // Observe: the client's level must dominate the file's.
                if !me.level.dominates(&level) {
                    return Err(Status::Denied);
                }
                let rec = self
                    .files
                    .get(&(name, level.class.rank()))
                    .filter(|f| f.level == level)
                    .ok_or(Status::NotFound)?;
                let mut w = MsgWriter::new();
                w.bytes(&rec.data);
                Ok(w.finish())
            }
            op::DELETE => {
                let (name, level) = read_name_level(&mut r)?;
                r.finish().map_err(|_| Status::Bad)?;
                let permitted =
                    level == me.level || (me.special_delete && name.starts_with("spool/"));
                if !permitted {
                    return Err(Status::Denied);
                }
                if me.special_delete && level != me.level {
                    self.audit.push(format!(
                        "special-delete by {} of {} at {}",
                        me.name, name, level
                    ));
                }
                self.files
                    .remove(&(name, level.class.rank()))
                    .ok_or(Status::NotFound)?;
                Ok(Vec::new())
            }
            op::LIST => {
                r.finish().map_err(|_| Status::Bad)?;
                let mut w = MsgWriter::new();
                let visible: Vec<_> = self
                    .files
                    .iter()
                    .filter(|(_, f)| me.level.dominates(&f.level))
                    .collect();
                w.u16(visible.len() as u16);
                for ((name, _), f) in visible {
                    w.str(name);
                    w.u8(f.level.class.rank());
                }
                Ok(w.finish())
            }
            _ => Err(Status::Bad),
        }
    }
}

/// Reads a `name level_rank` pair common to most requests.
fn read_name_level(r: &mut MsgReader<'_>) -> Result<(String, SecurityLevel), Status> {
    let name = r.str().map_err(|_| Status::Bad)?.to_string();
    let rank = r.u8().map_err(|_| Status::Bad)?;
    let class = sep_policy::level::Classification::from_rank(rank).ok_or(Status::Bad)?;
    Ok((name, SecurityLevel::plain(class)))
}

impl Component for FileServer {
    fn name(&self) -> &str {
        "file-server"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        for client in 0..self.clients.len() {
            let req_port = format!("c{client}.req");
            let rsp_port = format!("c{client}.rsp");
            while let Some(frame) = io.recv(&req_port) {
                let rsp = self.handle_framed(client, &frame);
                io.send(&rsp_port, &rsp);
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Client-side request encoders (used by other components, the examples,
/// and the tests).
pub mod request {
    use super::*;

    fn name_level(opcode: u8, name: &str, level: SecurityLevel) -> MsgWriter {
        let mut w = MsgWriter::with_op(opcode);
        w.str(name).u8(level.class.rank());
        w
    }

    /// Encodes `CREATE`.
    pub fn create(name: &str, level: SecurityLevel) -> Vec<u8> {
        name_level(op::CREATE, name, level).finish()
    }

    /// Encodes `WRITE`.
    pub fn write(name: &str, level: SecurityLevel, data: &[u8]) -> Vec<u8> {
        let mut w = name_level(op::WRITE, name, level);
        w.bytes(data);
        w.finish()
    }

    /// Encodes `APPEND`.
    pub fn append(name: &str, level: SecurityLevel, data: &[u8]) -> Vec<u8> {
        let mut w = name_level(op::APPEND, name, level);
        w.bytes(data);
        w.finish()
    }

    /// Encodes `READ`.
    pub fn read(name: &str, level: SecurityLevel) -> Vec<u8> {
        name_level(op::READ, name, level).finish()
    }

    /// Encodes `DELETE`.
    pub fn delete(name: &str, level: SecurityLevel) -> Vec<u8> {
        name_level(op::DELETE, name, level).finish()
    }

    /// Encodes `LIST`.
    pub fn list() -> Vec<u8> {
        MsgWriter::with_op(op::LIST).finish()
    }

    /// Wraps a request in an idempotent [`op::TAGGED`] envelope.
    pub fn tagged(id: u64, inner: &[u8]) -> Vec<u8> {
        let mut out = Vec::with_capacity(9 + inner.len());
        out.push(op::TAGGED);
        out.extend_from_slice(&id.to_le_bytes());
        out.extend_from_slice(inner);
        out
    }

    /// Splits a [`op::TAGGED`] envelope (request or response) into the id
    /// and the inner frame.
    pub fn untag(frame: &[u8]) -> Option<(u64, &[u8])> {
        if frame.len() < 9 || frame[0] != op::TAGGED {
            return None;
        }
        let id = u64::from_le_bytes(frame[1..9].try_into().ok()?);
        Some((id, &frame[9..]))
    }

    /// Decodes a response's status byte and payload.
    pub fn decode(rsp: &[u8]) -> (Status, &[u8]) {
        let status = rsp
            .first()
            .and_then(|&c| Status::from_code(c))
            .unwrap_or(Status::Bad);
        (status, rsp.get(1..).unwrap_or(&[]))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;
    use sep_policy::level::Classification;

    fn secret() -> SecurityLevel {
        SecurityLevel::plain(Classification::Secret)
    }

    fn unclass() -> SecurityLevel {
        SecurityLevel::plain(Classification::Unclassified)
    }

    /// Clients: 0 = low user, 1 = high user, 2 = printer (special).
    fn server() -> FileServer {
        FileServer::new(vec![
            FsClient {
                name: "low".into(),
                level: unclass(),
                special_delete: false,
            },
            FsClient {
                name: "high".into(),
                level: secret(),
                special_delete: false,
            },
            FsClient {
                name: "printer".into(),
                level: secret(),
                special_delete: true,
            },
        ])
    }

    fn one_round(fs: &mut FileServer, client: usize, req: Vec<u8>) -> (Status, Vec<u8>) {
        let mut io = TestIo::new();
        io.push(&format!("c{client}.req"), &req);
        io.run(fs, 1);
        let rsp = io.take_sent(&format!("c{client}.rsp"));
        assert_eq!(rsp.len(), 1);
        let (status, payload) = request::decode(&rsp[0]);
        (status, payload.to_vec())
    }

    #[test]
    fn create_write_read_roundtrip() {
        let mut fs = server();
        assert_eq!(
            one_round(&mut fs, 0, request::create("memo", unclass())).0,
            Status::Ok
        );
        assert_eq!(
            one_round(&mut fs, 0, request::write("memo", unclass(), b"hello")).0,
            Status::Ok
        );
        let (status, payload) = one_round(&mut fs, 0, request::read("memo", unclass()));
        assert_eq!(status, Status::Ok);
        let mut r = MsgReader::new(&payload);
        assert_eq!(r.bytes().unwrap(), b"hello");
    }

    #[test]
    fn read_up_is_denied() {
        let mut fs = server();
        one_round(&mut fs, 1, request::create("plans", secret()));
        one_round(
            &mut fs,
            1,
            request::write("plans", secret(), b"attack at dawn"),
        );
        let (status, _) = one_round(&mut fs, 0, request::read("plans", secret()));
        assert_eq!(status, Status::Denied);
        assert!(fs.denials > 0);
    }

    #[test]
    fn write_down_is_denied_append_up_is_allowed() {
        let mut fs = server();
        one_round(&mut fs, 0, request::create("box", unclass()));
        // High user cannot alter a low file...
        assert_eq!(
            one_round(&mut fs, 1, request::write("box", unclass(), b"x")).0,
            Status::Denied
        );
        // ...but a low user can blindly append to a high file.
        one_round(&mut fs, 1, request::create("dropbox", secret()));
        assert_eq!(
            one_round(&mut fs, 0, request::append("dropbox", secret(), b"tip")).0,
            Status::Ok
        );
        assert_eq!(fs.host_file("dropbox", secret()).unwrap(), b"tip");
    }

    #[test]
    fn list_shows_only_dominated_levels() {
        let mut fs = server();
        one_round(&mut fs, 0, request::create("lowfile", unclass()));
        one_round(&mut fs, 1, request::create("highfile", secret()));
        let (status, payload) = one_round(&mut fs, 0, request::list());
        assert_eq!(status, Status::Ok);
        let mut r = MsgReader::new(&payload);
        assert_eq!(r.u16().unwrap(), 1);
        assert_eq!(r.str().unwrap(), "lowfile");
    }

    #[test]
    fn delete_requires_equal_level() {
        let mut fs = server();
        one_round(&mut fs, 0, request::create("junk", unclass()));
        // High user cannot delete the low file (write-down)...
        assert_eq!(
            one_round(&mut fs, 1, request::delete("junk", unclass())).0,
            Status::Denied
        );
        // ...the owner level can.
        assert_eq!(
            one_round(&mut fs, 0, request::delete("junk", unclass())).0,
            Status::Ok
        );
    }

    #[test]
    fn special_service_deletes_spool_files_across_levels_with_audit() {
        let mut fs = server();
        one_round(&mut fs, 0, request::create("spool/job1", unclass()));
        // The printer (special) deletes the low spool file despite running
        // high — the paper's spooler problem, solved as a stated service.
        assert_eq!(
            one_round(&mut fs, 2, request::delete("spool/job1", unclass())).0,
            Status::Ok
        );
        assert_eq!(fs.audit.len(), 1);
        assert!(fs.audit[0].contains("spool/job1"));
        // The special privilege does NOT extend to non-spool files.
        one_round(&mut fs, 0, request::create("private", unclass()));
        assert_eq!(
            one_round(&mut fs, 2, request::delete("private", unclass())).0,
            Status::Denied
        );
    }

    #[test]
    fn same_name_different_levels_coexist() {
        let mut fs = server();
        one_round(&mut fs, 0, request::create("report", unclass()));
        assert_eq!(
            one_round(&mut fs, 1, request::create("report", secret())).0,
            Status::Ok
        );
        assert_eq!(fs.file_count(), 2);
    }

    #[test]
    fn malformed_requests_are_rejected() {
        let mut fs = server();
        assert_eq!(one_round(&mut fs, 0, vec![op::READ, 0xFF]).0, Status::Bad);
        assert_eq!(one_round(&mut fs, 0, vec![99]).0, Status::Bad);
        assert_eq!(one_round(&mut fs, 0, vec![]).0, Status::Bad);
    }

    #[test]
    fn blind_up_statuses_are_masked() {
        // LOW's blind operations against the HIGH namespace return Ok
        // whether or not the high file exists — no storage channel.
        let mut fs = server();
        assert_eq!(
            one_round(&mut fs, 0, request::write("ghost", secret(), b"x")).0,
            Status::Ok,
            "blind write to a missing high file is masked"
        );
        one_round(&mut fs, 1, request::create("plans", secret()));
        assert_eq!(
            one_round(&mut fs, 0, request::create("plans", secret())).0,
            Status::Ok,
            "blind create collision is masked"
        );
        // The collision did not clobber the high file.
        assert!(fs.host_file("plans", secret()).is_some());
        // Same-level operations still report errors faithfully.
        one_round(&mut fs, 0, request::create("mine", unclass()));
        assert_eq!(
            one_round(&mut fs, 0, request::create("mine", unclass())).0,
            Status::Full
        );
        assert_eq!(
            one_round(&mut fs, 0, request::write("missing", unclass(), b"x")).0,
            Status::NotFound
        );
    }

    #[test]
    fn create_duplicate_is_refused() {
        let mut fs = server();
        one_round(&mut fs, 0, request::create("x", unclass()));
        assert_eq!(
            one_round(&mut fs, 0, request::create("x", unclass())).0,
            Status::Full
        );
    }

    #[test]
    fn tagged_duplicate_replays_without_reexecuting() {
        let mut fs = server().with_dedup_window(8);
        let req = request::tagged(42, &request::create("once", unclass()));
        let mut io = TestIo::new();
        io.push("c0.req", &req);
        io.push("c0.req", &req); // a client retry of the same id
        io.run(&mut fs, 1);
        let rsps = io.take_sent("c0.rsp");
        assert_eq!(rsps.len(), 2, "every copy gets a response");
        assert_eq!(rsps[0], rsps[1], "the duplicate is the cached response");
        let (id, inner) = request::untag(&rsps[0]).expect("tagged response");
        assert_eq!(id, 42);
        assert_eq!(request::decode(inner).0, Status::Ok);
        // Executed once: one file, one serve, one replay — no Full error
        // from a re-executed create.
        assert_eq!(fs.file_count(), 1);
        assert_eq!(fs.requests_served, 1);
        assert_eq!(fs.duplicates_replayed, 1);
    }

    #[test]
    fn tagged_append_duplicate_commits_once() {
        let mut fs = server().with_dedup_window(8);
        one_round(&mut fs, 0, request::create("log", unclass()));
        let req = request::tagged(7, &request::append("log", unclass(), b"entry"));
        let mut io = TestIo::new();
        io.push("c0.req", &req);
        io.push("c0.req", &req);
        io.push("c0.req", &req);
        io.run(&mut fs, 1);
        assert_eq!(
            fs.host_file("log", unclass()).unwrap(),
            b"entry",
            "a retried append must not double-commit"
        );
        assert_eq!(fs.duplicates_replayed, 2);
    }

    #[test]
    fn dedup_window_is_bounded_fifo() {
        let mut fs = server().with_dedup_window(2);
        let mut io = TestIo::new();
        for id in 0..3u64 {
            let name = format!("f{id}");
            io.push(
                "c0.req",
                &request::tagged(id, &request::create(&name, unclass())),
            );
        }
        io.run(&mut fs, 1);
        // Id 0 has been evicted (window 2): a late duplicate re-executes
        // and sees the honest Full error instead of the cached Ok.
        io.push(
            "c0.req",
            &request::tagged(0, &request::create("f0", unclass())),
        );
        io.run(&mut fs, 1);
        let rsps = io.take_sent("c0.rsp");
        let (_, inner) = request::untag(rsps.last().unwrap()).unwrap();
        assert_eq!(request::decode(inner).0, Status::Full);
        assert_eq!(fs.duplicates_replayed, 0);
    }

    #[test]
    fn tagged_without_dedup_window_executes_every_copy() {
        let mut fs = server();
        let req = request::tagged(1, &request::create("x", unclass()));
        let mut io = TestIo::new();
        io.push("c0.req", &req);
        io.push("c0.req", &req);
        io.run(&mut fs, 1);
        assert_eq!(fs.requests_served, 2, "no window, no dedup");
        assert_eq!(fs.duplicates_replayed, 0);
    }

    #[test]
    fn dedup_cache_is_per_client() {
        // Client ids are independent spaces: the same id from two clients
        // must not collide in the cache.
        let mut fs = server().with_dedup_window(8);
        let mut io = TestIo::new();
        io.push(
            "c0.req",
            &request::tagged(9, &request::create("a", unclass())),
        );
        io.push(
            "c1.req",
            &request::tagged(9, &request::create("b", secret())),
        );
        io.run(&mut fs, 1);
        assert_eq!(fs.requests_served, 2);
        assert_eq!(fs.duplicates_replayed, 0);
        assert_eq!(fs.file_count(), 2);
    }
}

//! The substrate-independent component interface and its two adapters.
//!
//! A [`Component`] sees the world as named ports carrying message frames —
//! nothing else. The [`NodeAdapter`] realizes ports as the dedicated wires
//! of a physically distributed network; the [`RegimeComponent`] realizes
//! them as separation-kernel channels. The component cannot tell which it is
//! running on; making that literally true is the kernel's entire job.

use sep_distributed::node::{Node, NodeIo};
use sep_kernel::channel::ChannelStatus;
use sep_kernel::regime::{NativeAction, NativeRegime, RegimeIo};
use std::any::Any;
use std::collections::VecDeque;

/// A component's window onto the world: its own named ports.
pub trait ComponentIo {
    /// Receives the next frame on an incoming port, if any.
    fn recv(&mut self, port: &str) -> Option<Vec<u8>>;

    /// Sends a frame on an outgoing port; `false` when the port is
    /// unconnected or full (back-pressure).
    fn send(&mut self, port: &str, msg: &[u8]) -> bool;

    /// The current round (the component's only clock).
    fn round(&self) -> u64;
}

/// A trusted (or untrusted) component of the secure-system design.
///
/// `Send + Sync` so components can ride inside cloned kernel states that
/// the parallel separability checker distributes across worker threads.
pub trait Component: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// Executes one round.
    fn step(&mut self, io: &mut dyn ComponentIo);

    /// Object-safe clone.
    fn boxed_clone(&self) -> Box<dyn Component>;

    /// Host-side introspection for tests and experiments.
    fn as_any(&mut self) -> &mut dyn Any;
}

impl Clone for Box<dyn Component> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

// ---------------------------------------------------------------------
// Adapter 1: distributed network node.
// ---------------------------------------------------------------------

/// Runs a component as a node of the physically distributed system.
pub struct NodeAdapter {
    component: Box<dyn Component>,
}

impl NodeAdapter {
    /// Wraps a component.
    pub fn new(component: Box<dyn Component>) -> Box<NodeAdapter> {
        Box::new(NodeAdapter { component })
    }

    /// Access to the wrapped component.
    pub fn component_mut(&mut self) -> &mut dyn Component {
        self.component.as_mut()
    }
}

impl Node for NodeAdapter {
    fn name(&self) -> &str {
        self.component.name()
    }

    fn step(&mut self, io: &mut dyn NodeIo) {
        let mut bridge = NodeBridge { io };
        self.component.step(&mut bridge);
    }
}

struct NodeBridge<'a> {
    io: &'a mut dyn NodeIo,
}

impl ComponentIo for NodeBridge<'_> {
    fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
        self.io.recv(port)
    }

    fn send(&mut self, port: &str, msg: &[u8]) -> bool {
        self.io.send(port, msg.to_vec()).is_ok()
    }

    fn round(&self) -> u64 {
        self.io.round()
    }
}

// ---------------------------------------------------------------------
// Adapter 2: separation-kernel native regime.
// ---------------------------------------------------------------------

/// How one of a component's ports maps onto a kernel channel.
#[derive(Debug, Clone)]
pub enum PortBinding {
    /// Outgoing port: the regime is the channel's sender.
    Send {
        /// Port name.
        port: String,
        /// Channel index.
        channel: usize,
    },
    /// Incoming port: the regime is the channel's receiver.
    Recv {
        /// Port name.
        port: String,
        /// Channel index.
        channel: usize,
    },
}

/// Runs a component as a native regime on the separation kernel.
///
/// Each kernel step runs one component round and yields, so regimes
/// interleave round-robin exactly as network nodes do — which is what makes
/// the two substrates trace-comparable.
pub struct RegimeComponent {
    component: Box<dyn Component>,
    bindings: Vec<PortBinding>,
    round: u64,
    /// Frames received but not yet claimed by a `recv` on the right port.
    stash: Vec<(usize, VecDeque<Vec<u8>>)>,
}

impl RegimeComponent {
    /// Wraps a component with its port-to-channel map.
    pub fn new(component: Box<dyn Component>, bindings: Vec<PortBinding>) -> Box<RegimeComponent> {
        let stash = bindings
            .iter()
            .filter_map(|b| match b {
                PortBinding::Recv { channel, .. } => Some((*channel, VecDeque::new())),
                PortBinding::Send { .. } => None,
            })
            .collect();
        Box::new(RegimeComponent {
            component,
            bindings,
            round: 0,
            stash,
        })
    }
}

impl NativeRegime for RegimeComponent {
    fn step(&mut self, io: &mut dyn RegimeIo) -> NativeAction {
        let mut bridge = RegimeBridge {
            io,
            bindings: &self.bindings,
            round: self.round,
        };
        self.component.step(&mut bridge);
        self.round += 1;
        NativeAction::Swap
    }

    fn boxed_clone(&self) -> Box<dyn NativeRegime> {
        Box::new(RegimeComponent {
            component: self.component.boxed_clone(),
            bindings: self.bindings.clone(),
            round: self.round,
            stash: self.stash.clone(),
        })
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn state_bytes(&self) -> Vec<u8> {
        self.round.to_le_bytes().to_vec()
    }
}

impl RegimeComponent {
    /// Access to the wrapped component (host-side inspection through the
    /// kernel's regime records).
    pub fn component_mut(&mut self) -> &mut dyn Component {
        self.component.as_mut()
    }
}

struct RegimeBridge<'a, 'b> {
    io: &'a mut dyn RegimeIo,
    bindings: &'b [PortBinding],
    round: u64,
}

impl ComponentIo for RegimeBridge<'_, '_> {
    fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
        let channel = self.bindings.iter().find_map(|b| match b {
            PortBinding::Recv { port: p, channel } if p == port => Some(*channel),
            _ => None,
        })?;
        self.io.recv(channel).ok()
    }

    fn send(&mut self, port: &str, msg: &[u8]) -> bool {
        let Some(channel) = self.bindings.iter().find_map(|b| match b {
            PortBinding::Send { port: p, channel } if p == port => Some(*channel),
            _ => None,
        }) else {
            return false;
        };
        self.io.send(channel, msg) == ChannelStatus::Ok
    }

    fn round(&self) -> u64 {
        self.round
    }
}

// ---------------------------------------------------------------------
// Test helpers: a loopback harness for driving components directly.
// ---------------------------------------------------------------------

/// A direct, in-memory [`ComponentIo`] for unit-testing components without
/// either substrate.
#[derive(Debug, Default)]
pub struct TestIo {
    /// Frames queued for the component, per port.
    pub inbox: std::collections::BTreeMap<String, VecDeque<Vec<u8>>>,
    /// Frames the component sent, per port.
    pub outbox: std::collections::BTreeMap<String, Vec<Vec<u8>>>,
    /// The round presented to the component.
    pub now: u64,
}

impl TestIo {
    /// An empty harness.
    pub fn new() -> TestIo {
        TestIo::default()
    }

    /// Queues a frame for the component.
    pub fn push(&mut self, port: &str, msg: &[u8]) {
        self.inbox
            .entry(port.to_string())
            .or_default()
            .push_back(msg.to_vec());
    }

    /// Everything the component sent on a port.
    pub fn sent(&self, port: &str) -> &[Vec<u8>] {
        self.outbox.get(port).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Takes everything the component sent on a port.
    pub fn take_sent(&mut self, port: &str) -> Vec<Vec<u8>> {
        self.outbox.remove(port).unwrap_or_default()
    }

    /// Runs a component for `rounds` rounds against this harness.
    pub fn run(&mut self, c: &mut dyn Component, rounds: u64) {
        for _ in 0..rounds {
            c.step(self);
            self.now += 1;
        }
    }
}

impl ComponentIo for TestIo {
    fn recv(&mut self, port: &str) -> Option<Vec<u8>> {
        self.inbox.get_mut(port)?.pop_front()
    }

    fn send(&mut self, port: &str, msg: &[u8]) -> bool {
        self.outbox
            .entry(port.to_string())
            .or_default()
            .push(msg.to_vec());
        true
    }

    fn round(&self) -> u64 {
        self.now
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Echoes frames from "in" to "out" with a byte prepended.
    #[derive(Clone)]
    struct Tag(u8);

    impl Component for Tag {
        fn name(&self) -> &str {
            "tag"
        }

        fn step(&mut self, io: &mut dyn ComponentIo) {
            while let Some(mut m) = io.recv("in") {
                m.insert(0, self.0);
                io.send("out", &m);
            }
        }

        fn boxed_clone(&self) -> Box<dyn Component> {
            Box::new(self.clone())
        }

        fn as_any(&mut self) -> &mut dyn Any {
            self
        }
    }

    #[test]
    fn test_io_roundtrip() {
        let mut io = TestIo::new();
        io.push("in", b"abc");
        let mut c = Tag(9);
        io.run(&mut c, 1);
        assert_eq!(io.sent("out"), &[vec![9, b'a', b'b', b'c']]);
    }

    #[test]
    fn node_adapter_runs_on_network() {
        use sep_distributed::Network;
        let mut net = Network::new();
        let tagger = net.add_node(NodeAdapter::new(Box::new(Tag(1))));
        let echo = net.add_node(NodeAdapter::new(Box::new(Tag(2))));
        net.connect(tagger, "out", echo, "in", 8, 1);
        net.connect(echo, "out", tagger, "in", 8, 1);
        // Nothing moves until something is injected — components are quiet.
        net.run(4);
        assert_eq!(net.in_flight(), 0);
    }

    #[test]
    fn regime_component_runs_on_kernel() {
        use sep_kernel::config::{KernelConfig, RegimeSpec};
        use sep_kernel::kernel::SeparationKernel;

        // Two tag components in a ring over kernel channels: 0→1 on channel
        // 0, 1→0 on channel 1. Seed a frame by hand.
        let a = RegimeComponent::new(
            Box::new(Tag(1)),
            vec![
                PortBinding::Send {
                    port: "out".into(),
                    channel: 0,
                },
                PortBinding::Recv {
                    port: "in".into(),
                    channel: 1,
                },
            ],
        );
        let b = RegimeComponent::new(
            Box::new(Tag(2)),
            vec![
                PortBinding::Send {
                    port: "out".into(),
                    channel: 1,
                },
                PortBinding::Recv {
                    port: "in".into(),
                    channel: 0,
                },
            ],
        );
        let cfg = KernelConfig::new(vec![RegimeSpec::native("a", a), RegimeSpec::native("b", b)])
            .with_channel(0, 1, 8)
            .with_channel(1, 0, 8);
        let mut k = SeparationKernel::boot(cfg).unwrap();
        // Seed: put a frame on channel 1 (towards component a).
        k.channels[1].restore_queue(vec![b"x".to_vec()]);
        k.run(20);
        // The frame circulates, gaining a tag byte per hop.
        let total: usize = k.channels.iter().map(|c| c.queue().len()).sum();
        assert!(k.stats.messages_sent >= 2, "frames moved: {:?}", k.stats);
        assert!(total <= 1, "no frame pile-up");
    }
}

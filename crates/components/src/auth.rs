//! The authentication mechanism.
//!
//! > "There must, for example, be some additional mechanism to authenticate
//! > the identities of users as they log in to the single-user machines and
//! > to inform the file and printer-servers of the security classifications
//! > associated with each user."
//!
//! Terminals log in over dedicated lines (`t{i}.req` / `t{i}.rsp`); the
//! servers query session tokens over a service line (`q.req` / `q.rsp`).
//! Password verification uses an iterated salted FNV construction — a toy
//! standing in for real password hashing (DESIGN.md substitution 5 applies
//! to all cryptography here); what the reproduction needs is only that the
//! clear password never leaves this component.

use crate::component::{Component, ComponentIo};
use crate::proto::{MsgReader, MsgWriter, Status};
#[cfg(test)]
use sep_policy::level::Classification;
use sep_policy::level::SecurityLevel;
use std::any::Any;

/// Iterations of the toy password hash.
const HASH_ROUNDS: usize = 1000;

/// The toy password hash: iterated FNV-1a over `salt ‖ password`.
pub fn password_hash(salt: u64, password: &str) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325 ^ salt;
    for _ in 0..HASH_ROUNDS {
        for b in password.as_bytes() {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h = h.rotate_left(17) ^ salt;
    }
    h
}

#[derive(Debug, Clone)]
struct User {
    name: String,
    salt: u64,
    hash: u64,
    clearance: SecurityLevel,
}

/// The authentication server.
#[derive(Debug, Clone)]
pub struct AuthServer {
    terminals: usize,
    users: Vec<User>,
    sessions: Vec<(u32, usize)>, // (token, user index)
    next_token: u32,
    /// Failed login attempts (host-visible).
    pub failures: u64,
}

impl AuthServer {
    /// An auth server handling `terminals` login lines.
    pub fn new(terminals: usize) -> AuthServer {
        AuthServer {
            terminals,
            users: Vec::new(),
            sessions: Vec::new(),
            next_token: 0x1000,
            failures: 0,
        }
    }

    /// Registers a user (system generation time).
    pub fn add_user(&mut self, name: &str, password: &str, clearance: SecurityLevel) {
        let salt = name
            .bytes()
            .fold(0x9E37_79B9_7F4A_7C15u64, |a, b| a.rotate_left(7) ^ b as u64);
        self.users.push(User {
            name: name.to_string(),
            salt,
            hash: password_hash(salt, password),
            clearance,
        });
    }

    /// Encodes a login request.
    pub fn login_request(user: &str, password: &str) -> Vec<u8> {
        let mut w = MsgWriter::new();
        w.str(user).str(password);
        w.finish()
    }

    /// Encodes a token-query request (for the servers).
    pub fn query_request(token: u32) -> Vec<u8> {
        let mut w = MsgWriter::new();
        w.u32(token);
        w.finish()
    }

    fn login(&mut self, frame: &[u8]) -> Vec<u8> {
        let mut r = MsgReader::new(frame);
        let parsed = (|| -> Result<(String, String), crate::proto::Malformed> {
            let user = r.str()?.to_string();
            let pass = r.str()?.to_string();
            r.finish()?;
            Ok((user, pass))
        })();
        let Ok((user, pass)) = parsed else {
            return vec![Status::Bad.code()];
        };
        let found = self
            .users
            .iter()
            .position(|u| u.name == user && u.hash == password_hash(u.salt, &pass));
        match found {
            Some(idx) => {
                let token = self.next_token;
                self.next_token = self.next_token.wrapping_add(0x11);
                self.sessions.push((token, idx));
                let mut w = MsgWriter::new();
                w.u8(Status::Ok.code())
                    .u32(token)
                    .u8(self.users[idx].clearance.class.rank());
                w.finish()
            }
            None => {
                self.failures += 1;
                vec![Status::Denied.code()]
            }
        }
    }

    fn query(&mut self, frame: &[u8]) -> Vec<u8> {
        let mut r = MsgReader::new(frame);
        let Ok(token) = r.u32() else {
            return vec![Status::Bad.code()];
        };
        match self.sessions.iter().find(|(t, _)| *t == token) {
            Some((_, idx)) => {
                let u = &self.users[*idx];
                let mut w = MsgWriter::new();
                w.u8(Status::Ok.code())
                    .str(&u.name)
                    .u8(u.clearance.class.rank());
                w.finish()
            }
            None => vec![Status::NotFound.code()],
        }
    }
}

impl Component for AuthServer {
    fn name(&self) -> &str {
        "auth-server"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        for t in 0..self.terminals {
            let req = format!("t{t}.req");
            let rsp = format!("t{t}.rsp");
            while let Some(frame) = io.recv(&req) {
                let out = self.login(&frame);
                io.send(&rsp, &out);
            }
        }
        while let Some(frame) = io.recv("q.req") {
            let out = self.query(&frame);
            io.send("q.rsp", &out);
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;

    fn server() -> AuthServer {
        let mut a = AuthServer::new(2);
        a.add_user(
            "alice",
            "wonderland",
            SecurityLevel::plain(Classification::Secret),
        );
        a.add_user(
            "bob",
            "builder",
            SecurityLevel::plain(Classification::Unclassified),
        );
        a
    }

    #[test]
    fn successful_login_issues_token_and_clearance() {
        let mut a = server();
        let mut io = TestIo::new();
        io.push("t0.req", &AuthServer::login_request("alice", "wonderland"));
        io.run(&mut a, 1);
        let rsp = io.take_sent("t0.rsp");
        let mut r = MsgReader::new(&rsp[0]);
        assert_eq!(r.u8().unwrap(), Status::Ok.code());
        let token = r.u32().unwrap();
        assert_eq!(r.u8().unwrap(), Classification::Secret.rank());
        // The servers can resolve the token.
        io.push("q.req", &AuthServer::query_request(token));
        io.run(&mut a, 1);
        let q = io.take_sent("q.rsp");
        let mut r = MsgReader::new(&q[0]);
        assert_eq!(r.u8().unwrap(), Status::Ok.code());
        assert_eq!(r.str().unwrap(), "alice");
        assert_eq!(r.u8().unwrap(), Classification::Secret.rank());
    }

    #[test]
    fn wrong_password_is_denied() {
        let mut a = server();
        let mut io = TestIo::new();
        io.push("t0.req", &AuthServer::login_request("alice", "queen"));
        io.push("t1.req", &AuthServer::login_request("mallory", "x"));
        io.run(&mut a, 1);
        assert_eq!(io.sent("t0.rsp")[0], vec![Status::Denied.code()]);
        assert_eq!(io.sent("t1.rsp")[0], vec![Status::Denied.code()]);
        assert_eq!(a.failures, 2);
    }

    #[test]
    fn unknown_token_is_not_found() {
        let mut a = server();
        let mut io = TestIo::new();
        io.push("q.req", &AuthServer::query_request(0xDEAD));
        io.run(&mut a, 1);
        assert_eq!(io.sent("q.rsp")[0], vec![Status::NotFound.code()]);
    }

    #[test]
    fn tokens_are_distinct_per_session() {
        let mut a = server();
        let mut io = TestIo::new();
        io.push("t0.req", &AuthServer::login_request("bob", "builder"));
        io.push("t1.req", &AuthServer::login_request("bob", "builder"));
        io.run(&mut a, 1);
        let t0 = {
            let rsp = io.take_sent("t0.rsp");
            let mut r = MsgReader::new(&rsp[0]);
            r.u8().unwrap();
            r.u32().unwrap()
        };
        let t1 = {
            let rsp = io.take_sent("t1.rsp");
            let mut r = MsgReader::new(&rsp[0]);
            r.u8().unwrap();
            r.u32().unwrap()
        };
        assert_ne!(t0, t1);
    }

    #[test]
    fn hash_depends_on_salt_and_password() {
        assert_ne!(password_hash(1, "pw"), password_hash(2, "pw"));
        assert_ne!(password_hash(1, "pw"), password_hash(1, "pw2"));
        assert_eq!(password_hash(5, "same"), password_hash(5, "same"));
    }

    #[test]
    fn malformed_login_is_bad() {
        let mut a = server();
        let mut io = TestIo::new();
        io.push("t0.req", &[1, 2]);
        io.run(&mut a, 1);
        assert_eq!(io.sent("t0.rsp")[0], vec![Status::Bad.code()]);
    }
}

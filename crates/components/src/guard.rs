//! The ACCAT Guard.
//!
//! > "Messages from the LOW system to the HIGH one are allowed through the
//! > Guard without hindrance, but messages from HIGH to LOW must be
//! > displayed to a human 'Security Watch Officer' who has to decide whether
//! > they may be declassified."
//!
//! The Guard supports flow in *both* directions with *different* rules per
//! direction — the paper's demonstration that a single system-wide policy
//! (and hence a conventional kernel) is the wrong tool. Here it is a single
//! trusted component with four dedicated lines: `low.in`, `low.out`,
//! `high.in`, `high.out`. The Security Watch Officer is a pluggable
//! [`WatchOfficer`]; every decision is recorded in the audit log.

use crate::component::{Component, ComponentIo};
use std::any::Any;
use std::collections::VecDeque;

/// The officer's decision on one HIGH→LOW message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Decision {
    /// Release the message (possibly rewritten) to LOW.
    Release(Vec<u8>),
    /// Refuse declassification.
    Deny,
    /// No decision yet (the officer is thinking); ask again next round.
    Defer,
}

/// The Security Watch Officer interface.
pub trait WatchOfficer: Send + Sync {
    /// Reviews one message proposed for declassification.
    fn review(&mut self, message: &[u8]) -> Decision;

    /// Object-safe clone.
    fn boxed_clone(&self) -> Box<dyn WatchOfficer>;
}

impl Clone for Box<dyn WatchOfficer> {
    fn clone(&self) -> Self {
        self.boxed_clone()
    }
}

/// An officer who releases everything (for throughput baselines).
#[derive(Debug, Clone)]
pub struct ApproveAll;

impl WatchOfficer for ApproveAll {
    fn review(&mut self, message: &[u8]) -> Decision {
        Decision::Release(message.to_vec())
    }

    fn boxed_clone(&self) -> Box<dyn WatchOfficer> {
        Box::new(self.clone())
    }
}

/// An officer who refuses everything.
#[derive(Debug, Clone)]
pub struct DenyAll;

impl WatchOfficer for DenyAll {
    fn review(&mut self, _message: &[u8]) -> Decision {
        Decision::Deny
    }

    fn boxed_clone(&self) -> Box<dyn WatchOfficer> {
        Box::new(self.clone())
    }
}

/// An officer with a dirty-word list: messages containing any listed word
/// are denied; everything else is released unchanged.
#[derive(Debug, Clone)]
pub struct DirtyWordOfficer {
    words: Vec<Vec<u8>>,
}

impl DirtyWordOfficer {
    /// An officer refusing messages that contain any of `words`.
    pub fn new(words: &[&str]) -> DirtyWordOfficer {
        DirtyWordOfficer {
            words: words.iter().map(|w| w.as_bytes().to_vec()).collect(),
        }
    }
}

impl WatchOfficer for DirtyWordOfficer {
    fn review(&mut self, message: &[u8]) -> Decision {
        for w in &self.words {
            if message.windows(w.len().max(1)).any(|win| win == &w[..]) {
                return Decision::Deny;
            }
        }
        Decision::Release(message.to_vec())
    }

    fn boxed_clone(&self) -> Box<dyn WatchOfficer> {
        Box::new(self.clone())
    }
}

/// An officer driven by a script of decisions (deterministic experiments).
#[derive(Debug, Clone)]
pub struct ScriptedOfficer {
    decisions: VecDeque<bool>,
}

impl ScriptedOfficer {
    /// `true` entries release, `false` deny; an exhausted script defers.
    pub fn new(decisions: &[bool]) -> ScriptedOfficer {
        ScriptedOfficer {
            decisions: decisions.iter().copied().collect(),
        }
    }
}

impl WatchOfficer for ScriptedOfficer {
    fn review(&mut self, message: &[u8]) -> Decision {
        match self.decisions.pop_front() {
            Some(true) => Decision::Release(message.to_vec()),
            Some(false) => Decision::Deny,
            None => Decision::Defer,
        }
    }

    fn boxed_clone(&self) -> Box<dyn WatchOfficer> {
        Box::new(self.clone())
    }
}

/// One audit-log entry.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum AuditEntry {
    /// A LOW→HIGH message passed (length only; contents are HIGH's business).
    PassedUp(usize),
    /// The officer released a HIGH→LOW message.
    Released(Vec<u8>),
    /// The officer denied a HIGH→LOW message.
    Denied(Vec<u8>),
}

/// The Guard component.
pub struct Guard {
    officer: Box<dyn WatchOfficer>,
    review_queue: VecDeque<Vec<u8>>,
    /// The audit log (host-inspectable).
    pub audit: Vec<AuditEntry>,
    /// Messages passed LOW→HIGH.
    pub passed_up: u64,
    /// Messages released HIGH→LOW.
    pub released: u64,
    /// Messages denied HIGH→LOW.
    pub denied: u64,
}

impl Clone for Guard {
    fn clone(&self) -> Self {
        Guard {
            officer: self.officer.clone(),
            review_queue: self.review_queue.clone(),
            audit: self.audit.clone(),
            passed_up: self.passed_up,
            released: self.released,
            denied: self.denied,
        }
    }
}

impl Guard {
    /// A guard with the given watch officer.
    pub fn new(officer: Box<dyn WatchOfficer>) -> Guard {
        Guard {
            officer,
            review_queue: VecDeque::new(),
            audit: Vec::new(),
            passed_up: 0,
            released: 0,
            denied: 0,
        }
    }

    /// Messages awaiting the officer.
    pub fn pending_review(&self) -> usize {
        self.review_queue.len()
    }
}

impl Component for Guard {
    fn name(&self) -> &str {
        "guard"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        // LOW → HIGH: unhindered.
        while let Some(msg) = io.recv("low.in") {
            self.audit.push(AuditEntry::PassedUp(msg.len()));
            self.passed_up += 1;
            io.send("high.out", &msg);
        }
        // HIGH → LOW: queue for review.
        while let Some(msg) = io.recv("high.in") {
            self.review_queue.push_back(msg);
        }
        // The officer reviews at most one message per round (a human).
        if let Some(msg) = self.review_queue.front().cloned() {
            match self.officer.review(&msg) {
                Decision::Release(text) => {
                    self.review_queue.pop_front();
                    self.audit.push(AuditEntry::Released(text.clone()));
                    self.released += 1;
                    io.send("low.out", &text);
                }
                Decision::Deny => {
                    self.review_queue.pop_front();
                    self.audit.push(AuditEntry::Denied(msg));
                    self.denied += 1;
                }
                Decision::Defer => {}
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;

    #[test]
    fn low_to_high_is_unhindered() {
        let mut g = Guard::new(Box::new(DenyAll));
        let mut io = TestIo::new();
        io.push("low.in", b"request for data");
        io.push("low.in", b"another");
        io.run(&mut g, 1);
        assert_eq!(io.sent("high.out").len(), 2);
        assert_eq!(g.passed_up, 2);
    }

    #[test]
    fn high_to_low_requires_release() {
        let mut g = Guard::new(Box::new(DenyAll));
        let mut io = TestIo::new();
        io.push("high.in", b"classified answer");
        io.run(&mut g, 3);
        assert!(
            io.sent("low.out").is_empty(),
            "nothing leaks without approval"
        );
        assert_eq!(g.denied, 1);
        assert!(matches!(g.audit.last(), Some(AuditEntry::Denied(_))));
    }

    #[test]
    fn approved_messages_flow_down() {
        let mut g = Guard::new(Box::new(ApproveAll));
        let mut io = TestIo::new();
        io.push("high.in", b"releasable summary");
        io.run(&mut g, 2);
        assert_eq!(io.sent("low.out"), &[b"releasable summary".to_vec()]);
        assert_eq!(g.released, 1);
    }

    #[test]
    fn officer_reviews_one_message_per_round() {
        let mut g = Guard::new(Box::new(ApproveAll));
        let mut io = TestIo::new();
        for i in 0..3u8 {
            io.push("high.in", &[i]);
        }
        io.run(&mut g, 1);
        assert_eq!(io.sent("low.out").len(), 1);
        io.run(&mut g, 2);
        assert_eq!(io.sent("low.out").len(), 3);
    }

    #[test]
    fn dirty_word_officer_screens_content() {
        let mut g = Guard::new(Box::new(DirtyWordOfficer::new(&["SECRET", "NOFORN"])));
        let mut io = TestIo::new();
        io.push("high.in", b"weather is fine");
        io.push("high.in", b"the SECRET plan");
        io.run(&mut g, 3);
        assert_eq!(io.sent("low.out"), &[b"weather is fine".to_vec()]);
        assert_eq!(g.denied, 1);
        assert_eq!(g.released, 1);
    }

    #[test]
    fn scripted_officer_defers_when_script_runs_out() {
        let mut g = Guard::new(Box::new(ScriptedOfficer::new(&[true, false])));
        let mut io = TestIo::new();
        for i in 0..3u8 {
            io.push("high.in", &[i]);
        }
        io.run(&mut g, 5);
        assert_eq!(g.released, 1);
        assert_eq!(g.denied, 1);
        assert_eq!(g.pending_review(), 1, "third message waits forever");
    }
}

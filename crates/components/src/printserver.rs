//! The secure printing service.
//!
//! > "It must, for example, print the correct security classification of
//! > each job on its header page and must not print parts of one job within
//! > another ... the printer-server may need to co-operate with the
//! > file-server and may require services from the file-server that are
//! > different from those provided to ordinary users (for example, the
//! > ability to delete spool files of all security classifications)."
//!
//! Users spool a file (at their own level) on the file server, then submit
//! `{name, level}` on their dedicated submit port. The print server fetches
//! the file (it is cleared to read every level), prints a banner page
//! carrying the classification, the job body, and a trailer — strictly one
//! job at a time, so jobs can never interleave — and finally removes the
//! spool file through the file server's special delete service.

use crate::component::{Component, ComponentIo};
use crate::fileserver::request as fsreq;
use crate::proto::{MsgReader, MsgWriter, Status};
use sep_policy::level::{Classification, SecurityLevel};
use std::any::Any;
use std::collections::VecDeque;

/// A queued print job.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Job {
    /// Submitting client (its submit-port index).
    pub client: usize,
    /// Spool file name (conventionally `spool/...`).
    pub name: String,
    /// The job's classification.
    pub level: SecurityLevel,
}

#[derive(Debug, Clone, PartialEq, Eq)]
enum PrinterState {
    Idle,
    AwaitingContents(Job),
    AwaitingDelete(Job),
}

/// The print server.
///
/// Ports: `c{i}.submit` / `c{i}.status` per user, `fs.req` / `fs.rsp` to
/// the file server, `paper` to the physical printer.
#[derive(Debug, Clone)]
pub struct PrintServer {
    clients: usize,
    queue: VecDeque<Job>,
    state: PrinterState,
    /// Completed job count.
    pub jobs_printed: u64,
}

impl PrintServer {
    /// A print server serving `clients` submit lines.
    pub fn new(clients: usize) -> PrintServer {
        PrintServer {
            clients,
            queue: VecDeque::new(),
            state: PrinterState::Idle,
            jobs_printed: 0,
        }
    }

    /// Encodes a submit request.
    pub fn submit_request(name: &str, level: SecurityLevel) -> Vec<u8> {
        let mut w = MsgWriter::new();
        w.str(name).u8(level.class.rank());
        w.finish()
    }

    /// The banner line printed before a job.
    pub fn banner(level: SecurityLevel) -> String {
        format!("==== CLASSIFICATION: {level} ====\n")
    }

    /// The trailer line printed after a job.
    pub fn trailer() -> &'static str {
        "==== END OF JOB ====\n"
    }
}

impl Component for PrintServer {
    fn name(&self) -> &str {
        "print-server"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        // Accept new submissions.
        for client in 0..self.clients {
            let submit = format!("c{client}.submit");
            while let Some(frame) = io.recv(&submit) {
                let mut r = MsgReader::new(&frame);
                let parsed = (|| -> Result<Job, crate::proto::Malformed> {
                    let name = r.str()?.to_string();
                    let rank = r.u8()?;
                    let class = Classification::from_rank(rank).ok_or(crate::proto::Malformed)?;
                    Ok(Job {
                        client,
                        name,
                        level: SecurityLevel::plain(class),
                    })
                })();
                let status_port = format!("c{client}.status");
                match parsed {
                    Ok(job) => {
                        self.queue.push_back(job);
                        io.send(&status_port, &[Status::Ok.code()]);
                    }
                    Err(_) => {
                        io.send(&status_port, &[Status::Bad.code()]);
                    }
                }
            }
        }

        // Drive the current job.
        match self.state.clone() {
            PrinterState::Idle => {
                if let Some(job) = self.queue.pop_front() {
                    io.send("fs.req", &fsreq::read(&job.name, job.level));
                    self.state = PrinterState::AwaitingContents(job);
                }
            }
            PrinterState::AwaitingContents(job) => {
                if let Some(rsp) = io.recv("fs.rsp") {
                    let (status, payload) = fsreq::decode(&rsp);
                    if status == Status::Ok {
                        let mut r = MsgReader::new(payload);
                        let body = r.bytes().unwrap_or(&[]).to_vec();
                        // One job, strictly contiguous on the paper port:
                        // banner, body, trailer.
                        io.send("paper", PrintServer::banner(job.level).as_bytes());
                        io.send("paper", &body);
                        io.send("paper", PrintServer::trailer().as_bytes());
                        io.send("fs.req", &fsreq::delete(&job.name, job.level));
                        self.state = PrinterState::AwaitingDelete(job);
                    } else {
                        // Job file missing/denied: report and move on.
                        let port = format!("c{}.status", job.client);
                        io.send(&port, &[Status::NotFound.code()]);
                        self.state = PrinterState::Idle;
                    }
                }
            }
            PrinterState::AwaitingDelete(job) => {
                if let Some(rsp) = io.recv("fs.rsp") {
                    let (status, _) = fsreq::decode(&rsp);
                    let port = format!("c{}.status", job.client);
                    io.send(&port, &[status.code()]);
                    self.jobs_printed += 1;
                    self.state = PrinterState::Idle;
                }
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;
    use crate::fileserver::{FileServer, FsClient};

    fn secret() -> SecurityLevel {
        SecurityLevel::plain(Classification::Secret)
    }

    fn unclass() -> SecurityLevel {
        SecurityLevel::plain(Classification::Unclassified)
    }

    /// Runs the print server against a real file server by shuttling frames
    /// by hand.
    struct Rig {
        ps: PrintServer,
        fs: FileServer,
    }

    impl Rig {
        fn new() -> Rig {
            Rig {
                ps: PrintServer::new(2),
                fs: FileServer::new(vec![
                    FsClient {
                        name: "printer".into(),
                        level: SecurityLevel::plain(Classification::TopSecret),
                        special_delete: true,
                    },
                    FsClient {
                        name: "low-user".into(),
                        level: unclass(),
                        special_delete: false,
                    },
                    FsClient {
                        name: "high-user".into(),
                        level: secret(),
                        special_delete: false,
                    },
                ]),
            }
        }

        /// One round of both components with frame shuttling; returns the
        /// paper output produced this round.
        fn round(
            &mut self,
            submits: &mut Vec<(usize, Vec<u8>)>,
            carry: &mut Vec<Vec<u8>>,
        ) -> Vec<Vec<u8>> {
            let mut ps_io = TestIo::new();
            for (client, frame) in submits.drain(..) {
                ps_io.push(&format!("c{client}.submit"), &frame);
            }
            for rsp in carry.drain(..) {
                ps_io.push("fs.rsp", &rsp);
            }
            ps_io.run(&mut self.ps, 1);
            // Forward fs requests (printer is fs client 0).
            let mut fs_io = TestIo::new();
            for req in ps_io.take_sent("fs.req") {
                fs_io.push("c0.req", &req);
            }
            fs_io.run(&mut self.fs, 1);
            *carry = fs_io.take_sent("c0.rsp");
            ps_io.take_sent("paper")
        }
    }

    fn spool(fs: &mut FileServer, name: &str, level: SecurityLevel, body: &[u8]) {
        // Users spool at their own level: client 1 is the low user, client
        // 2 the high user.
        let client = if level == unclass() { 1 } else { 2 };
        let mut io = TestIo::new();
        io.push(
            &format!("c{client}.req"),
            &crate::fileserver::request::create(name, level),
        );
        io.push(
            &format!("c{client}.req"),
            &crate::fileserver::request::write(name, level, body),
        );
        io.run(fs, 1);
        let responses = io.take_sent(&format!("c{client}.rsp"));
        assert!(responses.iter().all(|r| r[0] == Status::Ok.code()));
    }

    #[test]
    fn prints_banner_body_trailer_and_cleans_up() {
        let mut rig = Rig::new();
        spool(&mut rig.fs, "spool/job1", unclass(), b"hello world");
        let mut submits = vec![(0usize, PrintServer::submit_request("spool/job1", unclass()))];
        let mut carry: Vec<Vec<u8>> = Vec::new();
        let mut paper: Vec<Vec<u8>> = Vec::new();
        for _ in 0..6 {
            paper.extend(rig.round(&mut submits, &mut carry));
        }
        let text: Vec<u8> = paper.concat();
        let text = String::from_utf8(text).unwrap();
        assert!(text.starts_with("==== CLASSIFICATION: UNCLASSIFIED ====\n"));
        assert!(text.contains("hello world"));
        assert!(text.ends_with(PrintServer::trailer()));
        // The spool file was removed via the special service, with audit.
        assert_eq!(rig.fs.file_count(), 0);
        assert_eq!(rig.fs.audit.len(), 1);
        assert_eq!(rig.ps.jobs_printed, 1);
    }

    #[test]
    fn jobs_never_interleave() {
        let mut rig = Rig::new();
        spool(&mut rig.fs, "spool/a", unclass(), b"AAAA");
        spool(&mut rig.fs, "spool/b", secret(), b"BBBB");
        let mut submits = vec![
            (0usize, PrintServer::submit_request("spool/a", unclass())),
            (1usize, PrintServer::submit_request("spool/b", secret())),
        ];
        let mut carry: Vec<Vec<u8>> = Vec::new();
        let mut paper: Vec<Vec<u8>> = Vec::new();
        for _ in 0..12 {
            paper.extend(rig.round(&mut submits, &mut carry));
        }
        let text = String::from_utf8(paper.concat()).unwrap();
        // Job A completes entirely before job B begins.
        let a_end = text.find("END OF JOB").unwrap();
        let b_start = text.find("BBBB").unwrap();
        assert!(a_end < b_start, "{text}");
        assert!(text.contains("CLASSIFICATION: SECRET"));
        assert_eq!(rig.ps.jobs_printed, 2);
    }

    #[test]
    fn missing_spool_file_reports_not_found() {
        let mut rig = Rig::new();
        let mut submits = vec![(
            0usize,
            PrintServer::submit_request("spool/ghost", unclass()),
        )];
        let mut carry: Vec<Vec<u8>> = Vec::new();
        let mut ps_status = Vec::new();
        for _ in 0..6 {
            let mut ps_io = TestIo::new();
            for (client, frame) in submits.drain(..) {
                ps_io.push(&format!("c{client}.submit"), &frame);
            }
            for rsp in carry.drain(..) {
                ps_io.push("fs.rsp", &rsp);
            }
            ps_io.run(&mut rig.ps, 1);
            let mut fs_io = TestIo::new();
            for req in ps_io.take_sent("fs.req") {
                fs_io.push("c0.req", &req);
            }
            fs_io.run(&mut rig.fs, 1);
            carry = fs_io.take_sent("c0.rsp");
            ps_status.extend(ps_io.take_sent("c0.status"));
        }
        // First Ok (queued), then NotFound (no such spool file).
        assert_eq!(ps_status.len(), 2);
        assert_eq!(ps_status[1], vec![Status::NotFound.code()]);
        assert_eq!(rig.ps.jobs_printed, 0);
    }

    #[test]
    fn malformed_submission_is_rejected() {
        let mut ps = PrintServer::new(1);
        let mut io = TestIo::new();
        io.push("c0.submit", &[0xFF, 0xFF, 0xFF]);
        io.run(&mut ps, 1);
        assert_eq!(io.sent("c0.status"), &[vec![Status::Bad.code()]]);
    }
}

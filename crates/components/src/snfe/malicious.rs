//! A malicious red component: the censor's reason for existing.
//!
//! This red behaves like the honest one — it must, to keep traffic
//! flowing — but additionally tries to smuggle a secret byte stream to the
//! network side through the cleartext bypass. Three classic encodings are
//! implemented; experiment E4 measures how many secret bits survive each
//! censor policy:
//!
//! * [`ExfilMode::PadByte`] — 8 bits per header in the padding byte
//!   (defeated by canonicalization);
//! * [`ExfilMode::DstBits`] — 1 bit per header in the destination
//!   selector's low bit (survives canonicalization — `dst` is semantic —
//!   but is slow, and rate limiting slows it further);
//! * [`ExfilMode::ExtraHeaders`] — bursts of spurious-but-well-formed
//!   headers; the *count* of headers per packet encodes bits (defeated in
//!   bandwidth by rate limiting).

use super::red::Header;
use crate::component::{Component, ComponentIo};
use std::any::Any;

/// The covert encoding used by the malicious red.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ExfilMode {
    /// Secret bytes in the header padding field.
    PadByte,
    /// Secret bits in the destination selector's low bit.
    DstBits,
    /// Secret bits in the number of headers emitted per packet (one or
    /// two): a presence/burst code.
    ExtraHeaders,
}

/// The malicious red component.
#[derive(Debug, Clone)]
pub struct MaliciousRed {
    mode: ExfilMode,
    secret: Vec<u8>,
    bit_pos: usize,
    next_seq: u16,
    /// Secret bits the component has attempted to place on the bypass.
    pub bits_attempted: u64,
}

impl MaliciousRed {
    /// A malicious red trying to exfiltrate `secret` using `mode`.
    pub fn new(mode: ExfilMode, secret: Vec<u8>) -> MaliciousRed {
        MaliciousRed {
            mode,
            secret,
            bit_pos: 0,
            next_seq: 0,
            bits_attempted: 0,
        }
    }

    fn next_bit(&mut self) -> Option<u8> {
        let byte = self.secret.get(self.bit_pos / 8)?;
        let bit = (byte >> (self.bit_pos % 8)) & 1;
        self.bit_pos += 1;
        self.bits_attempted += 1;
        Some(bit)
    }

    fn next_byte(&mut self) -> Option<u8> {
        let byte = self.secret.get(self.bit_pos / 8).copied()?;
        self.bit_pos += 8;
        self.bits_attempted += 8;
        Some(byte)
    }
}

impl Component for MaliciousRed {
    fn name(&self) -> &str {
        "red" // It presents exactly like the honest red.
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        while let Some(data) = io.recv("host.in") {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            let mut header = Header {
                seq,
                len: data.len().min(u16::MAX as usize) as u16,
                dst: 1,
                pad: 0,
            };
            let mut extra = None;
            match self.mode {
                ExfilMode::PadByte => {
                    if let Some(b) = self.next_byte() {
                        header.pad = b;
                    }
                }
                ExfilMode::DstBits => {
                    if let Some(bit) = self.next_bit() {
                        header.dst = 2 | bit; // 2 or 3: still valid selectors
                    }
                }
                ExfilMode::ExtraHeaders => {
                    if let Some(bit) = self.next_bit() {
                        if bit == 1 {
                            // A second, spurious header with a fresh seq.
                            let seq2 = self.next_seq;
                            self.next_seq = self.next_seq.wrapping_add(1);
                            extra = Some(Header {
                                seq: seq2,
                                len: 0,
                                dst: 1,
                                pad: 0,
                            });
                        }
                    }
                }
            }
            io.send("bypass.out", &header.encode());
            if let Some(e) = extra {
                io.send("bypass.out", &e.encode());
            }
            let mut payload = seq.to_le_bytes().to_vec();
            payload.extend(&data);
            io.send("crypto.out", &payload);
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// The accomplice on the network side: decodes the covert stream from the
/// headers that survived the censor. Returns the recovered bytes (possibly
/// garbled — that is the point of the measurement).
pub fn decode_exfiltration(mode: ExfilMode, headers: &[Header]) -> Vec<u8> {
    let mut bits: Vec<u8> = Vec::new();
    match mode {
        ExfilMode::PadByte => {
            return headers.iter().map(|h| h.pad).collect();
        }
        ExfilMode::DstBits => {
            for h in headers {
                if h.dst >= 2 {
                    bits.push(h.dst & 1);
                }
            }
        }
        ExfilMode::ExtraHeaders => {
            // A data header (len > 0) followed by a zero-length header
            // encodes 1; a lone data header encodes 0.
            let mut i = 0;
            while i < headers.len() {
                if headers[i].len > 0 {
                    let burst = headers.get(i + 1).map(|h| h.len == 0).unwrap_or(false);
                    bits.push(burst as u8);
                    i += if burst { 2 } else { 1 };
                } else {
                    i += 1;
                }
            }
        }
    }
    bits.chunks(8)
        .filter(|c| c.len() == 8)
        .map(|c| c.iter().enumerate().fold(0u8, |a, (i, b)| a | (b << i)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;
    use crate::snfe::censor::{Censor, CensorPolicy};

    /// Runs the malicious red against a censor; returns surviving headers.
    fn run_exfil(
        mode: ExfilMode,
        policy: CensorPolicy,
        secret: &[u8],
        packets: usize,
    ) -> Vec<Header> {
        let mut red = MaliciousRed::new(mode, secret.to_vec());
        let mut censor = Censor::new(policy);
        let mut red_io = TestIo::new();
        for i in 0..packets {
            red_io.push("host.in", format!("innocent traffic {i}").as_bytes());
        }
        red_io.run(&mut red, packets as u64);
        let mut censor_io = TestIo::new();
        for frame in red_io.take_sent("bypass.out") {
            censor_io.push("red.in", &frame);
        }
        censor_io.run(&mut censor, 1);
        censor_io
            .take_sent("black.out")
            .iter()
            .filter_map(|f| Header::decode(f))
            .collect()
    }

    #[test]
    fn pad_byte_channel_works_without_canonicalization() {
        let secret = b"leak";
        let headers = run_exfil(ExfilMode::PadByte, CensorPolicy::format_only(), secret, 8);
        let recovered = decode_exfiltration(ExfilMode::PadByte, &headers);
        assert_eq!(&recovered[..4], secret);
    }

    #[test]
    fn canonicalization_zeroes_the_pad_channel() {
        let secret = b"leak";
        let headers = run_exfil(ExfilMode::PadByte, CensorPolicy::canonical(), secret, 8);
        let recovered = decode_exfiltration(ExfilMode::PadByte, &headers);
        assert!(recovered.iter().all(|&b| b == 0), "{recovered:?}");
    }

    #[test]
    fn dst_bit_channel_survives_canonicalization_at_low_rate() {
        let secret = [0b1010_1010u8];
        let headers = run_exfil(ExfilMode::DstBits, CensorPolicy::canonical(), &secret, 8);
        let recovered = decode_exfiltration(ExfilMode::DstBits, &headers);
        assert_eq!(recovered, vec![0b1010_1010]);
    }

    #[test]
    fn extra_header_channel_defeated_by_rate_limit() {
        let secret = vec![0xFF; 8]; // all-ones: maximum burst rate
        let strict = CensorPolicy {
            check_format: true,
            canonicalize: true,
            rate_limit: Some(4),
        };
        let open = run_exfil(
            ExfilMode::ExtraHeaders,
            CensorPolicy::canonical(),
            &secret,
            16,
        );
        let limited = run_exfil(ExfilMode::ExtraHeaders, strict, &secret, 16);
        assert!(
            limited.len() < open.len() / 2,
            "rate limiting cut the header count: {} vs {}",
            limited.len(),
            open.len()
        );
    }

    #[test]
    fn malicious_red_still_delivers_real_traffic() {
        let mut red = MaliciousRed::new(ExfilMode::PadByte, b"x".to_vec());
        let mut io = TestIo::new();
        io.push("host.in", b"legit data");
        io.run(&mut red, 1);
        assert_eq!(io.sent("crypto.out").len(), 1);
        assert_eq!(&io.sent("crypto.out")[0][2..], b"legit data");
    }
}

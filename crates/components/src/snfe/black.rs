//! The black (network-side) component of the SNFE.
//!
//! Black receives encrypted payloads from the crypto and headers from the
//! censor, pairs them by sequence number, and transmits `header ‖ payload`
//! to the network. It never sees cleartext user data at all.

use super::red::Header;
use crate::component::{Component, ComponentIo};
use std::any::Any;
use std::collections::BTreeMap;

/// The black component.
#[derive(Debug, Clone, Default)]
pub struct BlackComponent {
    headers: BTreeMap<u16, Vec<u8>>,
    payloads: BTreeMap<u16, Vec<u8>>,
    /// Frames transmitted to the network.
    pub transmitted: u64,
}

impl BlackComponent {
    /// A fresh black component.
    pub fn new() -> BlackComponent {
        BlackComponent::default()
    }

    /// Packets waiting for their other half.
    pub fn unmatched(&self) -> usize {
        self.headers.len() + self.payloads.len()
    }
}

impl Component for BlackComponent {
    fn name(&self) -> &str {
        "black"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        while let Some(frame) = io.recv("bypass.in") {
            if let Some(h) = Header::decode(&frame) {
                self.headers.insert(h.seq, frame);
            }
            // Frames that do not parse as headers cannot be matched to a
            // payload; they are dropped (a censor in `off` mode may forward
            // such junk).
        }
        while let Some(frame) = io.recv("crypto.in") {
            if frame.len() >= 2 {
                let seq = u16::from_le_bytes([frame[0], frame[1]]);
                self.payloads.insert(seq, frame);
            }
        }
        // Transmit every matched pair, in sequence order.
        let ready: Vec<u16> = self
            .headers
            .keys()
            .filter(|seq| self.payloads.contains_key(seq))
            .copied()
            .collect();
        for seq in ready {
            let header = self.headers.remove(&seq).unwrap();
            let payload = self.payloads.remove(&seq).unwrap();
            let mut out = header;
            out.extend(payload);
            io.send("net.out", &out);
            self.transmitted += 1;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;
    use crate::snfe::red::HEADER_LEN;

    fn header(seq: u16) -> Vec<u8> {
        Header {
            seq,
            len: 4,
            dst: 1,
            pad: 0,
        }
        .encode()
        .to_vec()
    }

    fn payload(seq: u16, body: &[u8]) -> Vec<u8> {
        let mut p = seq.to_le_bytes().to_vec();
        p.extend(body);
        p
    }

    #[test]
    fn pairs_header_and_payload_by_seq() {
        let mut b = BlackComponent::new();
        let mut io = TestIo::new();
        io.push("bypass.in", &header(5));
        io.push("crypto.in", &payload(5, b"ct"));
        io.run(&mut b, 1);
        let out = io.take_sent("net.out");
        assert_eq!(out.len(), 1);
        assert_eq!(out[0].len(), HEADER_LEN + 2 + 2);
        assert_eq!(b.transmitted, 1);
        assert_eq!(b.unmatched(), 0);
    }

    #[test]
    fn waits_for_the_missing_half() {
        let mut b = BlackComponent::new();
        let mut io = TestIo::new();
        io.push("bypass.in", &header(1));
        io.run(&mut b, 1);
        assert!(io.sent("net.out").is_empty());
        assert_eq!(b.unmatched(), 1);
        io.push("crypto.in", &payload(1, b"xx"));
        io.run(&mut b, 1);
        assert_eq!(io.sent("net.out").len(), 1);
    }

    #[test]
    fn transmits_in_sequence_order() {
        let mut b = BlackComponent::new();
        let mut io = TestIo::new();
        io.push("bypass.in", &header(2));
        io.push("bypass.in", &header(1));
        io.push("crypto.in", &payload(2, b"b"));
        io.push("crypto.in", &payload(1, b"a"));
        io.run(&mut b, 1);
        let out = io.take_sent("net.out");
        let seqs: Vec<u16> = out
            .iter()
            .map(|f| Header::decode(&f[..HEADER_LEN]).unwrap().seq)
            .collect();
        assert_eq!(seqs, vec![1, 2]);
    }

    #[test]
    fn junk_on_the_bypass_is_dropped() {
        let mut b = BlackComponent::new();
        let mut io = TestIo::new();
        io.push("bypass.in", b"not a header");
        io.push("crypto.in", &payload(9, b"orphan"));
        io.run(&mut b, 1);
        assert!(io.sent("net.out").is_empty());
        assert_eq!(b.unmatched(), 1);
    }
}

//! The Secure Network Front End (SNFE) of the paper's §2 (and its figure).
//!
//! ```text
//!             ┌───────┐ cleartext bypass ┌────────┐
//!             │  RED  │────▶ censor ────▶│ BLACK  │
//!  host ────▶ │       │                  │        │────▶ network
//!             │       │────▶ crypto ────▶│        │
//!             └───────┘    (payload)     └────────┘
//! ```
//!
//! "The security requirement of the system is that user data from the host
//! must not reach the network in cleartext form." Red packetizes host data:
//! headers cross the **cleartext bypass**, policed by the [`censor`];
//! payloads cross the [`CryptoBox`]. Black reassembles and transmits.
//!
//! [`malicious::MaliciousRed`] is the threat the censor exists for: red
//! software "too large and complex to allow its verification" that tries to
//! smuggle user data through the bypass. Experiment E4 measures how far the
//! censor's strictness knobs cut that covert bandwidth.

pub mod black;
pub mod censor;
pub mod cipher;
pub mod malicious;
pub mod red;

use crate::component::{Component, ComponentIo, NodeAdapter};
use crate::util::{Sink, Source};
use sep_distributed::Network;
use std::any::Any;

pub use black::BlackComponent;
pub use censor::{Censor, CensorPolicy};
pub use cipher::{xtea_ctr, Key};
pub use malicious::{decode_exfiltration, ExfilMode, MaliciousRed};
pub use red::{Header, RedComponent, HEADER_LEN, HEADER_MAGIC};

/// The crypto box: encrypts payload frames from red for black.
///
/// Frames are `[seq u16, body...]`; the sequence number passes in clear
/// (black needs it for reassembly), the body is XTEA-CTR'd under the unit's
/// key with the sequence as nonce.
#[derive(Debug, Clone)]
pub struct CryptoBox {
    key: Key,
    /// Frames processed.
    pub processed: u64,
}

impl CryptoBox {
    /// A crypto box with the given key.
    pub fn new(key: Key) -> CryptoBox {
        CryptoBox { key, processed: 0 }
    }
}

impl Component for CryptoBox {
    fn name(&self) -> &str {
        "crypto"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        while let Some(frame) = io.recv("in") {
            if frame.len() < 2 {
                continue; // Not a payload frame; the crypto is not a router.
            }
            let seq = u16::from_le_bytes([frame[0], frame[1]]);
            let ct = xtea_ctr(self.key, seq as u64, &frame[2..]);
            let mut out = frame[..2].to_vec();
            out.extend(ct);
            self.processed += 1;
            io.send("out", &out);
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

/// Handles into a built SNFE network.
pub struct SnfeNet {
    /// The network, ready to run.
    pub network: Network,
    /// Node id of the host source.
    pub host: sep_distributed::NodeId,
    /// Node id of the network sink.
    pub net: sep_distributed::NodeId,
}

/// Builds the full SNFE on the physically distributed substrate: host
/// source → red → {censor, crypto} → black → network sink, with dedicated
/// wires exactly matching the paper's figure (no red–black wire exists).
pub fn build_snfe_network(
    red: Box<dyn Component>,
    policy: CensorPolicy,
    key: Key,
    host_frames: Vec<Vec<u8>>,
) -> SnfeNet {
    let mut network = Network::new();
    let host = network.add_node(NodeAdapter::new(Box::new(Source::new("host", host_frames))));
    let red_id = network.add_node(NodeAdapter::new(red));
    let crypto = network.add_node(NodeAdapter::new(Box::new(CryptoBox::new(key))));
    let censor = network.add_node(NodeAdapter::new(Box::new(Censor::new(policy))));
    let black = network.add_node(NodeAdapter::new(Box::new(BlackComponent::new())));
    let net = network.add_node(NodeAdapter::new(Box::new(Sink::new("network"))));

    network.connect(host, "out", red_id, "host.in", 64, 1);
    network.connect(red_id, "crypto.out", crypto, "in", 64, 1);
    network.connect(crypto, "out", black, "crypto.in", 64, 1);
    network.connect(red_id, "bypass.out", censor, "red.in", 64, 1);
    network.connect(censor, "black.out", black, "bypass.in", 64, 1);
    network.connect(black, "net.out", net, "in", 64, 1);
    SnfeNet { network, host, net }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;

    const KEY: Key = [1, 2, 3, 4];

    #[test]
    fn crypto_box_encrypts_bodies_and_passes_seq() {
        let mut c = CryptoBox::new(KEY);
        let mut io = TestIo::new();
        let mut frame = 7u16.to_le_bytes().to_vec();
        frame.extend(b"plaintext body");
        io.push("in", &frame);
        io.run(&mut c, 1);
        let out = io.take_sent("out");
        assert_eq!(out.len(), 1);
        assert_eq!(&out[0][..2], &7u16.to_le_bytes());
        assert_ne!(&out[0][2..], b"plaintext body");
        assert_eq!(xtea_ctr(KEY, 7, &out[0][2..]), b"plaintext body");
        assert_eq!(c.processed, 1);
    }

    #[test]
    fn end_to_end_no_cleartext_reaches_the_network() {
        let secret = b"the fleet sails at midnight";
        let frames = vec![secret.to_vec(), b"second message".to_vec()];
        let mut snfe = build_snfe_network(
            Box::new(RedComponent::new(1)),
            CensorPolicy::strict(),
            KEY,
            frames,
        );
        let net = snfe.net;
        snfe.network.run(30);
        let sink_frames = {
            let events = snfe.network.traces.trace("network").to_vec();
            events
        };
        let _ = net;
        // The sink's trace records hex of everything received; the secret
        // in hex must not appear.
        let hex_secret: String = secret.iter().map(|b| format!("{b:02x}")).collect();
        for e in &sink_frames {
            assert!(!e.contains(&hex_secret), "cleartext leaked: {e}");
        }
        assert!(!sink_frames.is_empty(), "traffic flowed");
    }

    #[test]
    fn end_to_end_payload_decrypts_at_the_far_side() {
        let secret = b"payload integrity check".to_vec();
        let mut snfe = build_snfe_network(
            Box::new(RedComponent::new(1)),
            CensorPolicy::strict(),
            KEY,
            vec![secret.clone()],
        );
        snfe.network.run(30);
        // Reconstruct what the network saw from the sink trace.
        let events = snfe.network.traces.trace("network").to_vec();
        let frame_hex: Vec<&str> = events
            .iter()
            .filter(|e| e.starts_with("recv in "))
            .map(|e| e.rsplit(' ').next().unwrap())
            .collect();
        assert_eq!(frame_hex.len(), 1);
        let frame: Vec<u8> = (0..frame_hex[0].len())
            .step_by(2)
            .map(|i| u8::from_str_radix(&frame_hex[0][i..i + 2], 16).unwrap())
            .collect();
        // Frame = header (HEADER_LEN bytes) ‖ seq ‖ ciphertext.
        let body = &frame[HEADER_LEN..];
        let seq = u16::from_le_bytes([body[0], body[1]]);
        let pt = xtea_ctr(KEY, seq as u64, &body[2..]);
        assert_eq!(pt, secret);
    }
}

//! XTEA-CTR: the cipher behind the SNFE's crypto box.
//!
//! Counter mode over the XTEA block cipher from `sep-machine` (the same
//! algorithm the memory-mapped crypto unit implements, so machine-code
//! regimes and native components interoperate). A toy stand-in for real
//! cryptographic equipment — see DESIGN.md, substitution 5. **Not for
//! production use.**

use sep_machine::dev::crypto::xtea_encrypt;

/// A 128-bit key as four words.
pub type Key = [u32; 4];

/// Encrypts or decrypts `data` (CTR mode is symmetric) under `key` with a
/// per-message `nonce`.
pub fn xtea_ctr(key: Key, nonce: u64, data: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(data.len());
    for (block_idx, chunk) in data.chunks(8).enumerate() {
        let counter = [(nonce >> 32) as u32 ^ block_idx as u32, nonce as u32];
        let ks = xtea_encrypt(counter, key);
        let ks_bytes: Vec<u8> = ks.iter().flat_map(|w| w.to_le_bytes()).collect();
        for (b, k) in chunk.iter().zip(ks_bytes.iter()) {
            out.push(b ^ k);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    const KEY: Key = [0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210];

    #[test]
    fn ctr_roundtrip() {
        let pt = b"attack at dawn, bring snacks";
        let ct = xtea_ctr(KEY, 42, pt);
        assert_ne!(&ct[..], &pt[..]);
        assert_eq!(xtea_ctr(KEY, 42, &ct), pt);
    }

    #[test]
    fn nonce_separates_streams() {
        let pt = b"same plaintext";
        assert_ne!(xtea_ctr(KEY, 1, pt), xtea_ctr(KEY, 2, pt));
    }

    #[test]
    fn ciphertext_hides_plaintext_bytes() {
        let pt = vec![b'A'; 64];
        let ct = xtea_ctr(KEY, 7, &pt);
        // No 4-byte run of the plaintext survives.
        assert!(!ct.windows(4).any(|w| w == b"AAAA"));
    }

    #[test]
    fn empty_and_partial_blocks() {
        assert!(xtea_ctr(KEY, 0, &[]).is_empty());
        let pt = b"abc";
        let ct = xtea_ctr(KEY, 3, pt);
        assert_eq!(ct.len(), 3);
        assert_eq!(xtea_ctr(KEY, 3, &ct), pt);
    }
}

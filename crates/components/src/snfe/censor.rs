//! The censor on the cleartext bypass.
//!
//! > "A 'censor' is inserted into the bypass to perform rigid procedural
//! > checks on the traffic passing through — to check that it has the
//! > appearance of legitimate protocol exchanges, rather than raw
//! > cleartext. A fairly simple censor can reduce the bandwidth available
//! > for illicit communication over the bypass to an acceptable level."
//!
//! The censor's strictness is a dial with three independent knobs, swept by
//! experiment E4:
//!
//! * **format checking** — frames must parse as legitimate headers (magic,
//!   length bound, valid destination);
//! * **canonicalization** — the header is *re-built* from its semantic
//!   fields, zeroing the padding and squashing any encoding games;
//! * **rate limiting** — at most `n` headers per 64-round window.

use super::red::Header;
#[cfg(test)]
use super::red::HEADER_LEN;
use crate::component::{Component, ComponentIo};
use std::any::Any;

/// Window length (rounds) for rate limiting.
pub const RATE_WINDOW: u64 = 64;

/// Maximum payload length a header may announce.
pub const MAX_ANNOUNCED_LEN: u16 = 4096;

/// Highest valid destination selector.
pub const MAX_DST: u8 = 3;

/// The censor's configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CensorPolicy {
    /// Require frames to parse as legitimate headers.
    pub check_format: bool,
    /// Rebuild headers from parsed fields (zeroing covert-capable bits).
    pub canonicalize: bool,
    /// Maximum headers forwarded per [`RATE_WINDOW`] rounds.
    pub rate_limit: Option<u32>,
}

impl CensorPolicy {
    /// No checking at all: the bypass is a wire (the baseline E4 measures
    /// against).
    pub fn off() -> CensorPolicy {
        CensorPolicy {
            check_format: false,
            canonicalize: false,
            rate_limit: None,
        }
    }

    /// Format checking only.
    pub fn format_only() -> CensorPolicy {
        CensorPolicy {
            check_format: true,
            canonicalize: false,
            rate_limit: None,
        }
    }

    /// Format checking plus canonicalization.
    pub fn canonical() -> CensorPolicy {
        CensorPolicy {
            check_format: true,
            canonicalize: true,
            rate_limit: None,
        }
    }

    /// Everything on: format, canonicalization, and a rate limit.
    pub fn strict() -> CensorPolicy {
        CensorPolicy {
            check_format: true,
            canonicalize: true,
            rate_limit: Some(16),
        }
    }
}

/// The censor component.
#[derive(Debug, Clone)]
pub struct Censor {
    policy: CensorPolicy,
    window_start: u64,
    window_count: u32,
    /// Headers forwarded.
    pub passed: u64,
    /// Frames dropped for format violations.
    pub dropped_format: u64,
    /// Frames dropped by rate limiting.
    pub dropped_rate: u64,
}

impl Censor {
    /// A censor with the given policy.
    pub fn new(policy: CensorPolicy) -> Censor {
        Censor {
            policy,
            window_start: 0,
            window_count: 0,
            passed: 0,
            dropped_format: 0,
            dropped_rate: 0,
        }
    }

    /// Applies the policy to one frame: `Some(out)` forwards, `None` drops.
    fn police(&mut self, frame: &[u8], round: u64) -> Option<Vec<u8>> {
        // Rate limiting first: even well-formed floods are suspect.
        if let Some(limit) = self.policy.rate_limit {
            if round.saturating_sub(self.window_start) >= RATE_WINDOW {
                self.window_start = round;
                self.window_count = 0;
            }
            if self.window_count >= limit {
                self.dropped_rate += 1;
                return None;
            }
        }
        let out = if self.policy.check_format {
            let Some(h) = Header::decode(frame) else {
                self.dropped_format += 1;
                return None;
            };
            if h.len > MAX_ANNOUNCED_LEN || h.dst > MAX_DST {
                self.dropped_format += 1;
                return None;
            }
            if self.policy.canonicalize {
                // Rebuild the header from its semantic content: the padding
                // byte is forced to zero and any hidden structure in the
                // encoding disappears.
                Header { pad: 0, ..h }.encode().to_vec()
            } else {
                frame.to_vec()
            }
        } else {
            frame.to_vec()
        };
        self.window_count += 1;
        self.passed += 1;
        Some(out)
    }
}

impl Component for Censor {
    fn name(&self) -> &str {
        "censor"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        let round = io.round();
        while let Some(frame) = io.recv("red.in") {
            if let Some(out) = self.police(&frame, round) {
                io.send("black.out", &out);
            }
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;

    fn header(pad: u8) -> Vec<u8> {
        Header {
            seq: 1,
            len: 10,
            dst: 1,
            pad,
        }
        .encode()
        .to_vec()
    }

    #[test]
    fn off_policy_is_a_wire() {
        let mut c = Censor::new(CensorPolicy::off());
        let mut io = TestIo::new();
        io.push("red.in", b"raw cleartext, not a header at all");
        io.run(&mut c, 1);
        assert_eq!(io.sent("black.out").len(), 1);
        assert_eq!(c.passed, 1);
    }

    #[test]
    fn format_check_drops_raw_cleartext() {
        let mut c = Censor::new(CensorPolicy::format_only());
        let mut io = TestIo::new();
        io.push("red.in", b"raw cleartext, not a header at all");
        io.push("red.in", &header(0));
        io.run(&mut c, 1);
        assert_eq!(io.sent("black.out").len(), 1);
        assert_eq!(c.dropped_format, 1);
    }

    #[test]
    fn format_check_enforces_field_bounds() {
        let mut c = Censor::new(CensorPolicy::format_only());
        let mut io = TestIo::new();
        let bad_dst = Header {
            seq: 0,
            len: 1,
            dst: 9,
            pad: 0,
        };
        let bad_len = Header {
            seq: 0,
            len: MAX_ANNOUNCED_LEN + 1,
            dst: 0,
            pad: 0,
        };
        io.push("red.in", &bad_dst.encode());
        io.push("red.in", &bad_len.encode());
        io.run(&mut c, 1);
        assert!(io.sent("black.out").is_empty());
        assert_eq!(c.dropped_format, 2);
    }

    #[test]
    fn format_only_lets_pad_bits_through_canonical_zeroes_them() {
        // Format checking alone still leaks the pad byte.
        let mut c = Censor::new(CensorPolicy::format_only());
        let mut io = TestIo::new();
        io.push("red.in", &header(0xAB));
        io.run(&mut c, 1);
        assert_eq!(Header::decode(&io.sent("black.out")[0]).unwrap().pad, 0xAB);

        // Canonicalization erases it.
        let mut c = Censor::new(CensorPolicy::canonical());
        let mut io = TestIo::new();
        io.push("red.in", &header(0xAB));
        io.run(&mut c, 1);
        assert_eq!(Header::decode(&io.sent("black.out")[0]).unwrap().pad, 0);
    }

    #[test]
    fn rate_limit_bounds_headers_per_window() {
        let mut c = Censor::new(CensorPolicy {
            check_format: true,
            canonicalize: true,
            rate_limit: Some(3),
        });
        let mut io = TestIo::new();
        for _ in 0..10 {
            io.push("red.in", &header(0));
        }
        io.run(&mut c, 1);
        assert_eq!(io.sent("black.out").len(), 3);
        assert_eq!(c.dropped_rate, 7);
        // A new window opens after RATE_WINDOW rounds.
        io.now = RATE_WINDOW + 1;
        io.push("red.in", &header(0));
        io.run(&mut c, 1);
        assert_eq!(c.passed, 4);
    }

    #[test]
    fn header_length_is_the_only_accepted_shape() {
        let mut c = Censor::new(CensorPolicy::format_only());
        let mut io = TestIo::new();
        io.push("red.in", &[0x5A; HEADER_LEN + 1]);
        io.push("red.in", &[0x5A; HEADER_LEN - 1]);
        io.run(&mut c, 1);
        assert!(io.sent("black.out").is_empty());
    }
}

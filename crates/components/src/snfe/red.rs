//! The red (host-side) component of the SNFE.
//!
//! Red handles host protocols: it packetizes cleartext frames from the
//! host, sends a fixed-format **header** over the cleartext bypass (for
//! red/black co-operation) and the **payload** to the crypto. The honest
//! red here is small; the paper's premise is that real red software is "too
//! large and complex to allow its verification" — hence the censor, and
//! hence [`super::malicious::MaliciousRed`].

use crate::component::{Component, ComponentIo};
use std::any::Any;

/// Bypass header length in bytes.
pub const HEADER_LEN: usize = 7;

/// Magic byte opening every legitimate bypass header.
pub const HEADER_MAGIC: u8 = 0x5A;

/// A parsed bypass header.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Header {
    /// Packet sequence number.
    pub seq: u16,
    /// Payload length in bytes.
    pub len: u16,
    /// Destination selector (0–3 are valid).
    pub dst: u8,
    /// Padding byte; always zero in legitimate traffic.
    pub pad: u8,
}

impl Header {
    /// Serializes the header.
    pub fn encode(&self) -> [u8; HEADER_LEN] {
        let s = self.seq.to_le_bytes();
        let l = self.len.to_le_bytes();
        [HEADER_MAGIC, s[0], s[1], l[0], l[1], self.dst, self.pad]
    }

    /// Parses a header; `None` when the frame is not even header-shaped.
    pub fn decode(frame: &[u8]) -> Option<Header> {
        if frame.len() != HEADER_LEN || frame[0] != HEADER_MAGIC {
            return None;
        }
        Some(Header {
            seq: u16::from_le_bytes([frame[1], frame[2]]),
            len: u16::from_le_bytes([frame[3], frame[4]]),
            dst: frame[5],
            pad: frame[6],
        })
    }
}

/// The honest red component.
#[derive(Debug, Clone)]
pub struct RedComponent {
    dst: u8,
    next_seq: u16,
    /// Host frames packetized.
    pub packets: u64,
}

impl RedComponent {
    /// A red component addressing destination `dst`.
    pub fn new(dst: u8) -> RedComponent {
        RedComponent {
            dst,
            next_seq: 0,
            packets: 0,
        }
    }
}

impl Component for RedComponent {
    fn name(&self) -> &str {
        "red"
    }

    fn step(&mut self, io: &mut dyn ComponentIo) {
        while let Some(data) = io.recv("host.in") {
            let seq = self.next_seq;
            self.next_seq = self.next_seq.wrapping_add(1);
            let header = Header {
                seq,
                len: data.len().min(u16::MAX as usize) as u16,
                dst: self.dst,
                pad: 0,
            };
            io.send("bypass.out", &header.encode());
            let mut payload = seq.to_le_bytes().to_vec();
            payload.extend(&data);
            io.send("crypto.out", &payload);
            self.packets += 1;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Component> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::component::TestIo;

    #[test]
    fn header_roundtrip() {
        let h = Header {
            seq: 0x1234,
            len: 99,
            dst: 2,
            pad: 0,
        };
        assert_eq!(Header::decode(&h.encode()), Some(h));
        assert_eq!(Header::decode(&[0; HEADER_LEN]), None);
        assert_eq!(Header::decode(&[HEADER_MAGIC, 0]), None);
    }

    #[test]
    fn red_splits_header_and_payload() {
        let mut red = RedComponent::new(1);
        let mut io = TestIo::new();
        io.push("host.in", b"hello net");
        io.run(&mut red, 1);
        let headers = io.take_sent("bypass.out");
        let payloads = io.take_sent("crypto.out");
        assert_eq!(headers.len(), 1);
        assert_eq!(payloads.len(), 1);
        let h = Header::decode(&headers[0]).unwrap();
        assert_eq!(h.seq, 0);
        assert_eq!(h.len, 9);
        assert_eq!(h.dst, 1);
        assert_eq!(h.pad, 0, "honest red pads with zero");
        assert_eq!(&payloads[0][..2], &0u16.to_le_bytes());
        assert_eq!(&payloads[0][2..], b"hello net");
    }

    #[test]
    fn sequence_numbers_advance() {
        let mut red = RedComponent::new(0);
        let mut io = TestIo::new();
        io.push("host.in", b"a");
        io.push("host.in", b"b");
        io.run(&mut red, 1);
        let headers = io.take_sent("bypass.out");
        assert_eq!(Header::decode(&headers[0]).unwrap().seq, 0);
        assert_eq!(Header::decode(&headers[1]).unwrap().seq, 1);
        assert_eq!(red.packets, 2);
    }

    #[test]
    fn user_data_never_crosses_the_bypass() {
        let mut red = RedComponent::new(1);
        let mut io = TestIo::new();
        let secret = b"SECRET PAYLOAD CONTENT";
        io.push("host.in", secret);
        io.run(&mut red, 1);
        for frame in io.sent("bypass.out") {
            assert!(!frame.windows(6).any(|w| secret.windows(6).any(|s| s == w)));
        }
    }
}

//! The trusted components of the distributed secure-system design.
//!
//! > "I contend that the security properties required of these and other
//! > critical services can best be studied if they, too, are isolated as
//! > separate, specialised components within a distributed system."
//!
//! Every component here implements the substrate-independent
//! [`component::Component`] interface and therefore runs unchanged:
//!
//! * as a [`sep_distributed::Node`] on the physically distributed network
//!   (the design level, where its security properties are stated), and
//! * as a [`sep_kernel::NativeRegime`] on the separation kernel (the shared
//!   implementation, which must be indistinguishable — experiment E6).
//!
//! The components:
//!
//! * [`fileserver`] — the multilevel secure file-server of §2, enforcing
//!   Bell–LaPadula per request, with the printer-server's *special service*
//!   (spool deletion across levels) as a first-class, precisely specified
//!   interface rather than a trusted-process dispensation;
//! * [`printserver`] — the secure printing service: banner pages carrying
//!   the classification, no cross-job bleed, spool cleanup via the special
//!   service;
//! * [`auth`] — the authentication mechanism informing the servers of user
//!   clearances;
//! * [`guard`] — the ACCAT Guard of §1: LOW→HIGH unhindered, HIGH→LOW only
//!   past the Security Watch Officer;
//! * [`snfe`] — the secure network front end of §2: red and black
//!   components, the crypto, and the **censor** on the cleartext bypass,
//!   plus a malicious red variant for the covert-channel experiments.

#![forbid(unsafe_code)]

pub mod auth;
pub mod component;
pub mod fileserver;
pub mod guard;
pub mod printserver;
pub mod proto;
pub mod snfe;
pub mod util;

pub use component::{Component, ComponentIo, NodeAdapter, PortBinding, RegimeComponent};
pub use fileserver::{FileServer, FsClient};
pub use guard::{Guard, WatchOfficer};
pub use printserver::PrintServer;

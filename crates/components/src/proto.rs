//! Wire protocol helpers: hand-rolled, explicit framing.
//!
//! Every inter-component message is a flat byte frame. Fields are written
//! and read through [`MsgWriter`]/[`MsgReader`]: fixed-width integers are
//! little-endian; byte strings are length-prefixed (u16). Nothing clever —
//! the censor's job of *checking* these frames must stay easy.

/// Builds a message frame.
#[derive(Debug, Default)]
pub struct MsgWriter {
    buf: Vec<u8>,
}

impl MsgWriter {
    /// An empty frame.
    pub fn new() -> MsgWriter {
        MsgWriter::default()
    }

    /// A frame starting with an opcode byte.
    pub fn with_op(op: u8) -> MsgWriter {
        let mut w = MsgWriter::new();
        w.u8(op);
        w
    }

    /// Appends a byte.
    pub fn u8(&mut self, v: u8) -> &mut Self {
        self.buf.push(v);
        self
    }

    /// Appends a little-endian u16.
    pub fn u16(&mut self, v: u16) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a little-endian u32.
    pub fn u32(&mut self, v: u32) -> &mut Self {
        self.buf.extend_from_slice(&v.to_le_bytes());
        self
    }

    /// Appends a length-prefixed byte string (≤ 65535 bytes).
    ///
    /// # Panics
    ///
    /// Panics when the slice exceeds 65535 bytes.
    pub fn bytes(&mut self, v: &[u8]) -> &mut Self {
        assert!(v.len() <= u16::MAX as usize, "field too long");
        self.u16(v.len() as u16);
        self.buf.extend_from_slice(v);
        self
    }

    /// Appends a length-prefixed UTF-8 string.
    pub fn str(&mut self, v: &str) -> &mut Self {
        self.bytes(v.as_bytes())
    }

    /// Finishes the frame.
    pub fn finish(self) -> Vec<u8> {
        self.buf
    }
}

/// Parses a message frame.
#[derive(Debug)]
pub struct MsgReader<'a> {
    buf: &'a [u8],
    pos: usize,
}

/// A malformed frame.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Malformed;

impl core::fmt::Display for Malformed {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        f.write_str("malformed frame")
    }
}

impl std::error::Error for Malformed {}

impl<'a> MsgReader<'a> {
    /// Wraps a frame.
    pub fn new(buf: &'a [u8]) -> MsgReader<'a> {
        MsgReader { buf, pos: 0 }
    }

    /// Reads a byte.
    pub fn u8(&mut self) -> Result<u8, Malformed> {
        let v = *self.buf.get(self.pos).ok_or(Malformed)?;
        self.pos += 1;
        Ok(v)
    }

    /// Reads a little-endian u16.
    pub fn u16(&mut self) -> Result<u16, Malformed> {
        let bytes = self.buf.get(self.pos..self.pos + 2).ok_or(Malformed)?;
        self.pos += 2;
        Ok(u16::from_le_bytes([bytes[0], bytes[1]]))
    }

    /// Reads a little-endian u32.
    pub fn u32(&mut self) -> Result<u32, Malformed> {
        let bytes = self.buf.get(self.pos..self.pos + 4).ok_or(Malformed)?;
        self.pos += 4;
        Ok(u32::from_le_bytes([bytes[0], bytes[1], bytes[2], bytes[3]]))
    }

    /// Reads a length-prefixed byte string.
    pub fn bytes(&mut self) -> Result<&'a [u8], Malformed> {
        let len = self.u16()? as usize;
        let v = self.buf.get(self.pos..self.pos + len).ok_or(Malformed)?;
        self.pos += len;
        Ok(v)
    }

    /// Reads a length-prefixed UTF-8 string.
    pub fn str(&mut self) -> Result<&'a str, Malformed> {
        core::str::from_utf8(self.bytes()?).map_err(|_| Malformed)
    }

    /// Requires that the frame is fully consumed.
    pub fn finish(self) -> Result<(), Malformed> {
        if self.pos == self.buf.len() {
            Ok(())
        } else {
            Err(Malformed)
        }
    }

    /// Bytes remaining.
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }
}

/// Response status codes shared by the servers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Status {
    /// Success.
    Ok,
    /// Refused by the component's security policy.
    Denied,
    /// No such object/user.
    NotFound,
    /// Malformed request.
    Bad,
    /// Resource exhausted.
    Full,
}

impl Status {
    /// Wire encoding.
    pub fn code(self) -> u8 {
        match self {
            Status::Ok => 0,
            Status::Denied => 1,
            Status::NotFound => 2,
            Status::Bad => 3,
            Status::Full => 4,
        }
    }

    /// Decodes a status byte.
    pub fn from_code(c: u8) -> Option<Status> {
        Some(match c {
            0 => Status::Ok,
            1 => Status::Denied,
            2 => Status::NotFound,
            3 => Status::Bad,
            4 => Status::Full,
            _ => return None,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writer_reader_roundtrip() {
        let mut w = MsgWriter::with_op(7);
        w.u16(0x1234).u32(0xDEADBEEF).str("hello").bytes(&[1, 2, 3]);
        let frame = w.finish();
        let mut r = MsgReader::new(&frame);
        assert_eq!(r.u8().unwrap(), 7);
        assert_eq!(r.u16().unwrap(), 0x1234);
        assert_eq!(r.u32().unwrap(), 0xDEADBEEF);
        assert_eq!(r.str().unwrap(), "hello");
        assert_eq!(r.bytes().unwrap(), &[1, 2, 3]);
        r.finish().unwrap();
    }

    #[test]
    fn truncated_frames_are_malformed() {
        let mut w = MsgWriter::new();
        w.str("hello");
        let mut frame = w.finish();
        frame.pop();
        let mut r = MsgReader::new(&frame);
        assert_eq!(r.str(), Err(Malformed));
    }

    #[test]
    fn trailing_bytes_are_malformed() {
        let frame = vec![1, 2, 3];
        let mut r = MsgReader::new(&frame);
        let _ = r.u8();
        assert_eq!(r.finish(), Err(Malformed));
    }

    #[test]
    fn invalid_utf8_is_malformed() {
        let mut w = MsgWriter::new();
        w.bytes(&[0xFF, 0xFE]);
        let frame = w.finish();
        let mut r = MsgReader::new(&frame);
        assert_eq!(r.str(), Err(Malformed));
    }

    #[test]
    fn status_codes_roundtrip() {
        for s in [
            Status::Ok,
            Status::Denied,
            Status::NotFound,
            Status::Bad,
            Status::Full,
        ] {
            assert_eq!(Status::from_code(s.code()), Some(s));
        }
        assert_eq!(Status::from_code(99), None);
    }
}

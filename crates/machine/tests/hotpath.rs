//! Differential suite for the fast-path execution engine.
//!
//! The decode cache and software TLB memoize pure functions, and `step_n`
//! batches bookkeeping; none of it may be architecturally visible. Every
//! test here runs the same workload with the caches on and off (or batched
//! and unbatched) and pins the results identical — final CPU state, memory,
//! step/instruction counters, observability metrics and trace. The TLB edge
//! cases target exactly the places a stale or over-broad entry would show:
//! PDR length boundaries, a write-protect flip mid-run, kernel/user segment
//! aliasing, and I/O-page segments whose *contents* must never be cached.

use sep_machine::dev::serial::SerialLine;
use sep_machine::mmu::{AbortReason, Access, SegmentDescriptor};
use sep_machine::psw::Mode;
use sep_machine::{assemble, Event, Machine, Trap};
use sep_obs::{Recorder, RunReport};

/// Loads a program at physical/virtual 0 (MMU disabled), tracing enabled.
fn machine_with(source: &str) -> Machine {
    let prog = assemble(source).expect("assembly failed");
    let mut m = Machine::new();
    m.obs = Recorder::with_trace(256);
    m.mem.load_words(0, &prog.words);
    m.cpu.pc = prog.origin;
    m.cpu.set_reg(6, 0o10000);
    m
}

/// Everything two runs of the same program could disagree on: final event,
/// registers, PSW, counters, a memory window, and the rendered
/// observability report (which excludes the hot-path counters by design —
/// so it must match across cache settings).
fn observable(m: &mut Machine, event: Event) -> (Event, String, u64, u64, Vec<u16>, String) {
    let trace = m.obs.disable_tracing();
    let report = RunReport::new("hotpath_machine")
        .run_with_trace("machine", &m.obs.metrics, trace.as_ref(), 32)
        .render();
    let regs: Vec<u16> = (0..8).map(|r| m.cpu.reg(r)).collect();
    (
        event,
        format!("{:?} {:o}", regs, m.cpu.psw.cc_bits()),
        m.steps,
        m.instructions,
        m.mem.dump_words(0, 64),
        report,
    )
}

const WORKLOADS: [&str; 4] = [
    // Tight register loop: maximal decode-cache reuse.
    "
        CLR R0
        MOV #100, R1
loop:   ADD R1, R0
        SOB R1, loop
        HALT
",
    // Memory traffic through autoincrement: TLB on every access.
    "
        MOV #src, R1
        MOV #dst, R2
        MOV #4, R3
loop:   MOV (R1)+, (R2)+
        SOB R3, loop
        HALT
src:    .word 0o111, 0o222, 0o333, 0o444
dst:    .blkw 4
",
    // Subroutines and the stack.
    "
        MOV #5, R0
        JSR PC, double
        JSR PC, double
        JSR PC, double
        HALT
double: ADD R0, R0
        RTS PC
",
    // Byte operations, sign extension, condition codes.
    "
        MOVB #-1, R0
        MOVB #65, R1
        CMP R0, R1
        BLT less
        MOV #0, R5
        HALT
less:   MOV #1, R5
        HALT
",
];

#[test]
fn caches_on_and_off_execute_identically() {
    for (i, src) in WORKLOADS.iter().enumerate() {
        let mut fast = machine_with(src);
        assert!(fast.hotpath(), "hotpath is the default");
        let ev_fast = fast.run_until_event(10_000).expect("fast run halts").0;

        let mut slow = machine_with(src);
        slow.set_hotpath(false);
        let ev_slow = slow.run_until_event(10_000).expect("slow run halts").0;

        assert_eq!(
            observable(&mut fast, ev_fast),
            observable(&mut slow, ev_slow),
            "workload {i}: caches changed the architecture"
        );
        if src.contains("loop:") {
            assert!(
                fast.obs.metrics.hotpath.icache_hits > 0,
                "workload {i}: the fast run never hit its decode cache"
            );
        }
        assert_eq!(
            slow.obs.metrics.hotpath.icache_hits + slow.obs.metrics.hotpath.tlb_hits,
            0,
            "workload {i}: the slow run consulted a cache"
        );
    }
}

#[test]
fn step_n_matches_step_loop() {
    for (i, src) in WORKLOADS.iter().enumerate() {
        let mut stepped = machine_with(src);
        let ev_stepped = stepped
            .run_until_event(10_000)
            .expect("stepped run halts")
            .0;

        // Drive the batched engine in awkward batch sizes; the final
        // non-Ran event cuts a batch short.
        let mut batched = machine_with(src);
        let ev_batched = loop {
            let (taken, outcome) = batched.step_n(7);
            assert!(taken <= 7);
            if let Some(ev) = outcome {
                break ev;
            }
            assert_eq!(taken, 7, "a full batch reports all steps taken");
        };

        assert_eq!(
            observable(&mut stepped, ev_stepped),
            observable(&mut batched, ev_batched),
            "workload {i}: step_n diverged from the step loop"
        );
    }
}

#[test]
fn step_n_with_devices_falls_back_to_per_step_semantics() {
    // Device time must advance step by step; step_n with a device attached
    // is exactly a step loop, including the transmitted output.
    let src = "
        MOV #0o177564, R4
        MOV #msg, R1
        MOV #2, R2
next:   BIT #0o200, (R4)
        BEQ next
        MOVB (R1)+, 2(R4)
        SOB R2, next
        HALT
msg:    .ascii \"OK\"
";
    let run = |batched: bool| {
        let mut m = machine_with(src);
        let tty = m
            .devices
            .attach(Box::new(SerialLine::new("tty", 0o777560, 0o60, 4)));
        let ev = if batched {
            loop {
                let (_, outcome) = m.step_n(5);
                if let Some(ev) = outcome {
                    break ev;
                }
            }
        } else {
            m.run_until_event(10_000).expect("run halts").0
        };
        let out = m
            .devices
            .downcast_mut::<SerialLine>(tty)
            .unwrap()
            .host_take_output();
        let obs = observable(&mut m, ev);
        (obs, out)
    };
    assert_eq!(run(false), run(true));
}

// ---------------------------------------------------------------------------
// Machine::clone regression: a clone must behave like a fresh boot.
// ---------------------------------------------------------------------------

/// A user-mode program under the MMU, as `FaultPolicy::Restart` re-imaging
/// sees it: boot template cloned, run, cloned again mid-flight.
fn mapped_machine() -> Machine {
    let prog = assemble(
        "
start:  INC counter
        BIC #0o177774, counter
        MOV counter, R1
        BR start
counter: .word 0
",
    )
    .unwrap();
    let mut m = Machine::new();
    m.obs = Recorder::with_trace(256);
    m.mem.load_words(0o40000, &prog.words);
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
    );
    m.cpu.psw.set_mode(Mode::User);
    m.cpu.pc = 0;
    m.cpu.set_reg(6, 0o17776);
    m
}

#[test]
fn cloned_machine_trace_is_byte_identical_to_fresh_boot() {
    // Warm run: caches hot after 50 steps.
    let mut warm = mapped_machine();
    for _ in 0..50 {
        assert_eq!(warm.step(), Event::Ran);
    }
    assert!(warm.obs.metrics.hotpath.tlb_hits > 0, "caches are warm");

    // Clone the warm machine (caches reset by Clone) and a cold control
    // that replays the same 50 steps from the template without ever
    // warming anything (hotpath off).
    let mut cloned = warm.clone();
    let mut cold = mapped_machine();
    cold.set_hotpath(false);
    for _ in 0..50 {
        assert_eq!(cold.step(), Event::Ran);
    }

    // The modelled state agrees at the fork point...
    assert_eq!(cloned.cpu, cold.cpu);
    assert_eq!(cloned.mmu, cold.mmu);
    assert_eq!(
        cloned.mem.dump_words(0o40000, 32),
        cold.mem.dump_words(0o40000, 32)
    );

    // ...and stays in lockstep for the rest of the run: the clone must not
    // remember (or miss) anything the fresh boot would not.
    for step in 0..200 {
        assert_eq!(cloned.step(), cold.step(), "step {step} after the clone");
    }
    let a = observable(&mut cloned, Event::Ran);
    let b = observable(&mut cold, Event::Ran);
    assert_eq!(a, b, "clone diverged from fresh boot");
}

#[test]
fn clone_then_reimage_matches_a_never_run_template() {
    // The restart pattern from sep-kernel: keep a boot template, run a
    // working copy until it faults, then re-image from the template. The
    // re-imaged copy must replay the template's exact trace even though the
    // working copy left hot caches behind on the donor machine.
    let template = mapped_machine();
    let mut working = template.clone();
    for _ in 0..137 {
        working.step();
    }
    let mut reimaged = template.clone();
    let mut pristine = mapped_machine();
    for step in 0..300 {
        assert_eq!(reimaged.step(), pristine.step(), "step {step}");
        assert_eq!(reimaged.cpu, pristine.cpu, "step {step}");
    }
}

// ---------------------------------------------------------------------------
// TLB edge cases.
// ---------------------------------------------------------------------------

/// A machine in user mode with segment 0 mapped RW to 0o40000, ready for
/// hand-driven virtual accesses.
fn tlb_harness(len: u32) -> Machine {
    let mut m = Machine::new();
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, len, Access::ReadWrite),
    );
    m.cpu.psw.set_mode(Mode::User);
    m
}

#[test]
fn tlb_honours_pdr_length_boundary() {
    // A short segment: 0o1000 bytes. Warm the TLB with in-bounds accesses,
    // then probe the boundary — a careless TLB would honour the cached
    // base for any offset in the segment.
    let len = 0o1000;
    let mut m = tlb_harness(len);
    let last = (len - 2) as u16;

    m.write_word_v(last, 0o1234)
        .expect("last word is in bounds");
    assert_eq!(m.read_word_v(last).unwrap(), 0o1234);
    assert!(m.obs.metrics.hotpath.tlb_hits > 0, "TLB warmed");

    // One word past the boundary: must abort even on a warm TLB.
    for vaddr in [len as u16, (len + 2) as u16] {
        match m.read_word_v(vaddr) {
            Err(Trap::Mmu(abort)) => {
                assert_eq!(
                    abort.reason,
                    AbortReason::LengthViolation,
                    "vaddr {vaddr:o}"
                );
            }
            other => panic!("expected length violation at {vaddr:o}, got {other:?}"),
        }
    }
    // One byte under the boundary is still fine (byte access at len-1).
    assert!(m.read_byte_v((len - 1) as u16).is_ok());
    assert!(m.read_byte_v(len as u16).is_err());

    // Differential: the same probes with the caches off agree.
    let mut slow = tlb_harness(len);
    slow.set_hotpath(false);
    slow.write_word_v(last, 0o1234).unwrap();
    assert_eq!(slow.read_word_v(last).unwrap(), 0o1234);
    assert!(matches!(
        slow.read_word_v(len as u16),
        Err(Trap::Mmu(a)) if a.reason == AbortReason::LengthViolation
    ));
}

#[test]
fn write_protect_flip_mid_run_invalidates_the_tlb() {
    let mut m = tlb_harness(0o20000);
    // Warm the TLB with a *write* (caches the writable bit).
    m.write_word_v(0o100, 0o42).unwrap();
    assert_eq!(m.read_word_v(0o100).unwrap(), 0o42);

    // Flip the segment read-only: the PDR load bumps the generation, so
    // the cached writable entry must not survive.
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadOnly),
    );
    match m.write_word_v(0o100, 0o43) {
        Err(Trap::Mmu(abort)) => assert_eq!(abort.reason, AbortReason::ReadOnlyViolation),
        other => panic!("stale TLB honoured a write to a read-only segment: {other:?}"),
    }
    // Reads still work, and the memory still holds the pre-flip value.
    assert_eq!(m.read_word_v(0o100).unwrap(), 0o42);

    // Flip back: writes work again.
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
    );
    m.write_word_v(0o100, 0o44).unwrap();
    assert_eq!(m.read_word_v(0o100).unwrap(), 0o44);
    assert!(
        m.obs.metrics.hotpath.tlb_invalidations >= 2,
        "each descriptor flip must invalidate: {:?}",
        m.obs.metrics.hotpath
    );
}

#[test]
fn kernel_and_user_modes_do_not_share_tlb_entries() {
    // The same virtual address maps to different frames in the two modes.
    let mut m = Machine::new();
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::Kernel,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
    );
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o60000, 0o20000, Access::ReadWrite),
    );
    m.mem.write_word(0o40100, 0o1111);
    m.mem.write_word(0o60100, 0o2222);

    // Interleave the modes: each lookup must land in its own frame even
    // with the other mode's entry warm in the TLB.
    for round in 0..3 {
        m.cpu.psw.set_mode(Mode::Kernel);
        assert_eq!(m.read_word_v(0o100).unwrap(), 0o1111, "round {round}");
        m.cpu.psw.set_mode(Mode::User);
        assert_eq!(m.read_word_v(0o100).unwrap(), 0o2222, "round {round}");
    }
    // User writes stay in the user frame.
    m.write_word_v(0o102, 0o3333).unwrap();
    assert_eq!(m.mem.read_word(0o60102), 0o3333);
    assert_eq!(m.mem.read_word(0o40102), 0);
}

#[test]
fn io_page_segment_reads_the_device_not_a_cached_value() {
    // Map user segment 0 straight onto the I/O page. The TLB may cache the
    // *translation*, but every access must still reach the device: a TLB
    // hit on an I/O address that returned stale register contents would be
    // invisible to most programs and fatal to all of them.
    const IO_BASE: u32 = (1 << 18) - 8 * 1024;
    let mut m = Machine::new();
    m.devices
        .attach(Box::new(SerialLine::new("tty", 0o777560, 0o60, 4)));
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(IO_BASE, 0o20000, Access::ReadWrite),
    );
    m.cpu.psw.set_mode(Mode::User);

    // RCSR sits at physical 0o777560 → virtual offset 0o17560.
    let rcsr = 0o17560;
    let quiet = m.read_word_v(rcsr).unwrap();
    assert_eq!(quiet & 0o200, 0, "no input pending yet");
    // Now the host sends a byte; the device state changes under a warm TLB
    // entry, and the next read must see it.
    m.devices
        .downcast_mut::<SerialLine>(0)
        .unwrap()
        .host_send(b"x");
    m.devices.tick_all();
    let ready = m.read_word_v(rcsr).unwrap();
    assert_ne!(quiet, ready, "TLB hit returned a stale device register");
    assert_ne!(ready & 0o200, 0, "RX done bit visible through the mapping");
    assert!(m.obs.metrics.hotpath.tlb_hits > 0, "the path was cached");
}

// ---------------------------------------------------------------------------
// Superblock tier: the compiled-trace layer above the decode cache. Every
// test pins the tier byte-identical to the slow path; several then assert
// the tier actually engaged, so the equality means something.
// ---------------------------------------------------------------------------

/// Drives the batched engine to the run's terminal event.
fn run_batched(m: &mut Machine, batch: u64) -> Event {
    loop {
        let (taken, outcome) = m.step_n(batch);
        assert!(taken <= batch);
        if let Some(ev) = outcome {
            return ev;
        }
        assert_eq!(taken, batch, "a full batch reports all steps taken");
    }
}

/// A user-mode machine under the MMU with segment 0 mapped to 0o40000 at
/// the given length, running `src` from virtual 0.
fn mapped_with(src: &str, len: u32) -> Machine {
    let prog = assemble(src).expect("assembly failed");
    let mut m = Machine::new();
    m.obs = Recorder::with_trace(256);
    m.mem.load_words(0o40000, &prog.words);
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, len, Access::ReadWrite),
    );
    m.cpu.psw.set_mode(Mode::User);
    m.cpu.pc = prog.origin;
    m.cpu.set_reg(6, 0o17776);
    m
}

#[test]
fn superblock_tier_executes_workloads_identically() {
    // Three-way sweep: slow step loop, decode-cache-only step_n, and the
    // full tier, in awkward batch sizes so blocks straddle batch edges.
    for (i, src) in WORKLOADS.iter().enumerate() {
        let mut slow = machine_with(src);
        slow.set_hotpath(false);
        let ev_slow = slow.run_until_event(10_000).expect("slow run halts").0;

        let mut decode = machine_with(src);
        decode.set_superblocks(false);
        let ev_decode = run_batched(&mut decode, 7);

        let mut tier = machine_with(src);
        assert!(tier.superblocks(), "the tier is the default");
        let ev_tier = run_batched(&mut tier, 7);

        assert_eq!(
            decode.obs.metrics.hotpath.sb_hits + decode.obs.metrics.hotpath.sb_compiles,
            0,
            "workload {i}: superblocks ran with the tier off"
        );
        let tier_obs = observable(&mut tier, ev_tier);
        assert_eq!(
            tier_obs,
            observable(&mut slow, ev_slow),
            "workload {i}: the tier changed the architecture"
        );
        assert_eq!(
            tier_obs,
            observable(&mut decode, ev_decode),
            "workload {i}: the tier diverged from the decode path"
        );
    }
    // The tight register loop runs 100 iterations: the tier must engage.
    let mut hot = machine_with(WORKLOADS[0]);
    run_batched(&mut hot, 1000);
    let hp = &hot.obs.metrics.hotpath;
    assert!(hp.sb_compiles >= 1, "hot loop never compiled: {hp:?}");
    assert!(hp.sb_hits > 0 && hp.sb_instructions > 0, "{hp:?}");
}

#[test]
fn interior_mmu_fault_side_exits_with_exact_state() {
    // A compiled block whose generic interior walks a pointer across the
    // PDR length boundary: the fault must side-exit mid-block with the
    // same registers, counters, and trap as the slow path — including the
    // partially executed block's retired instructions.
    let src = "
start:  MOV #0o400, R1
        MOV #0o300, R3
loop:   ADD #1, R4
        MOV (R1)+, R2
        SOB R3, loop
        HALT
";
    let mut slow = mapped_with(src, 0o1000);
    slow.set_hotpath(false);
    let ev_slow = slow.run_until_event(10_000).expect("slow run traps").0;
    assert!(
        matches!(ev_slow, Event::Trap(Trap::Mmu(a)) if a.reason == AbortReason::LengthViolation),
        "workload must die on the segment boundary: {ev_slow:?}"
    );

    let mut tier = mapped_with(src, 0o1000);
    let ev_tier = run_batched(&mut tier, 97);
    let hp = tier.obs.metrics.hotpath.clone();
    assert!(hp.sb_hits > 0, "the faulting loop never ran in the tier");
    assert_eq!(
        observable(&mut tier, ev_tier),
        observable(&mut slow, ev_slow),
        "interior MMU fault diverged from the slow path"
    );
}

#[test]
fn interior_odd_address_side_exits_with_exact_state() {
    // Warm a block through SOB, then re-enter it with an odd pointer: the
    // generic interior's side exit must match the slow path exactly.
    let src = "
        MOV #src, R1
        MOV #0o20, R3
warm:   ADD #1, R4
        MOV (R1), R2
        SOB R3, warm
        ADD #1, R1
        MOV #4, R3
        BR warm
src:    .word 0o123
";
    let mut slow = machine_with(src);
    slow.set_hotpath(false);
    let ev_slow = slow.run_until_event(10_000).expect("slow run traps").0;
    assert!(
        matches!(ev_slow, Event::Trap(Trap::OddAddress { .. })),
        "workload must die on the odd pointer: {ev_slow:?}"
    );

    let mut tier = machine_with(src);
    let ev_tier = run_batched(&mut tier, 23);
    assert!(tier.obs.metrics.hotpath.sb_hits > 0);
    assert_eq!(
        observable(&mut tier, ev_tier),
        observable(&mut slow, ev_slow),
        "odd-address side exit diverged from the slow path"
    );
}

#[test]
fn interior_device_touch_side_exits_with_exact_state() {
    // Re-enter a hot block with the pointer aimed at the I/O window on a
    // deviceless machine: the bus error must fall back mid-block.
    let src = "
        MOV #src, R1
        MOV #0o20, R3
warm:   ADD #1, R4
        MOV (R1), R2
        SOB R3, warm
        MOV #0o177560, R1
        MOV #4, R3
        BR warm
src:    .word 0o123
";
    let mut slow = machine_with(src);
    slow.set_hotpath(false);
    let ev_slow = slow.run_until_event(10_000).expect("slow run traps").0;
    assert!(
        matches!(ev_slow, Event::Trap(Trap::BusError { .. })),
        "workload must die on the empty I/O page: {ev_slow:?}"
    );

    let mut tier = machine_with(src);
    let ev_tier = run_batched(&mut tier, 31);
    assert!(tier.obs.metrics.hotpath.sb_hits > 0);
    assert_eq!(
        observable(&mut tier, ev_tier),
        observable(&mut slow, ev_slow),
        "device-touch side exit diverged from the slow path"
    );
}

#[test]
fn pdr_boundary_bisects_a_compiled_block() {
    // The straight-line tail after the hot loop runs to the end of a short
    // segment: compilation clips the block at the PDR limit, execution
    // falls through, and the next fetch traps exactly like the slow path.
    // Pad the tail with INCs so the program fills the 64-byte segment
    // exactly: the last INC sits on the final word, and the fetch after it
    // crosses the PDR limit.
    let src = format!(
        "
start:  MOV #0o20, R3
loop:   ADD #1, R4
        SOB R3, loop
{}",
        "        INC R4\n".repeat(27)
    );
    let src = src.as_str();
    let prog_bytes = 2 * assemble(src).unwrap().words.len() as u32;
    assert_eq!(prog_bytes, 64, "program must fill the segment exactly");
    let mut slow = mapped_with(src, prog_bytes);
    slow.set_hotpath(false);
    let ev_slow = slow.run_until_event(10_000).expect("slow run traps").0;
    assert!(
        matches!(ev_slow, Event::Trap(Trap::Mmu(a)) if a.reason == AbortReason::LengthViolation),
        "the run must fetch off the segment end: {ev_slow:?}"
    );

    let mut tier = mapped_with(src, prog_bytes);
    let ev_tier = run_batched(&mut tier, 13);
    let hp = tier.obs.metrics.hotpath.clone();
    assert!(
        hp.sb_compiles >= 2,
        "both the loop and the clipped tail should compile: {hp:?}"
    );
    assert_eq!(
        observable(&mut tier, ev_tier),
        observable(&mut slow, ev_slow),
        "the clipped block diverged from the slow path"
    );
}

#[test]
fn in_batch_code_store_trips_the_write_guard() {
    // The program overwrites its own hot loop with HALT through the
    // machine's store path mid-batch: the write guard must poison the
    // compiled block before the next tier entry.
    let src = "
        MOV #0o40, R3
loop:   ADD #1, R4
        SOB R3, loop
        MOV #0, loop
        BR loop
";
    let mut slow = machine_with(src);
    slow.set_hotpath(false);
    let ev_slow = slow.run_until_event(10_000).expect("slow run halts").0;
    assert_eq!(ev_slow, Event::Trap(Trap::Halt), "the store plants a HALT");

    let mut tier = machine_with(src);
    let ev_tier = run_batched(&mut tier, 1000);
    let hp = tier.obs.metrics.hotpath.clone();
    assert!(hp.sb_hits > 0, "the loop never ran compiled: {hp:?}");
    assert!(
        hp.sb_flushes >= 1,
        "the self-modifying store never flushed the cache: {hp:?}"
    );
    assert_eq!(
        observable(&mut tier, ev_tier),
        observable(&mut slow, ev_slow),
        "self-modifying code diverged from the slow path"
    );
}

#[test]
fn between_batch_code_poke_fails_validation_and_flushes() {
    // Host writes (re-imaging, DMA, debugger pokes) happen between batches
    // and bypass the write guard: the once-per-batch image check must
    // catch them. The slow twin gets the identical poke at the identical
    // retired-instruction count, so the final states must agree.
    let src = "
        MOV #0o17777, R3
loop:   ADD #1, R4
        SOB R3, loop
        HALT
";
    let loop_addr = 0o4; // MOV #imm is two words; `loop:` labels the third.
    let drive = |superblocks: bool| {
        let mut m = machine_with(src);
        m.set_superblocks(superblocks);
        for _ in 0..2 {
            let (taken, ev) = m.step_n(500);
            assert_eq!((taken, ev), (500, None));
        }
        m.mem.write_word(loop_addr, 0); // ADD #1, R4 becomes HALT
        let ev = run_batched(&mut m, 500);
        let obs = observable(&mut m, ev);
        (obs, m)
    };
    let (slow_obs, _) = drive(false);
    let (tier_obs, tier) = drive(true);
    assert_eq!(tier_obs.0, Event::Trap(Trap::Halt));
    assert_eq!(tier_obs, slow_obs, "the poked code diverged");
    let hp = &tier.obs.metrics.hotpath;
    assert!(hp.sb_hits > 0, "the loop never ran compiled: {hp:?}");
    assert!(
        hp.sb_flushes >= 1,
        "the stale image was never flushed: {hp:?}"
    );
}

/// A user-mode register loop under the MMU that the tier compiles — the
/// no-store counterpart of [`mapped_machine`], for cache-hygiene tests.
fn hot_user_machine() -> Machine {
    let prog = assemble(
        "
start:  INC R1
        BIC #0o177774, R1
        ADD R1, R2
        BR start
",
    )
    .unwrap();
    let mut m = Machine::new();
    m.obs = Recorder::with_trace(256);
    m.mem.load_words(0o40000, &prog.words);
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
    );
    m.cpu.psw.set_mode(Mode::User);
    m.cpu.pc = 0;
    m.cpu.set_reg(6, 0o17776);
    m
}

#[test]
fn clone_under_warm_superblock_cache_behaves_like_fresh_boot() {
    // Clone a machine whose superblock cache is hot; the clone must replay
    // a cold machine's exact trace — compiled state is never cloned.
    let mut warm = hot_user_machine();
    let (taken, ev) = warm.step_n(600);
    assert_eq!((taken, ev), (600, None));
    assert!(warm.obs.metrics.hotpath.sb_hits > 0, "cache is warm");

    let mut cloned = warm.clone();
    let mut cold = hot_user_machine();
    cold.set_hotpath(false);
    for _ in 0..600 {
        assert_eq!(cold.step(), Event::Ran);
    }
    assert_eq!(cloned.cpu, cold.cpu, "state differs at the fork point");

    // Continue in lockstep: batched (tier re-warms from scratch) against
    // the single-stepped slow control.
    let (taken, ev) = cloned.step_n(700);
    assert_eq!((taken, ev), (700, None));
    for _ in 0..700 {
        assert_eq!(cold.step(), Event::Ran);
    }
    assert_eq!(cloned.cpu, cold.cpu, "clone diverged after the fork");
    assert_eq!(
        cloned.mem.dump_words(0o40000, 32),
        cold.mem.dump_words(0o40000, 32)
    );
}

#[test]
fn reimage_from_template_discards_compiled_blocks() {
    // The kernel's restart pattern under a warm tier: run a working copy
    // hot, then re-image from the boot template. The re-imaged machine
    // must replay a pristine machine exactly.
    let template = hot_user_machine();
    let mut working = template.clone();
    let (taken, ev) = working.step_n(900);
    assert_eq!((taken, ev), (900, None));
    assert!(working.obs.metrics.hotpath.sb_hits > 0);

    let mut reimaged = template.clone();
    let mut pristine = hot_user_machine();
    let (taken, ev) = reimaged.step_n(800);
    assert_eq!((taken, ev), (800, None));
    let (taken, ev) = pristine.step_n(800);
    assert_eq!((taken, ev), (800, None));
    assert_eq!(reimaged.cpu, pristine.cpu, "re-image kept donor state");
}

#[test]
fn disabling_the_tier_drops_compiled_state_and_stops_engaging() {
    let mut m = hot_user_machine();
    m.step_n(500);
    assert!(m.obs.metrics.hotpath.sb_hits > 0, "tier engaged");

    // Tier off: compiled state is dropped and no sb counter moves again.
    m.set_superblocks(false);
    let before = m.obs.metrics.hotpath.clone();
    m.step_n(500);
    let after = &m.obs.metrics.hotpath;
    assert_eq!(
        (before.sb_hits, before.sb_compiles, before.sb_instructions),
        (after.sb_hits, after.sb_compiles, after.sb_instructions),
        "superblocks ran with the tier off"
    );

    // Tier back on: it re-heats and engages again from nothing.
    m.set_superblocks(true);
    m.step_n(500);
    assert!(
        m.obs.metrics.hotpath.sb_compiles > before.sb_compiles,
        "tier never recompiled after re-enable"
    );

    // `set_hotpath(false)` implies the tier is off too.
    let mut m2 = hot_user_machine();
    m2.step_n(500);
    m2.set_hotpath(false);
    let frozen = m2.obs.metrics.hotpath.clone();
    m2.step_n(500);
    assert_eq!(
        frozen.sb_hits, m2.obs.metrics.hotpath.sb_hits,
        "hotpath off must silence the tier"
    );
}

#[test]
fn event_boundary_accounting_is_exact_across_engines() {
    // `steps`, `instructions`, and the recorder's retired count must be
    // bit-exact across slow / decode / tier engines and across batch
    // sizes, including the batch the terminal event cuts short.
    for (i, src) in WORKLOADS.iter().enumerate() {
        let mut slow = machine_with(src);
        slow.set_hotpath(false);
        let ev_slow = slow.run_until_event(10_000).expect("slow run halts").0;
        let want = (
            ev_slow,
            slow.steps,
            slow.instructions,
            slow.obs.metrics.totals.instructions,
        );
        for batch in [1u64, 3, 7, 1000] {
            let mut decode = machine_with(src);
            decode.set_superblocks(false);
            let ev = run_batched(&mut decode, batch);
            assert_eq!(
                (
                    ev,
                    decode.steps,
                    decode.instructions,
                    decode.obs.metrics.totals.instructions,
                ),
                want,
                "workload {i}: decode path accounting drifted at batch {batch}"
            );

            let mut tier = machine_with(src);
            let ev = run_batched(&mut tier, batch);
            assert_eq!(
                (
                    ev,
                    tier.steps,
                    tier.instructions,
                    tier.obs.metrics.totals.instructions,
                ),
                want,
                "workload {i}: tier accounting drifted at batch {batch}"
            );
        }
    }
}

#[test]
fn mmu_disabled_compat_window_is_unaffected_by_hotpath() {
    // With the MMU off the TLB never engages; the 0o160000.. I/O window
    // must behave identically either way.
    for hot in [true, false] {
        let mut m = machine_with("MOV @#0o177560, R0\nHALT");
        m.set_hotpath(hot);
        // No device: bus error, same under both settings.
        assert!(matches!(
            m.run_until_event(100).unwrap().0,
            Event::Trap(Trap::BusError { .. })
        ));
        assert_eq!(m.obs.metrics.hotpath.tlb_hits, 0, "hot={hot}");
        assert_eq!(m.obs.metrics.hotpath.tlb_misses, 0, "hot={hot}");
    }
}

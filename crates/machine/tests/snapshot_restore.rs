//! Snapshot/restore roundtrips for every device: the verification adapters
//! in `sep-kernel` depend on `restore(snapshot(d))` reproducing `d`'s
//! model-visible state exactly.

use sep_machine::dev::clock::{LineClock, LKS_IE};
use sep_machine::dev::crypto::{CryptoUnit, CSR_GO_ENC};
use sep_machine::dev::dma::DmaDisk;
use sep_machine::dev::printer::LinePrinter;
use sep_machine::dev::serial::SerialLine;
use sep_machine::Device;

/// Restores into a fresh device and checks the snapshots agree.
fn roundtrip(original: &dyn Device, fresh: &mut dyn Device) {
    let snap = original.snapshot();
    fresh.restore(&snap);
    assert_eq!(fresh.snapshot(), snap, "{} roundtrip", original.name());
}

#[test]
fn serial_roundtrip_midstream() {
    let mut d = SerialLine::new("tty", 0o777560, 0o60, 4);
    d.host_send(b"queued bytes");
    d.write_reg(0, 0o100); // RX interrupts on
    d.write_reg(6, b'Z' as u16); // transmitter busy
    d.tick();
    let mut fresh = SerialLine::new("tty", 0o777560, 0o60, 4);
    roundtrip(&d, &mut fresh);
    // Behaviour continues identically after restore.
    d.tick();
    fresh.tick();
    assert_eq!(d.snapshot(), fresh.snapshot());
    assert_eq!(d.read_reg(0), fresh.read_reg(0));
}

#[test]
fn clock_roundtrip() {
    let mut d = LineClock::new(0o777546, 0o100, 5);
    d.write_reg(0, LKS_IE);
    for _ in 0..7 {
        d.tick();
    }
    let mut fresh = LineClock::new(0o777546, 0o100, 5);
    roundtrip(&d, &mut fresh);
    for _ in 0..3 {
        d.tick();
        fresh.tick();
    }
    assert_eq!(d.snapshot(), fresh.snapshot());
    assert_eq!(d.pending(), fresh.pending());
}

#[test]
fn printer_roundtrip_midprint() {
    let mut d = LinePrinter::new(0o777514, 0o200);
    d.write_reg(2, b'A' as u16);
    d.tick();
    let mut fresh = LinePrinter::new(0o777514, 0o200);
    roundtrip(&d, &mut fresh);
    for _ in 0..3 {
        d.tick();
        fresh.tick();
    }
    assert_eq!(d.snapshot(), fresh.snapshot());
    // The restored device finished printing the in-flight character.
    assert_eq!(fresh.printed(), b"A");
}

#[test]
fn crypto_roundtrip_midblock() {
    let mut d = CryptoUnit::new(0o777400, 0o300);
    d.host_load_key([1, 2, 3, 4, 5, 6, 7, 8]);
    d.write_reg(18, 0o1234);
    d.write_reg(0, CSR_GO_ENC);
    d.tick();
    let mut fresh = CryptoUnit::new(0o777400, 0o300);
    roundtrip(&d, &mut fresh);
    for _ in 0..3 {
        d.tick();
        fresh.tick();
    }
    assert_eq!(d.snapshot(), fresh.snapshot());
    assert_eq!(d.read_reg(26), fresh.read_reg(26));
}

#[test]
fn dma_roundtrip_with_storage() {
    let mut d = DmaDisk::new(0o777440, 0o220);
    d.host_fill_sector(3, b"persisted");
    d.write_reg(2, 0o4000);
    d.write_reg(6, 3);
    let mut fresh = DmaDisk::new(0o777440, 0o220);
    roundtrip(&d, &mut fresh);
    assert_eq!(&fresh.host_sector(3)[..9], b"persisted");
}

#[test]
fn restore_resets_host_trays() {
    let mut d = SerialLine::new("tty", 0o777560, 0o60, 4);
    d.write_reg(6, b'Q' as u16);
    for _ in 0..3 {
        d.tick();
    }
    assert_eq!(d.host_peek_output(), b"Q");
    let snap = d.snapshot();
    d.restore(&snap);
    assert!(d.host_peek_output().is_empty());
}

#[test]
#[should_panic(expected = "malformed")]
fn malformed_snapshot_panics() {
    let mut d = LineClock::new(0o777546, 0o100, 5);
    d.restore(&[1, 2]);
}

//! Gated behind the `ext-tests` feature: this suite needs the `proptest`
//! crate, which the offline tier-1 environment cannot download. Restore the
//! dev-dependency (see Cargo.toml) and run with `--features ext-tests`.
#![cfg(feature = "ext-tests")]

//! Property tests for the machine substrate: arithmetic flags against a
//! reference model, assembler data fidelity, and MMU bounds.

use proptest::prelude::*;
use sep_machine::mmu::{Access, Mmu, SegmentDescriptor};
use sep_machine::psw::Mode;
use sep_machine::{assemble, Event, Machine, Trap};

/// Builds a machine executing `ADD src, dst` (both immediate/register) and
/// returns (result, n, z, v, c).
fn run_binop(op: &str, a: u16, b: u16) -> (u16, bool, bool, bool, bool) {
    let src = format!(
        "
        MOV #{a}, R1
        MOV #{b}, R2
        {op} R1, R2
        HALT
"
    );
    let prog = assemble(&src).unwrap();
    let mut m = Machine::new();
    m.mem.load_words(0, &prog.words);
    m.cpu.set_reg(6, 0o10000);
    assert_eq!(m.run_until_event(100).unwrap().0, Event::Trap(Trap::Halt));
    let p = m.cpu.psw;
    (m.cpu.reg(2), p.n(), p.z(), p.v(), p.c())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn add_matches_reference(a in any::<u16>(), b in any::<u16>()) {
        let (r, n, z, v, c) = run_binop("ADD", a, b);
        let expected = b.wrapping_add(a);
        prop_assert_eq!(r, expected);
        prop_assert_eq!(n, (expected as i16) < 0);
        prop_assert_eq!(z, expected == 0);
        // Signed overflow: operands same sign, result different.
        let ov = ((a as i16) < 0) == ((b as i16) < 0)
            && ((expected as i16) < 0) != ((b as i16) < 0);
        prop_assert_eq!(v, ov);
        prop_assert_eq!(c, (a as u32 + b as u32) > 0xFFFF);
    }

    #[test]
    fn sub_matches_reference(a in any::<u16>(), b in any::<u16>()) {
        // SUB R1, R2: R2 = R2 - R1.
        let (r, n, z, _v, c) = run_binop("SUB", a, b);
        let expected = b.wrapping_sub(a);
        prop_assert_eq!(r, expected);
        prop_assert_eq!(n, (expected as i16) < 0);
        prop_assert_eq!(z, expected == 0);
        prop_assert_eq!(c, (b as u32) < (a as u32)); // borrow
    }

    #[test]
    fn cmp_sets_codes_without_writing(a in any::<u16>(), b in any::<u16>()) {
        let (r, n, z, _v, c) = run_binop("CMP", a, b);
        // CMP src,dst computes src - dst and leaves dst alone.
        prop_assert_eq!(r, b);
        let diff = a.wrapping_sub(b);
        prop_assert_eq!(n, (diff as i16) < 0);
        prop_assert_eq!(z, diff == 0);
        prop_assert_eq!(c, (a as u32) < (b as u32));
    }

    #[test]
    fn bitwise_ops_match(a in any::<u16>(), b in any::<u16>()) {
        let (r, ..) = run_binop("BIC", a, b);
        prop_assert_eq!(r, b & !a);
        let (r, ..) = run_binop("BIS", a, b);
        prop_assert_eq!(r, b | a);
    }

    #[test]
    fn word_directive_roundtrip(words in prop::collection::vec(any::<u16>(), 1..40)) {
        let body: Vec<String> = words.iter().map(|w| format!(".word {w}")).collect();
        let prog = assemble(&body.join("\n")).unwrap();
        prop_assert_eq!(&prog.words, &words);
    }

    #[test]
    fn byte_directive_roundtrip(bytes in prop::collection::vec(any::<u8>(), 2..40)) {
        let list: Vec<String> = bytes.iter().map(|b| b.to_string()).collect();
        let src = format!(".byte {}", list.join(", "));
        let prog = assemble(&src).unwrap();
        let mut out: Vec<u8> = prog.words.iter().flat_map(|w| w.to_le_bytes()).collect();
        out.truncate(bytes.len());
        prop_assert_eq!(out, bytes);
    }

    #[test]
    fn mmu_translation_stays_in_segment(
        seg_base in (0u32..0o700).prop_map(|b| b * 64),
        len_blocks in 1u32..=128,
        vaddr in any::<u16>(),
    ) {
        let mut mmu = Mmu::new();
        mmu.enabled = true;
        let len = len_blocks * 64;
        mmu.set_segment(Mode::User, 0, SegmentDescriptor::mapping(seg_base, len, Access::ReadWrite));
        match mmu.translate(vaddr, Mode::User, false) {
            Ok(p) => {
                // Only segment 0 is mapped; any successful translation must
                // land inside [base, base+len).
                prop_assert!(vaddr >> 13 == 0);
                prop_assert!(p >= seg_base && p < seg_base + len);
                prop_assert_eq!(p - seg_base, (vaddr & 0o17777) as u32);
            }
            Err(abort) => {
                let in_seg0 = vaddr >> 13 == 0;
                let off = (vaddr & 0o17777) as u32;
                prop_assert!(!in_seg0 || off >= len, "{abort:?}");
            }
        }
    }

    #[test]
    fn memory_word_byte_consistency(addr in (0u32..0o37776).prop_map(|a| a * 2), w in any::<u16>()) {
        let mut m = Machine::new();
        m.mem.write_word(addr, w);
        let [lo, hi] = w.to_le_bytes();
        prop_assert_eq!(m.mem.read_byte(addr), lo);
        prop_assert_eq!(m.mem.read_byte(addr + 1), hi);
    }

    #[test]
    fn swab_swaps(w in any::<u16>()) {
        let src = format!("MOV #{w}, R0\nSWAB R0\nHALT");
        let prog = assemble(&src).unwrap();
        let mut m = Machine::new();
        m.mem.load_words(0, &prog.words);
        m.cpu.set_reg(6, 0o10000);
        m.run_until_event(100).unwrap();
        prop_assert_eq!(m.cpu.reg(0), w.rotate_left(8));
    }

    #[test]
    fn decode_never_panics(w in any::<u16>()) {
        let _ = sep_machine::isa::decode(w);
    }

    /// Disassembling any word window and reassembling the text reproduces
    /// the original encoding exactly.
    #[test]
    fn disassembler_roundtrips(w in any::<u16>(), x1 in any::<u16>(), x2 in any::<u16>()) {
        use sep_machine::disasm::disassemble_at;
        let origin = 0o2000u16;
        let words = [w, x1, x2];
        let (listing, used) = disassemble_at(&words, 0, origin);
        let src = format!(".org {origin}
{}", listing.text);
        match assemble(&src) {
            Ok(prog) => {
                let skip = (origin / 2) as usize;
                prop_assert_eq!(&prog.words[skip..], &words[..used], "text: {}", listing.text);
            }
            Err(e) => {
                // The only legitimate reassembly failures are branch/SOB
                // targets that wrapped around the 16-bit space.
                prop_assert!(
                    e.message.contains("out of range") || e.message.contains("odd distance"),
                    "{}: {e}",
                    listing.text
                );
            }
        }
    }

    #[test]
    fn xtea_roundtrips(block in any::<[u32; 2]>(), key in any::<[u32; 4]>()) {
        use sep_machine::dev::crypto::{xtea_decrypt, xtea_encrypt};
        prop_assert_eq!(xtea_decrypt(xtea_encrypt(block, key), key), block);
    }
}

//! The full addressing-mode matrix: every mode as both source and
//! destination, including the PC forms and deferred chains.

use sep_machine::{assemble, Event, Machine, Trap};

fn run(src: &str) -> Machine {
    let prog = assemble(src).unwrap();
    let mut m = Machine::new();
    m.mem.load_words(0, &prog.words);
    m.cpu.set_reg(6, 0o10000);
    assert_eq!(
        m.run_until_event(10_000).unwrap().0,
        Event::Trap(Trap::Halt)
    );
    m
}

fn word_at(m: &Machine, src: &str, label: &str) -> u16 {
    let prog = assemble(src).unwrap();
    m.mem.read_word(prog.symbol(label).unwrap() as u32)
}

#[test]
fn mode0_register() {
    let m = run("MOV #7, R0\nMOV R0, R1\nHALT");
    assert_eq!(m.cpu.reg(1), 7);
}

#[test]
fn mode1_register_deferred() {
    let src = "
        MOV #cell, R1
        MOV #0o55, (R1)
        MOV (R1), R2
        HALT
cell:   .word 0
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o55);
    assert_eq!(word_at(&m, src, "cell"), 0o55);
}

#[test]
fn mode2_autoincrement() {
    let src = "
        MOV #data, R1
        MOV (R1)+, R2
        MOV (R1)+, R3
        HALT
data:   .word 0o10, 0o20
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o10);
    assert_eq!(m.cpu.reg(3), 0o20);
    // R1 advanced two words past `data`.
    let data = assemble(src).unwrap().symbol("data").unwrap();
    assert_eq!(m.cpu.reg(1), data + 4);
}

#[test]
fn mode3_autoincrement_deferred() {
    let src = "
        MOV #ptrs, R1
        MOV @(R1)+, R2      ; follows the pointer, then bumps R1
        MOV @(R1)+, R3
        HALT
ptrs:   .word cell1, cell2
cell1:  .word 0o111
cell2:  .word 0o222
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o111);
    assert_eq!(m.cpu.reg(3), 0o222);
}

#[test]
fn mode4_autodecrement_builds_a_stack() {
    let src = "
        MOV #end, R1
        MOV #0o66, -(R1)
        MOV #0o77, -(R1)
        HALT
buf:    .blkw 2
end:
";
    let m = run(src);
    let buf = assemble(src).unwrap().symbol("buf").unwrap() as u32;
    assert_eq!(m.mem.read_word(buf), 0o77);
    assert_eq!(m.mem.read_word(buf + 2), 0o66);
}

#[test]
fn mode5_autodecrement_deferred() {
    let src = "
        MOV #after, R1
        MOV @-(R1), R2      ; back up to the pointer, follow it
        HALT
ptr:    .word cell
after:  NOP
cell:   .word 0o345
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o345);
}

#[test]
fn mode6_indexed_both_directions() {
    let src = "
        MOV #table, R1
        MOV 2(R1), R2       ; read table[1]
        MOV #0o99septest, R0
        HALT
table:  .word 0o11, 0o22, 0o33
";
    // `0o99septest` is invalid — use a clean program instead.
    let src = src.replace("        MOV #0o99septest, R0\n", "        MOV R2, 4(R1)\n");
    let m = run(&src);
    assert_eq!(m.cpu.reg(2), 0o22);
    let table = assemble(&src).unwrap().symbol("table").unwrap() as u32;
    assert_eq!(m.mem.read_word(table + 4), 0o22);
}

#[test]
fn mode7_index_deferred() {
    let src = "
        MOV #ptrs, R1
        MOV @2(R1), R2      ; follow ptrs[1]
        HALT
ptrs:   .word cell1, cell2
cell1:  .word 0o401
cell2:  .word 0o402
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o402);
}

#[test]
fn pc_relative_deferred() {
    let src = "
        MOV @ptr, R2        ; relative deferred through `ptr`
        HALT
ptr:    .word cell
cell:   .word 0o640
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o640);
}

#[test]
fn byte_autoincrement_steps_by_one() {
    let src = "
        MOV #bytes, R1
        MOVB (R1)+, R2
        MOVB (R1)+, R3
        HALT
bytes:  .byte 0o15, 0o16
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o15);
    assert_eq!(m.cpu.reg(3), 0o16);
    let bytes = assemble(src).unwrap().symbol("bytes").unwrap();
    assert_eq!(m.cpu.reg(1), bytes + 2);
}

#[test]
fn sp_autoincrement_always_steps_by_two() {
    // Byte operations through SP still bump by a word, as on the hardware.
    let src = "
        MOV #0o4142, -(SP)
        MOVB (SP)+, R2
        HALT
";
    let m = run(src);
    assert_eq!(m.cpu.reg(2), 0o142, "low byte read");
    assert_eq!(m.cpu.reg(6), 0o10000, "SP restored by a full word");
}

#[test]
fn immediate_as_destination_is_exotic_but_defined() {
    // `INC #n` increments the literal's memory cell (the word after the
    // instruction) — classic PDP-11 self-modifying trivia; it must at least
    // not crash and must advance PC correctly.
    let m = run("
        INC #5
        MOV #1, R0
        HALT
");
    assert_eq!(m.cpu.reg(0), 1);
}

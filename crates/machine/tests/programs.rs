//! End-to-end machine tests: assemble real programs and execute them.

use sep_machine::dev::clock::{LineClock, LKS_IE};
use sep_machine::dev::dma::{DmaDisk, CSR_GO};
use sep_machine::dev::serial::SerialLine;
use sep_machine::mmu::{AbortReason, Access, SegmentDescriptor};
use sep_machine::psw::Mode;
use sep_machine::{assemble, Device, Event, Machine, Trap};

/// Loads a program at physical/virtual 0 (MMU disabled) and returns the
/// machine ready to run in user mode.
fn machine_with(source: &str) -> Machine {
    let prog = assemble(source).expect("assembly failed");
    let mut m = Machine::new();
    m.mem.load_words(0, &prog.words);
    m.cpu.pc = prog.origin;
    m.cpu.set_reg(6, 0o10000); // a stack well away from the code
    m
}

/// Runs until a non-Ran event, with a step bound.
fn run(m: &mut Machine) -> Event {
    m.run_until_event(10_000).expect("machine did not stop").0
}

#[test]
fn sum_loop() {
    let mut m = machine_with(
        "
        CLR R0
        MOV #10, R1
loop:   ADD R1, R0
        SOB R1, loop
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(0), 55);
}

#[test]
fn memory_copy_with_autoincrement() {
    let mut m = machine_with(
        "
        MOV #src, R1
        MOV #dst, R2
        MOV #3, R3
loop:   MOV (R1)+, (R2)+
        SOB R3, loop
        HALT
src:    .word 0o111, 0o222, 0o333
dst:    .blkw 3
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    let prog = assemble(
        "
        MOV #src, R1
        MOV #dst, R2
        MOV #3, R3
loop:   MOV (R1)+, (R2)+
        SOB R3, loop
        HALT
src:    .word 0o111, 0o222, 0o333
dst:    .blkw 3
",
    )
    .unwrap();
    let dst = prog.symbol("dst").unwrap() as u32;
    assert_eq!(m.mem.dump_words(dst, 3), vec![0o111, 0o222, 0o333]);
}

#[test]
fn subroutine_call_and_return() {
    let mut m = machine_with(
        "
        MOV #5, R0
        JSR PC, double
        JSR PC, double
        HALT
double: ADD R0, R0
        RTS PC
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(0), 20);
}

#[test]
fn byte_operations_and_sign_extension() {
    let mut m = machine_with(
        "
        MOVB #-1, R0     ; sign-extends into the register
        MOVB #65, R1
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(0), 0o177777);
    assert_eq!(m.cpu.reg(1), 65);
}

#[test]
fn serial_transmit_polling() {
    // With the MMU disabled, virtual 0o177560 window-maps to the I/O page.
    let mut m = machine_with(
        "
        MOV #0o177564, R4   ; XCSR
        MOV #msg, R1
        MOV #2, R2
next:   BIT #0o200, (R4)    ; ready?
        BEQ next
        MOVB (R1)+, 2(R4)   ; XBUF
        SOB R2, next
done:   HALT
msg:    .ascii \"HI\"
",
    );
    let tty = m
        .devices
        .attach(Box::new(SerialLine::new("tty", 0o777560, 0o60, 4)));
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    // Let the transmitter drain.
    let out = m
        .devices
        .downcast_mut::<SerialLine>(tty)
        .unwrap()
        .host_take_output();
    assert_eq!(out, b"HI");
}

#[test]
fn serial_receive_polling() {
    let mut m = machine_with(
        "
        MOV #0o177560, R4   ; RCSR
        MOV #buf, R1
        MOV #3, R2
next:   BIT #0o200, (R4)
        BEQ next
        MOVB 2(R4), (R1)+   ; RBUF
        SOB R2, next
        HALT
buf:    .blkw 2
",
    );
    let tty = m
        .devices
        .attach(Box::new(SerialLine::new("tty", 0o777560, 0o60, 4)));
    m.devices
        .downcast_mut::<SerialLine>(tty)
        .unwrap()
        .host_send(b"abc");
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    // R1 advanced by 3 from buf.
    let base = m.cpu.reg(1) - 3;
    assert_eq!(m.mem.read_byte(base as u32), b'a');
    assert_eq!(m.mem.read_byte(base as u32 + 1), b'b');
    assert_eq!(m.mem.read_byte(base as u32 + 2), b'c');
}

#[test]
fn trap_instruction_reaches_kernel() {
    let mut m = machine_with("TRAP 7");
    assert_eq!(run(&mut m), Event::Trap(Trap::TrapInstr(7)));
}

#[test]
fn wait_idles() {
    let mut m = machine_with("WAIT");
    assert_eq!(run(&mut m), Event::Wait);
}

#[test]
fn illegal_instruction_traps() {
    let mut m = machine_with(".word 0o000007");
    assert_eq!(run(&mut m), Event::Trap(Trap::Illegal { word: 0o000007 }));
}

#[test]
fn odd_pc_traps() {
    let mut m = machine_with("NOP");
    m.cpu.pc = 1;
    assert!(matches!(
        run(&mut m),
        Event::Trap(Trap::OddAddress { vaddr: 1 })
    ));
}

#[test]
fn mmu_confines_user_program() {
    // Map user segment 0 to physical 0o40000 (8 KiB, RW), nothing else.
    let prog = assemble(
        "
        MOV #0o1234, R0
        MOV R0, @#0o20000   ; outside the single mapped segment
        HALT
",
    )
    .unwrap();
    let mut m = Machine::new();
    m.mem.load_words(0o40000, &prog.words);
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
    );
    m.cpu.pc = 0;
    m.cpu.set_reg(6, 0o17776);
    match run(&mut m) {
        Event::Trap(Trap::Mmu(abort)) => {
            assert_eq!(abort.vaddr, 0o20000);
            assert!(abort.write);
            assert_eq!(abort.reason, AbortReason::NonResident);
        }
        other => panic!("expected MMU abort, got {other:?}"),
    }
    // The store never reached physical memory.
    assert_eq!(m.mem.read_word(0o20000), 0);
}

#[test]
fn read_only_segment_blocks_stores() {
    let prog = assemble("MOV R0, @#0o20000\nHALT").unwrap();
    let mut m = Machine::new();
    m.mem.load_words(0o40000, &prog.words);
    m.mmu.enabled = true;
    m.mmu.set_segment(
        Mode::User,
        0,
        SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
    );
    m.mmu.set_segment(
        Mode::User,
        1,
        SegmentDescriptor::mapping(0o100000, 0o20000, Access::ReadOnly),
    );
    m.cpu.pc = 0;
    m.cpu.set_reg(6, 0o17776);
    match run(&mut m) {
        Event::Trap(Trap::Mmu(abort)) => {
            assert_eq!(abort.reason, AbortReason::ReadOnlyViolation);
        }
        other => panic!("expected read-only abort, got {other:?}"),
    }
}

#[test]
fn clock_interrupt_surfaces_to_kernel() {
    let mut m = machine_with(
        "
loop:   BR loop
",
    );
    let clk = m
        .devices
        .attach(Box::new(LineClock::new(0o777546, 0o100, 3)));
    m.devices
        .downcast_mut::<LineClock>(clk)
        .unwrap()
        .write_reg(0, LKS_IE);
    match run(&mut m) {
        Event::Interrupt { device, request } => {
            assert_eq!(device, clk);
            assert_eq!(request.vector, 0o100);
            assert_eq!(request.priority, 6);
        }
        other => panic!("expected interrupt, got {other:?}"),
    }
}

#[test]
fn cpu_priority_masks_interrupts() {
    let mut m = machine_with("loop: BR loop");
    let clk = m
        .devices
        .attach(Box::new(LineClock::new(0o777546, 0o100, 1)));
    m.devices
        .downcast_mut::<LineClock>(clk)
        .unwrap()
        .write_reg(0, LKS_IE);
    m.cpu.psw.set_priority(7);
    // At priority 7 the clock (priority 6) cannot interrupt.
    assert!(m.run_until_event(100).is_none());
    m.cpu.psw.set_priority(5);
    assert!(matches!(run(&mut m), Event::Interrupt { .. }));
}

#[test]
fn dma_blocked_by_default() {
    let mut m = machine_with("loop: BR loop");
    let disk = m.devices.attach(Box::new(DmaDisk::new(0o777440, 0o220)));
    // Start a disk→memory transfer targeting kernel memory.
    {
        let d = m.devices.downcast_mut::<DmaDisk>(disk).unwrap();
        d.host_fill_sector(0, b"malicious payload");
        d.write_reg(2, 0o1000);
        d.write_reg(4, 8);
        d.write_reg(0, CSR_GO);
    }
    assert_eq!(run(&mut m), Event::DmaBlocked { device: disk });
    // Memory untouched.
    assert_eq!(m.mem.read_word(0o1000), 0);
}

#[test]
fn dma_violates_separation_when_allowed() {
    let mut m = machine_with("loop: BR loop");
    m.allow_dma = true;
    let disk = m.devices.attach(Box::new(DmaDisk::new(0o777440, 0o220)));
    {
        let d = m.devices.downcast_mut::<DmaDisk>(disk).unwrap();
        d.host_fill_sector(0, b"payload!");
        d.write_reg(2, 0o1000);
        d.write_reg(4, 4);
        d.write_reg(0, CSR_GO);
    }
    // One step performs the DMA; program keeps spinning.
    m.step();
    assert_eq!(m.mem.range(0o1000, 8), b"payload!");
}

#[test]
fn rti_restores_pc_and_condition_codes() {
    let m = machine_with(
        "
        MOV #after, -(SP)    ; push PSW-slot then PC? No: push PC last
        HALT                 ; placeholder, replaced below
after:  HALT
",
    );
    // Build the stack by hand: RTI pops PC then PSW.
    let mut m2 = machine_with(
        "
        MOV #1, -(SP)        ; saved condition codes (C set)
        MOV #target, -(SP)   ; saved PC
        RTI
        HALT
target: HALT
",
    );
    drop(m);
    assert_eq!(run(&mut m2), Event::Trap(Trap::Halt));
    // PC reached `target` (the second HALT), C restored.
    assert!(m2.cpu.psw.c());
}

#[test]
fn comparison_and_signed_branches() {
    let mut m = machine_with(
        "
        MOV #-5, R0
        CMP R0, #3       ; -5 < 3 → BLT taken
        BLT less
        MOV #0, R5
        HALT
less:   MOV #1, R5
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(5), 1);
}

#[test]
fn unsigned_branches() {
    let mut m = machine_with(
        "
        MOV #0o177777, R0    ; 65535 unsigned
        CMP R0, #1           ; 65535 > 1 unsigned
        BHI high
        MOV #0, R5
        HALT
high:   MOV #1, R5
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(5), 1);
}

#[test]
fn mul_and_div() {
    let mut m = machine_with(
        "
        MOV #300, R0
        MUL #200, R0     ; R0:R1 = 60000
        MOV #7, R2
        MOV #100, R3
        MOV #0, R2
        MOV #60000, R3   ; set up dividend in R2:R3 directly
        DIV #7, R2       ; quotient R2, remainder R3
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(2), 60000 / 7);
    assert_eq!(m.cpu.reg(3), 60000 % 7);
}

#[test]
fn xor_and_shifts() {
    let mut m = machine_with(
        "
        MOV #0o252, R0
        MOV #0o377, R1
        XOR R0, R1       ; R1 = 0o125
        MOV #1, R2
        ASH #3, R2       ; R2 = 8
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(1), 0o125);
    assert_eq!(m.cpu.reg(2), 8);
}

#[test]
fn stack_push_pop_roundtrip() {
    let mut m = machine_with(
        "
        MOV #0o1111, -(SP)
        MOV #0o2222, -(SP)
        MOV (SP)+, R0
        MOV (SP)+, R1
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(0), 0o2222);
    assert_eq!(m.cpu.reg(1), 0o1111);
    assert_eq!(m.cpu.reg(6), 0o10000);
}

#[test]
fn bus_error_on_unmapped_io() {
    let mut m = machine_with("MOV @#0o177560, R0\nHALT");
    // No device attached at the console address.
    assert!(matches!(run(&mut m), Event::Trap(Trap::BusError { .. })));
}

#[test]
fn emt_bpt_iot_surface_distinct_traps() {
    assert_eq!(
        run(&mut machine_with("EMT 0o42")),
        Event::Trap(Trap::Emt(0o42))
    );
    assert_eq!(run(&mut machine_with("BPT")), Event::Trap(Trap::Bpt));
    assert_eq!(run(&mut machine_with("IOT")), Event::Trap(Trap::Iot));
}

#[test]
fn rtt_returns_like_rti() {
    let mut m = machine_with(
        "
        MOV #0, -(SP)        ; saved condition codes
        MOV #target, -(SP)   ; saved PC
        RTT
        HALT
target: MOV #1, R5
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(5), 1);
}

#[test]
fn reset_is_a_no_op_in_user_mode() {
    let mut m = machine_with("RESET\nMOV #3, R0\nHALT");
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert_eq!(m.cpu.reg(0), 3);
}

#[test]
fn jmp_to_register_is_illegal() {
    let mut m = machine_with("JMP R3");
    assert!(matches!(run(&mut m), Event::Trap(Trap::Illegal { .. })));
}

#[test]
fn div_by_zero_sets_v_and_c() {
    let mut m = machine_with(
        "
        MOV #0, R2
        MOV #100, R3
        DIV #0, R2
        HALT
",
    );
    assert_eq!(run(&mut m), Event::Trap(Trap::Halt));
    assert!(m.cpu.psw.v());
    assert!(m.cpu.psw.c());
    // Registers unchanged on the error path.
    assert_eq!(m.cpu.reg(3), 100);
}

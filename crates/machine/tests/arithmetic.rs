//! Multi-word arithmetic and shift/rotate semantics: programs that depend
//! on exact carry behaviour, the way real PDP-11 code did.

use sep_machine::{assemble, Event, Machine, Trap};

fn run(src: &str) -> Machine {
    let prog = assemble(src).unwrap();
    let mut m = Machine::new();
    m.mem.load_words(0, &prog.words);
    m.cpu.set_reg(6, 0o10000);
    assert_eq!(
        m.run_until_event(100_000).unwrap().0,
        Event::Trap(Trap::Halt),
        "program did not halt"
    );
    m
}

#[test]
fn double_precision_add_via_adc() {
    // 32-bit add: (R1:R0) + (R3:R2), low words carry into high via ADC.
    // 0x0001_8000 + 0x0002_8000 = 0x0004_0000.
    let m = run("
        MOV #0o100000, R0   ; low(a) = 0x8000
        MOV #1, R1          ; high(a)
        MOV #0o100000, R2   ; low(b) = 0x8000
        MOV #2, R3          ; high(b)
        ADD R2, R0          ; low sum, sets carry
        ADC R1              ; propagate carry
        ADD R3, R1
        HALT
");
    assert_eq!(m.cpu.reg(0), 0);
    assert_eq!(m.cpu.reg(1), 4);
}

#[test]
fn double_precision_subtract_via_sbc() {
    // 0x0003_0000 - 0x0000_0001 = 0x0002_FFFF.
    let m = run("
        MOV #0, R0
        MOV #3, R1
        SUB #1, R0          ; borrow
        SBC R1
        HALT
");
    assert_eq!(m.cpu.reg(0), 0xFFFF);
    assert_eq!(m.cpu.reg(1), 2);
}

#[test]
fn rotate_through_carry_chain() {
    // ROL of a 32-bit value (R1:R0) by one bit: ASL low, ROL high.
    let m = run("
        MOV #0o100000, R0   ; bit 15 set
        MOV #1, R1
        ASL R0              ; shifts out into C
        ROL R1              ; rotates C in
        HALT
");
    assert_eq!(m.cpu.reg(0), 0);
    assert_eq!(m.cpu.reg(1), 3);
}

#[test]
fn asr_preserves_sign() {
    let m = run("
        MOV #-8, R0
        ASR R0
        ASR R0
        HALT
");
    assert_eq!(m.cpu.reg(0) as i16, -2);
}

#[test]
fn ror_through_carry() {
    let m = run("
        MOV #1, R0
        CLC
        ROR R0              ; bit 0 -> C, result 0
        ROR R0              ; C -> bit 15
        HALT
");
    assert_eq!(m.cpu.reg(0), 0o100000);
}

#[test]
fn software_multiply_matches_mul() {
    // Shift-and-add 13 * 11 without EIS, then verify against MUL.
    let m = run("
        MOV #13, R0         ; multiplicand
        MOV #11, R1         ; multiplier
        CLR R2              ; product
loop:   BIT #1, R1
        BEQ skip
        ADD R0, R2
skip:   ASL R0
        ASR R1
        BIC #0o100000, R1   ; logical shift right
        BNE loop
        MOV #13, R4
        MUL #11, R4         ; odd register: low word in R4... use pair
        HALT
");
    assert_eq!(m.cpu.reg(2), 143);
}

#[test]
fn sxt_materializes_the_sign() {
    let m = run("
        MOV #-5, R0
        TST R0              ; N = 1
        SXT R1
        MOV #5, R0
        TST R0              ; N = 0
        SXT R2
        HALT
");
    assert_eq!(m.cpu.reg(1), 0o177777);
    assert_eq!(m.cpu.reg(2), 0);
}

#[test]
fn com_and_neg_relationship() {
    // -x == ~x + 1 for all two's-complement values.
    let m = run("
        MOV #0o1234, R0
        MOV R0, R1
        NEG R0
        COM R1
        INC R1
        HALT
");
    assert_eq!(m.cpu.reg(0), m.cpu.reg(1));
}

#[test]
fn stack_discipline_through_nested_calls() {
    let m = run("
        MOV #1, R0
        JSR PC, outer
        HALT
outer:  ADD #10, R0
        JSR PC, inner
        ADD #100, R0
        RTS PC
inner:  ADD #1000, R0
        RTS PC
");
    assert_eq!(m.cpu.reg(0), 1111);
    assert_eq!(m.cpu.reg(6), 0o10000, "stack balanced");
}

#[test]
fn indexed_table_lookup() {
    let m = run("
        MOV #2, R1          ; index
        ASL R1              ; word offset
        MOV table(R1), R0
        HALT
table:  .word 0o100, 0o200, 0o300, 0o400
");
    assert_eq!(m.cpu.reg(0), 0o300);
}

//! Basic machine types: words, addresses, and formatting helpers.

/// A 16-bit machine word.
pub type Word = u16;

/// An 18-bit physical byte address (held in a `u32`).
pub type PhysAddr = u32;

/// Sign bit of a word.
pub const SIGN_W: Word = 0o100000;

/// Sign bit of a byte.
pub const SIGN_B: u8 = 0o200;

/// Formats a word in the PDP-11's customary octal.
pub fn octal(w: Word) -> String {
    format!("{w:06o}")
}

/// Sign-extends a byte into a word.
pub fn sign_extend_byte(b: u8) -> Word {
    b as i8 as i16 as u16
}

/// True when the word is negative as a two's-complement value.
pub fn is_neg_w(w: Word) -> bool {
    w & SIGN_W != 0
}

/// True when the byte is negative as a two's-complement value.
pub fn is_neg_b(b: u8) -> bool {
    b & SIGN_B != 0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn octal_formats_six_digits() {
        assert_eq!(octal(0), "000000");
        assert_eq!(octal(0o177777), "177777");
        assert_eq!(octal(0o777), "000777");
    }

    #[test]
    fn sign_extension() {
        assert_eq!(sign_extend_byte(0x7F), 0x007F);
        assert_eq!(sign_extend_byte(0x80), 0xFF80);
        assert_eq!(sign_extend_byte(0xFF), 0xFFFF);
    }

    #[test]
    fn negativity() {
        assert!(is_neg_w(0o100000));
        assert!(!is_neg_w(0o077777));
        assert!(is_neg_b(0o200));
        assert!(!is_neg_b(0o177));
    }
}

//! A two-pass assembler for the machine's PDP-11 subset.
//!
//! Regime programs in the examples and tests are written in assembly and
//! assembled with [`assemble`]. The syntax follows MACRO-11 conventions
//! closely enough to be familiar:
//!
//! ```text
//! ; comments run to end of line
//! start:  MOV #10, R0          ; immediate
//!         MOVB (R1)+, R2       ; autoincrement
//! loop:   DEC R0
//!         BNE loop
//!         TRAP 1               ; kernel call
//!         .word 0x1234, start  ; data
//!         .ascii "hi"
//!         .even
//!         .blkw 4              ; four zero words
//! ```
//!
//! Numbers are decimal by default, with `0o` (octal), `0x` (hex), and `'c`
//! (character) literals. Registers are `R0`–`R7`, `SP` (= R6), `PC` (= R7).
//! Bare symbols as operands use PC-relative addressing; `#sym` is immediate
//! and `@#sym` absolute.

use crate::types::Word;
use std::collections::HashMap;

/// Assembly error with line number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AsmError {
    /// 1-based source line.
    pub line: usize,
    /// Description.
    pub message: String,
}

impl core::fmt::Display for AsmError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for AsmError {}

/// The result of assembling a source file: words to load at the origin.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    /// Load origin in bytes (virtual).
    pub origin: Word,
    /// The assembled words.
    pub words: Vec<Word>,
    /// The symbol table (labels → byte addresses).
    pub symbols: HashMap<String, Word>,
}

impl Program {
    /// The address of a label.
    pub fn symbol(&self, name: &str) -> Option<Word> {
        self.symbols.get(name).copied()
    }

    /// Program size in bytes.
    pub fn byte_len(&self) -> Word {
        (self.words.len() * 2) as Word
    }
}

/// Assembles source text (origin 0).
///
/// # Examples
///
/// ```
/// let prog = sep_machine::assemble("MOV #5, R0\nHALT").unwrap();
/// assert_eq!(prog.words, vec![0o012700, 5, 0o000000]);
/// ```
pub fn assemble(source: &str) -> Result<Program, AsmError> {
    assemble_at(source, 0)
}

/// Assembles source text with a given load origin.
pub fn assemble_at(source: &str, origin: Word) -> Result<Program, AsmError> {
    let asm = Assembler::parse(source, origin)?;
    asm.emit()
}

// ---------------------------------------------------------------------
// Parsing.
// ---------------------------------------------------------------------

#[derive(Debug, Clone, PartialEq, Eq)]
enum Expr {
    Num(i32),
    Sym(String, i32), // symbol + addend
    Here(i32),        // '.' + addend
}

#[derive(Debug, Clone)]
enum Arg {
    Operand {
        mode: u8,
        reg: u8,
        extra: Option<Expr>,
    },
}

#[derive(Debug, Clone)]
struct Item {
    line: usize,
    addr: Word,
    kind: ItemKind,
}

#[derive(Debug, Clone)]
enum ItemKind {
    Instr { mnemonic: String, args: Vec<Arg> },
    Word(Vec<Expr>),
    Byte(Vec<Expr>),
    Ascii(Vec<u8>),
}

struct Assembler {
    origin: Word,
    items: Vec<Item>,
    symbols: HashMap<String, Word>,
    end: Word,
}

fn err(line: usize, message: impl Into<String>) -> AsmError {
    AsmError {
        line,
        message: message.into(),
    }
}

fn parse_reg(tok: &str) -> Option<u8> {
    match tok.to_ascii_uppercase().as_str() {
        "R0" => Some(0),
        "R1" => Some(1),
        "R2" => Some(2),
        "R3" => Some(3),
        "R4" => Some(4),
        "R5" => Some(5),
        "R6" | "SP" => Some(6),
        "R7" | "PC" => Some(7),
        _ => None,
    }
}

fn parse_number(tok: &str) -> Option<i32> {
    let (neg, t) = match tok.strip_prefix('-') {
        Some(rest) => (true, rest),
        None => (false, tok),
    };
    let v = if let Some(h) = t.strip_prefix("0x").or_else(|| t.strip_prefix("0X")) {
        i64::from_str_radix(h, 16).ok()?
    } else if let Some(o) = t.strip_prefix("0o").or_else(|| t.strip_prefix("0O")) {
        i64::from_str_radix(o, 8).ok()?
    } else if let Some(c) = t.strip_prefix('\'') {
        let mut chars = c.chars();
        let ch = chars.next()?;
        if chars.next().is_some() {
            return None;
        }
        ch as i64
    } else {
        t.parse::<i64>().ok()?
    };
    let v = if neg { -v } else { v };
    (-65536..=65535).contains(&v).then_some(v as i32)
}

fn is_sym_char(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_' || c == '.' || c == '$'
}

fn parse_expr(tok: &str, line: usize) -> Result<Expr, AsmError> {
    let tok = tok.trim();
    if tok.is_empty() {
        return Err(err(line, "empty expression"));
    }
    if let Some(n) = parse_number(tok) {
        return Ok(Expr::Num(n));
    }
    // sym, sym+n, sym-n, ., .+n, .-n
    let (base, addend) = {
        // Find a +/- separator after the first character.
        let mut split = None;
        for (i, c) in tok.char_indices().skip(1) {
            if c == '+' || c == '-' {
                split = Some(i);
                break;
            }
        }
        match split {
            Some(i) => {
                let (b, rest) = tok.split_at(i);
                let n = parse_number(rest)
                    .or_else(|| {
                        parse_number(&rest[1..]).map(|v| if rest.starts_with('-') { -v } else { v })
                    })
                    .ok_or_else(|| err(line, format!("bad addend in expression: {tok}")))?;
                (b.trim(), n)
            }
            None => (tok, 0),
        }
    };
    if base == "." {
        return Ok(Expr::Here(addend));
    }
    if !base.is_empty()
        && base.chars().all(is_sym_char)
        && !base.chars().next().unwrap().is_ascii_digit()
    {
        return Ok(Expr::Sym(base.to_string(), addend));
    }
    Err(err(line, format!("cannot parse expression: {tok}")))
}

/// Parses one operand into addressing mode, register, and optional extra
/// word.
fn parse_operand(tok: &str, line: usize) -> Result<Arg, AsmError> {
    let t = tok.trim();
    if let Some(r) = parse_reg(t) {
        return Ok(Arg::Operand {
            mode: 0,
            reg: r,
            extra: None,
        });
    }
    // Deferred forms start with '@'.
    if let Some(rest) = t.strip_prefix('@') {
        let rest = rest.trim();
        if let Some(imm) = rest.strip_prefix('#') {
            // @#addr — absolute.
            return Ok(Arg::Operand {
                mode: 3,
                reg: 7,
                extra: Some(parse_expr(imm, line)?),
            });
        }
        if let Some(inner) = rest.strip_prefix("-(").and_then(|s| s.strip_suffix(')')) {
            let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register: {inner}")))?;
            return Ok(Arg::Operand {
                mode: 5,
                reg: r,
                extra: None,
            });
        }
        if let Some(inner) = rest.strip_prefix('(').and_then(|s| s.strip_suffix(")+")) {
            let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register: {inner}")))?;
            return Ok(Arg::Operand {
                mode: 3,
                reg: r,
                extra: None,
            });
        }
        if let Some(open) = rest.find('(') {
            // @X(Rn)
            let idx = &rest[..open];
            let reg_part = rest[open + 1..]
                .strip_suffix(')')
                .ok_or_else(|| err(line, format!("missing ')': {t}")))?;
            let r = parse_reg(reg_part)
                .ok_or_else(|| err(line, format!("bad register: {reg_part}")))?;
            return Ok(Arg::Operand {
                mode: 7,
                reg: r,
                extra: Some(parse_expr(idx, line)?),
            });
        }
        // @addr — PC-relative deferred.
        return Ok(Arg::Operand {
            mode: 7,
            reg: 7,
            extra: Some(Expr::relative(parse_expr(rest, line)?)),
        });
    }
    if let Some(imm) = t.strip_prefix('#') {
        return Ok(Arg::Operand {
            mode: 2,
            reg: 7,
            extra: Some(parse_expr(imm, line)?),
        });
    }
    if let Some(inner) = t.strip_prefix("-(").and_then(|s| s.strip_suffix(')')) {
        let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register: {inner}")))?;
        return Ok(Arg::Operand {
            mode: 4,
            reg: r,
            extra: None,
        });
    }
    if let Some(inner) = t.strip_prefix('(').and_then(|s| s.strip_suffix(")+")) {
        let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register: {inner}")))?;
        return Ok(Arg::Operand {
            mode: 2,
            reg: r,
            extra: None,
        });
    }
    if let Some(inner) = t.strip_prefix('(').and_then(|s| s.strip_suffix(')')) {
        let r = parse_reg(inner).ok_or_else(|| err(line, format!("bad register: {inner}")))?;
        return Ok(Arg::Operand {
            mode: 1,
            reg: r,
            extra: None,
        });
    }
    if let Some(open) = t.find('(') {
        // X(Rn)
        let idx = &t[..open];
        let reg_part = t[open + 1..]
            .strip_suffix(')')
            .ok_or_else(|| err(line, format!("missing ')': {t}")))?;
        let r =
            parse_reg(reg_part).ok_or_else(|| err(line, format!("bad register: {reg_part}")))?;
        return Ok(Arg::Operand {
            mode: 6,
            reg: r,
            extra: Some(parse_expr(idx, line)?),
        });
    }
    // Bare expression: PC-relative.
    Ok(Arg::Operand {
        mode: 6,
        reg: 7,
        extra: Some(Expr::relative(parse_expr(t, line)?)),
    })
}

impl Expr {
    /// Marker wrapper: relative operands are resolved as `target − (addr of
    /// extra word + 2)` during emission. We tag them by wrapping in a
    /// special symbol namespace.
    fn relative(e: Expr) -> Expr {
        match e {
            Expr::Sym(s, a) => Expr::Sym(format!("\u{1}rel\u{1}{s}"), a),
            Expr::Num(n) => Expr::Sym("\u{1}relnum\u{1}".to_string(), n),
            Expr::Here(a) => Expr::Here(a),
        }
    }
}

/// Splits an operand field on commas that are not inside parentheses or
/// character literals.
fn split_args(s: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0i32;
    let mut cur = String::new();
    for c in s.chars() {
        match c {
            '(' => {
                depth += 1;
                cur.push(c);
            }
            ')' => {
                depth -= 1;
                cur.push(c);
            }
            ',' if depth == 0 => {
                out.push(cur.trim().to_string());
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    if !cur.trim().is_empty() {
        out.push(cur.trim().to_string());
    }
    out
}

impl Assembler {
    fn parse(source: &str, origin: Word) -> Result<Assembler, AsmError> {
        let mut asm = Assembler {
            origin,
            items: Vec::new(),
            symbols: HashMap::new(),
            end: origin,
        };
        let mut loc = origin;
        for (lineno, raw) in source.lines().enumerate() {
            let line = lineno + 1;
            let mut text = raw;
            if let Some(i) = text.find(';') {
                text = &text[..i];
            }
            let mut text = text.trim();
            // Labels (possibly several).
            while let Some(i) = text.find(':') {
                let label = text[..i].trim();
                if label.is_empty() || !label.chars().all(is_sym_char) {
                    return Err(err(line, format!("bad label: {label}")));
                }
                if asm.symbols.insert(label.to_string(), loc).is_some() {
                    return Err(err(line, format!("duplicate label: {label}")));
                }
                text = text[i + 1..].trim();
            }
            if text.is_empty() {
                continue;
            }
            let (head, rest) = match text.find(char::is_whitespace) {
                Some(i) => (&text[..i], text[i..].trim()),
                None => (text, ""),
            };
            let mnemonic = head.to_ascii_uppercase();
            match mnemonic.as_str() {
                ".ORG" => {
                    let e = parse_expr(rest, line)?;
                    match e {
                        Expr::Num(n) => {
                            let n = n as Word;
                            if n < loc {
                                return Err(err(line, ".org moves backwards"));
                            }
                            loc = n;
                        }
                        _ => return Err(err(line, ".org requires a numeric operand")),
                    }
                }
                ".EVEN" => {
                    loc = (loc + 1) & !1;
                }
                ".BLKW" => {
                    let n = parse_number(rest).ok_or_else(|| err(line, "bad .blkw count"))?;
                    if !(0..=0o37777).contains(&n) {
                        return Err(err(line, format!(".blkw count out of range: {n}")));
                    }
                    asm.items.push(Item {
                        line,
                        addr: loc,
                        kind: ItemKind::Word(vec![Expr::Num(0); n as usize]),
                    });
                    loc += 2 * n as Word;
                }
                ".WORD" => {
                    if loc & 1 != 0 {
                        return Err(err(line, ".word at odd address"));
                    }
                    let exprs = split_args(rest)
                        .iter()
                        .map(|a| parse_expr(a, line))
                        .collect::<Result<Vec<_>, _>>()?;
                    let n = exprs.len() as Word;
                    asm.items.push(Item {
                        line,
                        addr: loc,
                        kind: ItemKind::Word(exprs),
                    });
                    loc += 2 * n;
                }
                ".BYTE" => {
                    let exprs = split_args(rest)
                        .iter()
                        .map(|a| parse_expr(a, line))
                        .collect::<Result<Vec<_>, _>>()?;
                    let n = exprs.len() as Word;
                    asm.items.push(Item {
                        line,
                        addr: loc,
                        kind: ItemKind::Byte(exprs),
                    });
                    loc += n;
                }
                ".ASCII" | ".ASCIZ" => {
                    let s = rest.trim();
                    let inner = s
                        .strip_prefix('"')
                        .and_then(|x| x.strip_suffix('"'))
                        .ok_or_else(|| err(line, "string must be double-quoted"))?;
                    let mut bytes = inner.as_bytes().to_vec();
                    if mnemonic == ".ASCIZ" {
                        bytes.push(0);
                    }
                    let n = bytes.len() as Word;
                    asm.items.push(Item {
                        line,
                        addr: loc,
                        kind: ItemKind::Ascii(bytes),
                    });
                    loc += n;
                }
                _ => {
                    if loc & 1 != 0 {
                        return Err(err(line, "instruction at odd address"));
                    }
                    let args = split_args(rest);
                    let (size, parsed) = instr_size_and_args(&mnemonic, &args, line)?;
                    asm.items.push(Item {
                        line,
                        addr: loc,
                        kind: ItemKind::Instr {
                            mnemonic,
                            args: parsed,
                        },
                    });
                    loc += size;
                }
            }
        }
        asm.end = loc;
        Ok(asm)
    }

    fn resolve(&self, e: &Expr, extra_addr: Word, line: usize) -> Result<Word, AsmError> {
        match e {
            Expr::Num(n) => Ok(*n as Word),
            Expr::Here(a) => Ok((extra_addr as i32 + a) as Word),
            Expr::Sym(s, a) => {
                if let Some(rest) = s.strip_prefix("\u{1}rel\u{1}") {
                    let target = self
                        .symbols
                        .get(rest)
                        .copied()
                        .ok_or_else(|| err(line, format!("undefined symbol: {rest}")))?;
                    let target = (target as i32 + a) as Word;
                    Ok(target.wrapping_sub(extra_addr.wrapping_add(2)))
                } else if s == "\u{1}relnum\u{1}" {
                    Ok((*a as Word).wrapping_sub(extra_addr.wrapping_add(2)))
                } else {
                    let v = self
                        .symbols
                        .get(s)
                        .copied()
                        .ok_or_else(|| err(line, format!("undefined symbol: {s}")))?;
                    Ok((v as i32 + a) as Word)
                }
            }
        }
    }

    fn emit(self) -> Result<Program, AsmError> {
        let len_words = ((self.end - self.origin) as usize).div_ceil(2);
        let mut words = vec![0u16; len_words];
        let mut bytes_written: HashMap<usize, u8> = HashMap::new();
        let put_word = |words: &mut Vec<Word>, addr: Word, w: Word| {
            let idx = ((addr - self.origin) / 2) as usize;
            words[idx] = w;
        };
        for item in &self.items {
            match &item.kind {
                ItemKind::Word(exprs) => {
                    for (i, e) in exprs.iter().enumerate() {
                        let a = item.addr + 2 * i as Word;
                        let v = self.resolve(e, a, item.line)?;
                        put_word(&mut words, a, v);
                    }
                }
                ItemKind::Byte(exprs) => {
                    for (i, e) in exprs.iter().enumerate() {
                        let a = item.addr + i as Word;
                        let v = self.resolve(e, a, item.line)? as u8;
                        bytes_written.insert((a - self.origin) as usize, v);
                    }
                }
                ItemKind::Ascii(bytes) => {
                    for (i, b) in bytes.iter().enumerate() {
                        let a = item.addr + i as Word;
                        bytes_written.insert((a - self.origin) as usize, *b);
                    }
                }
                ItemKind::Instr { mnemonic, args } => {
                    let ws = self.encode(mnemonic, args, item.addr, item.line)?;
                    for (i, w) in ws.iter().enumerate() {
                        put_word(&mut words, item.addr + 2 * i as Word, *w);
                    }
                }
            }
        }
        // Merge byte writes into the word array.
        for (offset, b) in bytes_written {
            let idx = offset / 2;
            if offset % 2 == 0 {
                words[idx] = (words[idx] & 0xFF00) | b as Word;
            } else {
                words[idx] = (words[idx] & 0x00FF) | ((b as Word) << 8);
            }
        }
        Ok(Program {
            origin: self.origin,
            words,
            symbols: self
                .symbols
                .into_iter()
                .filter(|(k, _)| !k.starts_with('\u{1}'))
                .collect(),
        })
    }

    fn encode(
        &self,
        mnemonic: &str,
        args: &[Arg],
        addr: Word,
        line: usize,
    ) -> Result<Vec<Word>, AsmError> {
        let mut out = Vec::with_capacity(3);
        let mut extras: Vec<(Expr, usize)> = Vec::new();

        let operand_bits = |arg: &Arg, extras: &mut Vec<(Expr, usize)>| -> Result<Word, AsmError> {
            match arg {
                Arg::Operand { mode, reg, extra } => {
                    if let Some(e) = extra {
                        let n = extras.len();
                        extras.push((e.clone(), n));
                    }
                    Ok(((*mode as Word) << 3) | *reg as Word)
                }
            }
        };

        let double = |op: Word,
                      out: &mut Vec<Word>,
                      extras: &mut Vec<(Expr, usize)>,
                      args: &[Arg]|
         -> Result<(), AsmError> {
            if args.len() != 2 {
                return Err(err(line, "expected two operands"));
            }
            let ob = |a: &Arg, ex: &mut Vec<(Expr, usize)>| match a {
                Arg::Operand { mode, reg, extra } => {
                    if let Some(e) = extra {
                        let n = ex.len();
                        ex.push((e.clone(), n));
                    }
                    Ok(((*mode as Word) << 3) | *reg as Word)
                }
            };
            let s = ob(&args[0], extras)?;
            let d = ob(&args[1], extras)?;
            out.push(op | (s << 6) | d);
            Ok(())
        };

        match mnemonic {
            "MOV" => double(0o010000, &mut out, &mut extras, args)?,
            "MOVB" => double(0o110000, &mut out, &mut extras, args)?,
            "CMP" => double(0o020000, &mut out, &mut extras, args)?,
            "CMPB" => double(0o120000, &mut out, &mut extras, args)?,
            "BIT" => double(0o030000, &mut out, &mut extras, args)?,
            "BITB" => double(0o130000, &mut out, &mut extras, args)?,
            "BIC" => double(0o040000, &mut out, &mut extras, args)?,
            "BICB" => double(0o140000, &mut out, &mut extras, args)?,
            "BIS" => double(0o050000, &mut out, &mut extras, args)?,
            "BISB" => double(0o150000, &mut out, &mut extras, args)?,
            "ADD" => double(0o060000, &mut out, &mut extras, args)?,
            "SUB" => double(0o160000, &mut out, &mut extras, args)?,
            "CLR" | "CLRB" | "COM" | "COMB" | "INC" | "INCB" | "DEC" | "DECB" | "NEG" | "NEGB"
            | "ADC" | "ADCB" | "SBC" | "SBCB" | "TST" | "TSTB" | "ROR" | "RORB" | "ROL"
            | "ROLB" | "ASR" | "ASRB" | "ASL" | "ASLB" | "SWAB" | "SXT" | "JMP" => {
                if args.len() != 1 {
                    return Err(err(line, "expected one operand"));
                }
                // SWAB's trailing B is part of the name, not a byte marker.
                let stem = if mnemonic == "SWAB" {
                    "SWAB"
                } else {
                    mnemonic.strip_suffix('B').unwrap_or(mnemonic)
                };
                let base: Word = match stem {
                    "CLR" => 0o005000,
                    "COM" => 0o005100,
                    "INC" => 0o005200,
                    "DEC" => 0o005300,
                    "NEG" => 0o005400,
                    "ADC" => 0o005500,
                    "SBC" => 0o005600,
                    "TST" => 0o005700,
                    "ROR" => 0o006000,
                    "ROL" => 0o006100,
                    "ASR" => 0o006200,
                    "ASL" => 0o006300,
                    "SWAB" => 0o000300,
                    "SXT" => 0o006700,
                    "JMP" => 0o000100,
                    _ => unreachable!(),
                };
                let byte_bit = if mnemonic.ends_with('B') && mnemonic != "SWAB" {
                    0o100000
                } else {
                    0
                };
                let d = operand_bits(&args[0], &mut extras)?;
                out.push(base | byte_bit | d);
            }
            "BR" | "BNE" | "BEQ" | "BGE" | "BLT" | "BGT" | "BLE" | "BPL" | "BMI" | "BHI"
            | "BLOS" | "BVC" | "BVS" | "BCC" | "BCS" => {
                if args.len() != 1 {
                    return Err(err(line, "expected a branch target"));
                }
                let base: Word = match mnemonic {
                    "BR" => 0o000400,
                    "BNE" => 0o001000,
                    "BEQ" => 0o001400,
                    "BGE" => 0o002000,
                    "BLT" => 0o002400,
                    "BGT" => 0o003000,
                    "BLE" => 0o003400,
                    "BPL" => 0o100000,
                    "BMI" => 0o100400,
                    "BHI" => 0o101000,
                    "BLOS" => 0o101400,
                    "BVC" => 0o102000,
                    "BVS" => 0o102400,
                    "BCC" => 0o103000,
                    "BCS" => 0o103400,
                    _ => unreachable!(),
                };
                let target = self.branch_target(&args[0], line)?;
                let target = self.resolve(&target, addr, line)?;
                let diff = (target as i32) - (addr as i32 + 2);
                if diff % 2 != 0 {
                    return Err(err(line, "branch target at odd distance"));
                }
                let off = diff / 2;
                if !(-128..=127).contains(&off) {
                    return Err(err(line, format!("branch out of range: {off} words")));
                }
                out.push(base | (off as u8 as Word));
            }
            "JSR" => {
                if args.len() != 2 {
                    return Err(err(line, "JSR reg, dst"));
                }
                let r = self.expect_reg(&args[0], line)?;
                let d = operand_bits(&args[1], &mut extras)?;
                out.push(0o004000 | ((r as Word) << 6) | d);
            }
            "RTS" => {
                let r = self.expect_reg(&args[0], line)?;
                out.push(0o000200 | r as Word);
            }
            "SOB" => {
                if args.len() != 2 {
                    return Err(err(line, "SOB reg, target"));
                }
                let r = self.expect_reg(&args[0], line)?;
                let target = self.branch_target(&args[1], line)?;
                let target = self.resolve(&target, addr, line)?;
                let diff = (addr as i32 + 2) - target as i32;
                if diff % 2 != 0 || !(0..=126).contains(&diff) {
                    return Err(err(line, "SOB target out of range"));
                }
                out.push(0o077000 | ((r as Word) << 6) | (diff / 2) as Word);
            }
            "MUL" | "DIV" | "ASH" => {
                if args.len() != 2 {
                    return Err(err(line, format!("{mnemonic} src, reg")));
                }
                let base = match mnemonic {
                    "MUL" => 0o070000,
                    "DIV" => 0o071000,
                    _ => 0o072000,
                };
                let s = operand_bits(&args[0], &mut extras)?;
                let r = self.expect_reg(&args[1], line)?;
                out.push(base | ((r as Word) << 6) | s);
            }
            "XOR" => {
                if args.len() != 2 {
                    return Err(err(line, "XOR reg, dst"));
                }
                let r = self.expect_reg(&args[0], line)?;
                let d = operand_bits(&args[1], &mut extras)?;
                out.push(0o074000 | ((r as Word) << 6) | d);
            }
            "EMT" | "TRAP" => {
                let n = if args.is_empty() {
                    0
                } else {
                    let e = self.branch_target(&args[0], line)?;
                    self.resolve(&e, addr, line)? as i32
                };
                if !(0..=255).contains(&n) {
                    return Err(err(line, "trap number out of range"));
                }
                let base = if mnemonic == "EMT" {
                    0o104000
                } else {
                    0o104400
                };
                out.push(base | n as Word);
            }
            "HALT" => out.push(0o000000),
            "WAIT" => out.push(0o000001),
            "RTI" => out.push(0o000002),
            "BPT" => out.push(0o000003),
            "IOT" => out.push(0o000004),
            "RESET" => out.push(0o000005),
            "RTT" => out.push(0o000006),
            "NOP" => out.push(0o000240),
            "CLC" => out.push(0o000241),
            "CLV" => out.push(0o000242),
            "CLZ" => out.push(0o000244),
            "CLN" => out.push(0o000250),
            "CCC" => out.push(0o000257),
            "SEC" => out.push(0o000261),
            "SEV" => out.push(0o000262),
            "SEZ" => out.push(0o000264),
            "SEN" => out.push(0o000270),
            "SCC" => out.push(0o000277),
            _ => return Err(err(line, format!("unknown mnemonic: {mnemonic}"))),
        }

        // Append operand extension words in operand order.
        for (i, (e, _)) in extras.iter().enumerate() {
            let extra_addr = addr + 2 + 2 * i as Word;
            let v = self.resolve(e, extra_addr, line)?;
            out.push(v);
        }
        Ok(out)
    }

    fn expect_reg(&self, a: &Arg, line: usize) -> Result<u8, AsmError> {
        match a {
            Arg::Operand { mode: 0, reg, .. } => Ok(*reg),
            _ => Err(err(line, "expected a register")),
        }
    }

    /// Branch targets are bare expressions; unwrap the PC-relative tagging
    /// that `parse_operand` applied (branches encode their own offset).
    fn branch_target(&self, a: &Arg, line: usize) -> Result<Expr, AsmError> {
        match a {
            Arg::Operand {
                mode: 6,
                reg: 7,
                extra: Some(Expr::Sym(s, add)),
            } => {
                if let Some(rest) = s.strip_prefix("\u{1}rel\u{1}") {
                    Ok(Expr::Sym(rest.to_string(), *add))
                } else if s == "\u{1}relnum\u{1}" {
                    Ok(Expr::Num(*add))
                } else {
                    Ok(Expr::Sym(s.clone(), *add))
                }
            }
            Arg::Operand {
                mode: 6,
                reg: 7,
                extra: Some(e),
            } => Ok(e.clone()),
            _ => Err(err(line, "expected a branch target label")),
        }
    }
}

/// Computes an instruction's size in bytes and returns the parsed operands.
fn instr_size_and_args(
    mnemonic: &str,
    args: &[String],
    line: usize,
) -> Result<(Word, Vec<Arg>), AsmError> {
    let parsed: Vec<Arg> = args
        .iter()
        .map(|a| parse_operand(a, line))
        .collect::<Result<Vec<_>, _>>()?;
    // Branches and SOB encode their target in the base word; traps take a
    // literal; everything else grows by one word per operand needing an
    // extension.
    let branchlike = matches!(
        mnemonic,
        "BR" | "BNE"
            | "BEQ"
            | "BGE"
            | "BLT"
            | "BGT"
            | "BLE"
            | "BPL"
            | "BMI"
            | "BHI"
            | "BLOS"
            | "BVC"
            | "BVS"
            | "BCC"
            | "BCS"
            | "SOB"
            | "EMT"
            | "TRAP"
            | "RTS"
    );
    let size = if branchlike {
        2
    } else {
        let extras: Word = parsed
            .iter()
            .map(|a| match a {
                Arg::Operand { extra: Some(_), .. } => 1,
                _ => 0,
            })
            .sum();
        2 + 2 * extras
    };
    Ok((size, parsed))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assembles_simple_moves() {
        let p = assemble("MOV R0, R1").unwrap();
        assert_eq!(p.words, vec![0o010001]);
        let p = assemble("MOV #5, R0").unwrap();
        assert_eq!(p.words, vec![0o012700, 5]);
        let p = assemble("MOVB (R1)+, R2").unwrap();
        assert_eq!(p.words, vec![0o112102]);
    }

    #[test]
    fn assembles_absolute_and_indexed() {
        let p = assemble("MOV @#0o177560, R0").unwrap();
        assert_eq!(p.words, vec![0o013700, 0o177560]);
        let p = assemble("MOV 4(R1), R0").unwrap();
        assert_eq!(p.words, vec![0o016100, 4]);
        let p = assemble("MOV -(SP), R0").unwrap();
        assert_eq!(p.words, vec![0o014600]);
    }

    #[test]
    fn labels_and_branches() {
        let src = "
start:  CLR R0
loop:   INC R0
        CMP #3, R0
        BNE loop
        HALT
";
        let p = assemble(src).unwrap();
        assert_eq!(p.symbol("start"), Some(0));
        assert_eq!(p.symbol("loop"), Some(2));
        // BNE is at byte 8; offset = (2 - 10)/2 = -4.
        assert_eq!(p.words[4], 0o001000 | (-4i8 as u8 as Word));
    }

    #[test]
    fn pc_relative_data_reference() {
        let src = "
        MOV counter, R0
        HALT
counter: .word 42
";
        let p = assemble(src).unwrap();
        // MOV rel, R0 = 0o016700, then offset: counter(6) - (2+2) = 2.
        assert_eq!(p.words[0], 0o016700);
        assert_eq!(p.words[1], 2);
        assert_eq!(p.words[3], 42);
    }

    #[test]
    fn word_and_byte_directives() {
        let p = assemble(".word 1, 2, 0x10\n.byte 7, 8\n.even\n.word 9").unwrap();
        assert_eq!(p.words, vec![1, 2, 16, 0x0807, 9]);
    }

    #[test]
    fn ascii_directive() {
        let p = assemble(".ascii \"AB\"\n.even\n.word 1").unwrap();
        assert_eq!(p.words[0], u16::from_le_bytes([b'A', b'B']));
        assert_eq!(p.words[1], 1);
    }

    #[test]
    fn trap_and_emt() {
        let p = assemble("TRAP 3\nEMT 0o20").unwrap();
        assert_eq!(p.words, vec![0o104403, 0o104020]);
    }

    #[test]
    fn sob_encodes_backward_offset() {
        let src = "
loop:   NOP
        SOB R1, loop
";
        let p = assemble(src).unwrap();
        // SOB at byte 2: offset = (2+2-0)/2 = 2.
        assert_eq!(p.words[1], 0o077102);
    }

    #[test]
    fn jsr_and_rts() {
        let src = "
        JSR PC, sub
        HALT
sub:    RTS PC
";
        let p = assemble(src).unwrap();
        assert_eq!(p.words[0], 0o004767);
        assert_eq!(p.words[3], 0o000207);
    }

    #[test]
    fn undefined_symbol_errors() {
        let e = assemble("MOV nowhere, R0").unwrap_err();
        assert!(e.message.contains("undefined symbol"));
    }

    #[test]
    fn duplicate_label_errors() {
        let e = assemble("a: NOP\na: NOP").unwrap_err();
        assert!(e.message.contains("duplicate label"));
    }

    #[test]
    fn branch_out_of_range_errors() {
        let mut src = String::from("start: NOP\n");
        for _ in 0..200 {
            src.push_str("NOP\n");
        }
        src.push_str("BR start\n");
        let e = assemble(&src).unwrap_err();
        assert!(e.message.contains("out of range"));
    }

    #[test]
    fn blkw_bounds_are_checked() {
        assert!(assemble(".blkw -1")
            .unwrap_err()
            .message
            .contains("out of range"));
        assert!(assemble(".blkw 99999").is_err());
        assert_eq!(assemble(".blkw 3").unwrap().words, vec![0, 0, 0]);
    }

    #[test]
    fn origin_offsets_symbols() {
        let p = assemble_at("x: .word 1", 0o1000).unwrap();
        assert_eq!(p.symbol("x"), Some(0o1000));
        assert_eq!(p.origin, 0o1000);
    }

    #[test]
    fn numbers_in_all_bases() {
        let p = assemble(".word 10, 0o10, 0x10, 'A, -1").unwrap();
        assert_eq!(p.words, vec![10, 8, 16, 65, 0o177777]);
    }
}

//! The processor status word: mode, priority, and condition codes.
//!
//! Layout follows the PDP-11 convention:
//!
//! ```text
//! 15 14   13 12   11..8   7 6 5   4   3 2 1 0
//! mode    prev    unused  prio    T   N Z V C
//! ```
//!
//! Mode `00` is Kernel, `11` is User (the PDP-11/34 has no Supervisor mode).

use crate::types::Word;

/// Processor mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Mode {
    /// Privileged: the separation kernel's domain.
    Kernel,
    /// Unprivileged: where regimes run.
    User,
}

impl Mode {
    fn bits(self) -> Word {
        match self {
            Mode::Kernel => 0b00,
            Mode::User => 0b11,
        }
    }

    fn from_bits(b: Word) -> Mode {
        if b & 0b11 == 0b11 {
            Mode::User
        } else {
            Mode::Kernel
        }
    }
}

/// The processor status word.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Psw(pub Word);

impl Psw {
    /// A kernel-mode PSW at the given priority with clear condition codes.
    pub fn kernel(priority: u8) -> Psw {
        let mut p = Psw(0);
        p.set_mode(Mode::Kernel);
        p.set_priority(priority);
        p
    }

    /// A user-mode PSW at priority 0 with clear condition codes.
    pub fn user() -> Psw {
        let mut p = Psw(0);
        p.set_mode(Mode::User);
        p
    }

    /// Current processor mode.
    pub fn mode(self) -> Mode {
        Mode::from_bits(self.0 >> 14)
    }

    /// Sets the current mode.
    pub fn set_mode(&mut self, m: Mode) {
        self.0 = (self.0 & !(0b11 << 14)) | (m.bits() << 14);
    }

    /// Previous processor mode (set by trap entry).
    pub fn previous_mode(self) -> Mode {
        Mode::from_bits(self.0 >> 12)
    }

    /// Sets the previous mode.
    pub fn set_previous_mode(&mut self, m: Mode) {
        self.0 = (self.0 & !(0b11 << 12)) | (m.bits() << 12);
    }

    /// Interrupt priority level (0–7).
    pub fn priority(self) -> u8 {
        ((self.0 >> 5) & 0b111) as u8
    }

    /// Sets the priority level (masked to 0–7).
    pub fn set_priority(&mut self, p: u8) {
        self.0 = (self.0 & !(0b111 << 5)) | (((p & 0b111) as Word) << 5);
    }

    /// The N (negative) condition code.
    pub fn n(self) -> bool {
        self.0 & 0b1000 != 0
    }

    /// The Z (zero) condition code.
    pub fn z(self) -> bool {
        self.0 & 0b0100 != 0
    }

    /// The V (overflow) condition code.
    pub fn v(self) -> bool {
        self.0 & 0b0010 != 0
    }

    /// The C (carry) condition code.
    pub fn c(self) -> bool {
        self.0 & 0b0001 != 0
    }

    /// Sets all four condition codes.
    pub fn set_nzvc(&mut self, n: bool, z: bool, v: bool, c: bool) {
        self.0 = (self.0 & !0b1111)
            | ((n as Word) << 3)
            | ((z as Word) << 2)
            | ((v as Word) << 1)
            | (c as Word);
    }

    /// Sets N and Z from a word value, clearing V; leaves C unchanged unless
    /// given.
    pub fn set_nz_w(&mut self, value: Word, v: bool, c: bool) {
        self.set_nzvc(crate::types::is_neg_w(value), value == 0, v, c);
    }

    /// The four condition-code bits as a nibble (for save/restore).
    pub fn cc_bits(self) -> Word {
        self.0 & 0b1111
    }

    /// Restores the condition-code nibble.
    pub fn set_cc_bits(&mut self, bits: Word) {
        self.0 = (self.0 & !0b1111) | (bits & 0b1111);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_roundtrip() {
        let mut p = Psw(0);
        p.set_mode(Mode::User);
        assert_eq!(p.mode(), Mode::User);
        p.set_mode(Mode::Kernel);
        assert_eq!(p.mode(), Mode::Kernel);
    }

    #[test]
    fn previous_mode_is_separate() {
        let mut p = Psw::user();
        p.set_previous_mode(Mode::Kernel);
        assert_eq!(p.mode(), Mode::User);
        assert_eq!(p.previous_mode(), Mode::Kernel);
    }

    #[test]
    fn priority_masked_to_three_bits() {
        let mut p = Psw(0);
        p.set_priority(7);
        assert_eq!(p.priority(), 7);
        p.set_priority(0b1111);
        assert_eq!(p.priority(), 7);
        p.set_priority(3);
        assert_eq!(p.priority(), 3);
    }

    #[test]
    fn condition_codes() {
        let mut p = Psw(0);
        p.set_nzvc(true, false, true, false);
        assert!(p.n());
        assert!(!p.z());
        assert!(p.v());
        assert!(!p.c());
        assert_eq!(p.cc_bits(), 0b1010);
        p.set_cc_bits(0b0101);
        assert!(!p.n() && p.z() && !p.v() && p.c());
    }

    #[test]
    fn set_nz_from_word() {
        let mut p = Psw(0);
        p.set_nz_w(0, false, true);
        assert!(p.z() && !p.n() && p.c());
        p.set_nz_w(0o100000, false, false);
        assert!(p.n() && !p.z());
    }

    #[test]
    fn kernel_constructor() {
        let p = Psw::kernel(7);
        assert_eq!(p.mode(), Mode::Kernel);
        assert_eq!(p.priority(), 7);
        assert_eq!(Psw::user().mode(), Mode::User);
    }
}

//! Physical memory: 18-bit byte-addressed space with a memory-mapped I/O
//! page at the top.
//!
//! The top 8 KiB of the physical address space (`0o760000..=0o777777`) is
//! the **I/O page**: reads and writes there are routed to device registers
//! by the machine, never to RAM. This is the property the SUE exploits —
//! "the memory management of a PDP-11 allows device registers to be
//! protected just like ordinary memory locations."

use crate::types::{PhysAddr, Word};

/// Total physical address space in bytes (18-bit addressing).
pub const PHYS_SIZE: u32 = 1 << 18;

/// First byte address of the I/O page.
pub const IO_BASE: u32 = PHYS_SIZE - 8 * 1024;

/// Physical RAM (the I/O page portion is never stored here).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Memory {
    bytes: Vec<u8>,
}

impl Default for Memory {
    fn default() -> Self {
        Memory::new()
    }
}

impl Memory {
    /// All-zero RAM covering the full non-I/O physical space.
    pub fn new() -> Memory {
        Memory {
            bytes: vec![0; IO_BASE as usize],
        }
    }

    /// True when the address falls in the I/O page.
    pub fn is_io(addr: PhysAddr) -> bool {
        addr >= IO_BASE
    }

    /// Reads a byte of RAM.
    ///
    /// # Panics
    ///
    /// Panics if `addr` is in the I/O page (the machine must route such
    /// accesses to devices) or beyond physical memory.
    pub fn read_byte(&self, addr: PhysAddr) -> u8 {
        self.bytes[addr as usize]
    }

    /// Writes a byte of RAM (same panics as [`Memory::read_byte`]).
    pub fn write_byte(&mut self, addr: PhysAddr, value: u8) {
        self.bytes[addr as usize] = value;
    }

    /// Reads a little-endian word from an even RAM address.
    pub fn read_word(&self, addr: PhysAddr) -> Word {
        debug_assert_eq!(addr & 1, 0, "word access to odd address {addr:o}");
        u16::from_le_bytes([self.bytes[addr as usize], self.bytes[addr as usize + 1]])
    }

    /// Writes a little-endian word to an even RAM address.
    pub fn write_word(&mut self, addr: PhysAddr, value: Word) {
        debug_assert_eq!(addr & 1, 0, "word access to odd address {addr:o}");
        let [lo, hi] = value.to_le_bytes();
        self.bytes[addr as usize] = lo;
        self.bytes[addr as usize + 1] = hi;
    }

    /// Copies a slice of words into RAM starting at `addr` (must be even).
    pub fn load_words(&mut self, addr: PhysAddr, words: &[Word]) {
        for (i, w) in words.iter().enumerate() {
            self.write_word(addr + 2 * i as u32, *w);
        }
    }

    /// Reads `len` words starting at `addr` (must be even).
    pub fn dump_words(&self, addr: PhysAddr, len: usize) -> Vec<Word> {
        (0..len)
            .map(|i| self.read_word(addr + 2 * i as u32))
            .collect()
    }

    /// A 64-bit FNV-1a fingerprint of a physical range, used by state
    /// snapshots.
    pub fn fingerprint(&self, start: PhysAddr, len: u32) -> u64 {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in &self.bytes[start as usize..(start + len) as usize] {
            h ^= *b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        h
    }

    /// The raw bytes of a physical range (for snapshot equality in the
    /// verification adapters).
    pub fn range(&self, start: PhysAddr, len: u32) -> &[u8] {
        &self.bytes[start as usize..(start + len) as usize]
    }

    /// Overwrites a physical range with `bytes` (bulk re-imaging: restarts,
    /// partition-content rotation in the symmetry layer).
    pub fn write_range(&mut self, start: PhysAddr, bytes: &[u8]) {
        self.bytes[start as usize..start as usize + bytes.len()].copy_from_slice(bytes);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn io_page_location() {
        assert_eq!(IO_BASE, 0o760000);
        assert!(Memory::is_io(0o777560));
        assert!(!Memory::is_io(0o757777));
    }

    #[test]
    fn words_are_little_endian() {
        let mut m = Memory::new();
        m.write_word(0o1000, 0o123456);
        assert_eq!(m.read_byte(0o1000), (0o123456u16 & 0xFF) as u8);
        assert_eq!(m.read_word(0o1000), 0o123456);
    }

    #[test]
    fn load_and_dump_roundtrip() {
        let mut m = Memory::new();
        let words = [1, 2, 3, 0o177777];
        m.load_words(0o2000, &words);
        assert_eq!(m.dump_words(0o2000, 4), words);
    }

    #[test]
    fn fingerprint_distinguishes_contents() {
        let mut a = Memory::new();
        let b = Memory::new();
        assert_eq!(a.fingerprint(0, 1024), b.fingerprint(0, 1024));
        a.write_byte(100, 7);
        assert_ne!(a.fingerprint(0, 1024), b.fingerprint(0, 1024));
        // Change outside the range does not affect it.
        assert_eq!(a.fingerprint(200, 100), b.fingerprint(200, 100));
    }

    #[test]
    fn range_returns_bytes() {
        let mut m = Memory::new();
        m.write_byte(10, 0xAB);
        assert_eq!(m.range(10, 2), &[0xAB, 0]);
    }
}

//! The memory management unit: PAR/PDR segment registers, PDP-11 style.
//!
//! Each processor mode (kernel, user) has eight segment descriptors. A
//! 16-bit virtual address selects a segment by its top three bits; the
//! descriptor supplies a physical base (the PAR, in 64-byte units), an
//! access field, and a length limit in 64-byte blocks (the PDR). The
//! separation kernel establishes each regime's partition — including any
//! device registers assigned to it — purely with these descriptors, and a
//! regime can then touch nothing else: every reference is checked here,
//! every violation aborts to the kernel.

use crate::psw::Mode;
use crate::types::{PhysAddr, Word};

/// Segment size in bytes (8 KiB).
pub const SEGMENT_SIZE: u32 = 8 * 1024;

/// Block granularity of base and length fields (64 bytes).
pub const BLOCK: u32 = 64;

/// Access permitted by a segment descriptor.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Access {
    /// The segment is unmapped; any reference aborts.
    #[default]
    None,
    /// Read-only.
    ReadOnly,
    /// Read and write.
    ReadWrite,
}

/// One PAR/PDR pair.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct SegmentDescriptor {
    /// Physical base address in 64-byte blocks (the PAR).
    pub base_blocks: u16,
    /// Segment length in 64-byte blocks, 0–128 (the PDR length field).
    pub len_blocks: u16,
    /// Access field.
    pub access: Access,
}

impl SegmentDescriptor {
    /// A descriptor mapping `len` bytes at physical `base` (both must be
    /// 64-byte aligned) with the given access.
    ///
    /// # Panics
    ///
    /// Panics when `base` or `len` is not 64-byte aligned, or when `len`
    /// exceeds the 8 KiB segment size.
    pub fn mapping(base: PhysAddr, len: u32, access: Access) -> SegmentDescriptor {
        assert_eq!(
            base % BLOCK,
            0,
            "segment base {base:#o} not 64-byte aligned"
        );
        assert_eq!(
            len % BLOCK,
            0,
            "segment length {len:#o} not 64-byte aligned"
        );
        assert!(len <= SEGMENT_SIZE, "segment length {len:#o} exceeds 8 KiB");
        SegmentDescriptor {
            base_blocks: (base / BLOCK) as u16,
            len_blocks: (len / BLOCK) as u16,
            access,
        }
    }

    /// Physical base address in bytes.
    pub fn base(&self) -> PhysAddr {
        self.base_blocks as u32 * BLOCK
    }

    /// Mapped length in bytes.
    pub fn len(&self) -> u32 {
        self.len_blocks as u32 * BLOCK
    }

    /// True when the descriptor maps nothing.
    pub fn is_empty(&self) -> bool {
        self.access == Access::None || self.len_blocks == 0
    }
}

/// Why a reference was refused.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct MmuAbort {
    /// The offending virtual address.
    pub vaddr: Word,
    /// The mode in which the reference was attempted.
    pub mode: Mode,
    /// Whether the reference was a write.
    pub write: bool,
    /// The reason.
    pub reason: AbortReason,
}

/// The reason a reference aborted.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum AbortReason {
    /// The segment is unmapped.
    NonResident,
    /// The offset exceeds the segment's length field.
    LengthViolation,
    /// A write was attempted to a read-only segment.
    ReadOnlyViolation,
}

/// The MMU: eight descriptors per mode plus an enable flag.
#[derive(Debug, Clone)]
pub struct Mmu {
    /// Whether relocation is enabled (SR0 bit 0). When disabled, virtual
    /// addresses map 1:1 into low memory, except that the top 8 KiB of
    /// virtual space maps onto the I/O page — the PDP-11 convention.
    pub enabled: bool,
    kernel: [SegmentDescriptor; 8],
    user: [SegmentDescriptor; 8],
    /// Translation generation, bumped on every descriptor change. The
    /// machine's software TLB tags its entries with this and treats any
    /// mismatch as a whole-TLB invalidation, so a PAR/PDR load — which is
    /// how every regime switch and partition re-image manifests — can never
    /// leave a stale translation behind. Starts at 1 so a default-tagged
    /// (zero) TLB entry can never match.
    generation: u64,
}

/// Generation is bookkeeping for the TLB, not architectural state: two MMUs
/// programmed identically translate identically regardless of how many
/// descriptor loads it took to get there. Equality and hashing therefore
/// ignore it, keeping `Machine` snapshots comparable across cache histories.
impl PartialEq for Mmu {
    fn eq(&self, other: &Mmu) -> bool {
        self.enabled == other.enabled && self.kernel == other.kernel && self.user == other.user
    }
}

impl Eq for Mmu {}

impl std::hash::Hash for Mmu {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.enabled.hash(state);
        self.kernel.hash(state);
        self.user.hash(state);
    }
}

impl Default for Mmu {
    fn default() -> Self {
        Mmu::new()
    }
}

impl Mmu {
    /// An MMU with relocation disabled and all segments unmapped.
    pub fn new() -> Mmu {
        Mmu {
            enabled: false,
            kernel: Default::default(),
            user: Default::default(),
            generation: 1,
        }
    }

    /// Sets a segment descriptor for a mode.
    pub fn set_segment(&mut self, mode: Mode, index: usize, d: SegmentDescriptor) {
        match mode {
            Mode::Kernel => self.kernel[index] = d,
            Mode::User => self.user[index] = d,
        }
        self.generation += 1;
    }

    /// Reads back a segment descriptor.
    pub fn segment(&self, mode: Mode, index: usize) -> SegmentDescriptor {
        match mode {
            Mode::Kernel => self.kernel[index],
            Mode::User => self.user[index],
        }
    }

    /// Clears all descriptors of a mode.
    pub fn clear_mode(&mut self, mode: Mode) {
        match mode {
            Mode::Kernel => self.kernel = Default::default(),
            Mode::User => self.user = Default::default(),
        }
        self.generation += 1;
    }

    /// The current translation generation. Any change to any descriptor
    /// changes this value; TLB entries tagged with an older generation are
    /// stale by definition.
    #[inline]
    pub fn generation(&self) -> u64 {
        self.generation
    }

    /// Explicitly invalidates all cached translations by bumping the
    /// generation, for embedders that mutate mapping-relevant state outside
    /// `set_segment`/`clear_mode`.
    pub fn invalidate(&mut self) {
        self.generation += 1;
    }

    /// Translates a virtual address, enforcing access and length checks.
    pub fn translate(&self, vaddr: Word, mode: Mode, write: bool) -> Result<PhysAddr, MmuAbort> {
        if !self.enabled {
            // 16-bit compatibility mapping: top 8 KiB of virtual space is
            // the I/O page.
            let v = vaddr as u32;
            return Ok(if v >= 0o160000 {
                crate::mem::IO_BASE + (v - 0o160000)
            } else {
                v
            });
        }
        let seg = (vaddr >> 13) as usize;
        let offset = (vaddr & 0o17777) as u32;
        let d = match mode {
            Mode::Kernel => &self.kernel[seg],
            Mode::User => &self.user[seg],
        };
        let abort = |reason| MmuAbort {
            vaddr,
            mode,
            write,
            reason,
        };
        match d.access {
            Access::None => return Err(abort(AbortReason::NonResident)),
            Access::ReadOnly if write => return Err(abort(AbortReason::ReadOnlyViolation)),
            _ => {}
        }
        if offset >= d.len() {
            return Err(abort(AbortReason::LengthViolation));
        }
        Ok(d.base() + offset)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn mapped_mmu() -> Mmu {
        let mut mmu = Mmu::new();
        mmu.enabled = true;
        mmu.set_segment(
            Mode::User,
            0,
            SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
        );
        mmu.set_segment(
            Mode::User,
            1,
            SegmentDescriptor::mapping(0o100000, 0o1000, Access::ReadOnly),
        );
        mmu
    }

    #[test]
    fn disabled_mmu_is_identity_with_io_window() {
        let mmu = Mmu::new();
        assert_eq!(mmu.translate(0o1000, Mode::User, true).unwrap(), 0o1000);
        assert_eq!(
            mmu.translate(0o177560, Mode::Kernel, false).unwrap(),
            crate::mem::IO_BASE + 0o17560
        );
    }

    #[test]
    fn translation_relocates_by_segment() {
        let mmu = mapped_mmu();
        assert_eq!(mmu.translate(0, Mode::User, false).unwrap(), 0o40000);
        assert_eq!(mmu.translate(0o100, Mode::User, true).unwrap(), 0o40100);
        // Segment 1 starts at virtual 0o20000.
        assert_eq!(mmu.translate(0o20000, Mode::User, false).unwrap(), 0o100000);
    }

    #[test]
    fn unmapped_segment_aborts() {
        let mmu = mapped_mmu();
        let err = mmu.translate(0o60000, Mode::User, false).unwrap_err();
        assert_eq!(err.reason, AbortReason::NonResident);
        assert_eq!(err.vaddr, 0o60000);
    }

    #[test]
    fn length_violation_aborts() {
        let mmu = mapped_mmu();
        // Segment 1 maps only 0o1000 bytes.
        let err = mmu.translate(0o21000, Mode::User, false).unwrap_err();
        assert_eq!(err.reason, AbortReason::LengthViolation);
        // Last mapped byte is fine.
        assert!(mmu.translate(0o20777, Mode::User, false).is_ok());
    }

    #[test]
    fn read_only_segment_rejects_writes() {
        let mmu = mapped_mmu();
        assert!(mmu.translate(0o20000, Mode::User, false).is_ok());
        let err = mmu.translate(0o20000, Mode::User, true).unwrap_err();
        assert_eq!(err.reason, AbortReason::ReadOnlyViolation);
    }

    #[test]
    fn modes_have_independent_maps() {
        let mmu = mapped_mmu();
        // Kernel has no mappings at all.
        assert!(mmu.translate(0, Mode::Kernel, false).is_err());
        assert!(mmu.translate(0, Mode::User, false).is_ok());
    }

    #[test]
    fn descriptor_accessors() {
        let d = SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite);
        assert_eq!(d.base(), 0o40000);
        assert_eq!(d.len(), 0o20000);
        assert!(!d.is_empty());
        assert!(SegmentDescriptor::default().is_empty());
    }

    #[test]
    #[should_panic(expected = "not 64-byte aligned")]
    fn misaligned_base_panics() {
        SegmentDescriptor::mapping(0o40001, 0o100, Access::ReadWrite);
    }

    #[test]
    fn generation_bumps_on_every_descriptor_change() {
        let mut mmu = Mmu::new();
        let g0 = mmu.generation();
        mmu.set_segment(
            Mode::User,
            0,
            SegmentDescriptor::mapping(0o40000, 0o20000, Access::ReadWrite),
        );
        let g1 = mmu.generation();
        assert!(g1 > g0);
        mmu.clear_mode(Mode::User);
        let g2 = mmu.generation();
        assert!(g2 > g1);
        mmu.invalidate();
        assert!(mmu.generation() > g2);
    }

    #[test]
    fn equality_and_hash_ignore_generation() {
        use std::collections::hash_map::DefaultHasher;
        use std::hash::{Hash, Hasher};
        let digest = |m: &Mmu| {
            let mut h = DefaultHasher::new();
            m.hash(&mut h);
            h.finish()
        };
        let mut a = mapped_mmu();
        let b = mapped_mmu();
        // Redundant reloads move the generation but not the mapping.
        let d = a.segment(Mode::User, 0);
        a.set_segment(Mode::User, 0, d);
        a.invalidate();
        assert_ne!(a.generation(), b.generation());
        assert_eq!(a, b);
        assert_eq!(digest(&a), digest(&b));
    }
}

//! Instruction set: decoding of the PDP-11 subset the machine executes.
//!
//! Encodings are the real PDP-11 ones (word opcodes in octal), covering the
//! double-operand group, the single-operand group, branches, subroutine
//! linkage, `SOB`, EIS `MUL`/`DIV`/`ASH`/`XOR`, traps, and condition-code
//! operates — enough to write real programs, which the examples do.

use crate::types::Word;
use core::fmt;

/// An addressing-mode/register pair (one six-bit operand field).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Operand {
    /// Addressing mode 0–7.
    pub mode: u8,
    /// Register 0–7 (6 = SP, 7 = PC).
    pub reg: u8,
}

impl Operand {
    fn from_bits(bits: Word) -> Operand {
        Operand {
            mode: ((bits >> 3) & 0o7) as u8,
            reg: (bits & 0o7) as u8,
        }
    }
}

impl fmt::Display for Operand {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let r = match self.reg {
            6 => "SP".to_string(),
            7 => "PC".to_string(),
            n => format!("R{n}"),
        };
        match self.mode {
            0 => write!(f, "{r}"),
            1 => write!(f, "({r})"),
            2 => write!(f, "({r})+"),
            3 => write!(f, "@({r})+"),
            4 => write!(f, "-({r})"),
            5 => write!(f, "@-({r})"),
            6 => write!(f, "X({r})"),
            _ => write!(f, "@X({r})"),
        }
    }
}

/// Double-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BinOp {
    /// Move source to destination.
    Mov,
    /// Compare (source − destination, codes only).
    Cmp,
    /// Bit test (source ∧ destination, codes only).
    Bit,
    /// Bit clear (destination ∧ ¬source).
    Bic,
    /// Bit set (destination ∨ source).
    Bis,
    /// Add (word only).
    Add,
    /// Subtract (word only).
    Sub,
}

/// Single-operand operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UnOp {
    /// Clear.
    Clr,
    /// Ones complement.
    Com,
    /// Increment.
    Inc,
    /// Decrement.
    Dec,
    /// Twos complement negate.
    Neg,
    /// Add carry.
    Adc,
    /// Subtract carry.
    Sbc,
    /// Test (codes only).
    Tst,
    /// Rotate right through carry.
    Ror,
    /// Rotate left through carry.
    Rol,
    /// Arithmetic shift right.
    Asr,
    /// Arithmetic shift left.
    Asl,
    /// Swap bytes (word only).
    Swab,
    /// Sign extend from condition code N (word only).
    Sxt,
}

/// Branch conditions.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BranchCond {
    /// Always.
    Br,
    /// Z = 0.
    Bne,
    /// Z = 1.
    Beq,
    /// N ⊕ V = 0.
    Bge,
    /// N ⊕ V = 1.
    Blt,
    /// Z ∨ (N ⊕ V) = 0.
    Bgt,
    /// Z ∨ (N ⊕ V) = 1.
    Ble,
    /// N = 0.
    Bpl,
    /// N = 1.
    Bmi,
    /// C ∨ Z = 0 (unsigned higher).
    Bhi,
    /// C ∨ Z = 1 (unsigned lower or same).
    Blos,
    /// V = 0.
    Bvc,
    /// V = 1.
    Bvs,
    /// C = 0.
    Bcc,
    /// C = 1.
    Bcs,
}

/// A decoded instruction (operand-extension words are fetched at execution
/// time by the addressing-mode machinery).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Instr {
    /// Double-operand group; `byte` selects the byte variant.
    Double {
        /// The operation.
        op: BinOp,
        /// Byte-sized variant.
        byte: bool,
        /// Source operand.
        src: Operand,
        /// Destination operand.
        dst: Operand,
    },
    /// Single-operand group.
    Single {
        /// The operation.
        op: UnOp,
        /// Byte-sized variant.
        byte: bool,
        /// Destination operand.
        dst: Operand,
    },
    /// Conditional branch with signed word offset.
    Branch {
        /// The condition.
        cond: BranchCond,
        /// Signed offset in words from the updated PC.
        offset: i8,
    },
    /// Jump.
    Jmp {
        /// Destination (mode 0 is illegal at execution time).
        dst: Operand,
    },
    /// Jump to subroutine.
    Jsr {
        /// Linkage register.
        reg: u8,
        /// Destination.
        dst: Operand,
    },
    /// Return from subroutine.
    Rts {
        /// Linkage register.
        reg: u8,
    },
    /// Subtract one and branch (backwards) if not zero.
    Sob {
        /// Counter register.
        reg: u8,
        /// Backward offset in words.
        offset: u8,
    },
    /// EIS multiply.
    Mul {
        /// Destination register (pair if even).
        reg: u8,
        /// Source operand.
        src: Operand,
    },
    /// EIS divide.
    Div {
        /// Destination register pair.
        reg: u8,
        /// Source operand.
        src: Operand,
    },
    /// EIS arithmetic shift.
    Ash {
        /// Register shifted.
        reg: u8,
        /// Shift-count operand.
        src: Operand,
    },
    /// Exclusive or (register with destination).
    Xor {
        /// Source register.
        reg: u8,
        /// Destination operand.
        dst: Operand,
    },
    /// Emulator trap with operand byte.
    Emt(u8),
    /// Trap instruction with operand byte.
    Trap(u8),
    /// Breakpoint trap.
    Bpt,
    /// I/O trap.
    Iot,
    /// Halt (privileged; traps in user mode).
    Halt,
    /// Wait for interrupt.
    Wait,
    /// Reset external bus (no-op in user mode).
    Reset,
    /// Return from interrupt.
    Rti,
    /// Return from interrupt, inhibiting trace traps.
    Rtt,
    /// Condition-code operate: set or clear the codes in `mask` (N=8, Z=4,
    /// V=2, C=1). `mask == 0` is NOP.
    CondCode {
        /// True to set, false to clear.
        set: bool,
        /// Which codes to affect.
        mask: u8,
    },
}

/// Decodes the base word of an instruction. Returns `None` for reserved or
/// unimplemented encodings (which trap as illegal instructions).
pub fn decode(word: Word) -> Option<Instr> {
    let byte = word & 0o100000 != 0;
    let top = (word >> 12) & 0o7;

    // Double-operand group (opcodes 1–6 in bits 14-12).
    if (1..=6).contains(&top) {
        let src = Operand::from_bits(word >> 6);
        let dst = Operand::from_bits(word);
        let op = match (top, byte) {
            (1, _) => BinOp::Mov,
            (2, _) => BinOp::Cmp,
            (3, _) => BinOp::Bit,
            (4, _) => BinOp::Bic,
            (5, _) => BinOp::Bis,
            (6, false) => BinOp::Add,
            (6, true) => BinOp::Sub,
            _ => unreachable!(),
        };
        // ADD/SUB have no byte variant; `byte` is part of the opcode there.
        let is_byte = byte && top != 6;
        return Some(Instr::Double {
            op,
            byte: is_byte,
            src,
            dst,
        });
    }

    // EIS group: 070–074.
    if top == 7 && !byte {
        let sub = (word >> 9) & 0o7;
        let reg = ((word >> 6) & 0o7) as u8;
        let opnd = Operand::from_bits(word);
        return match sub {
            0 => Some(Instr::Mul { reg, src: opnd }),
            1 => Some(Instr::Div { reg, src: opnd }),
            2 => Some(Instr::Ash { reg, src: opnd }),
            4 => Some(Instr::Xor { reg, dst: opnd }),
            7 => Some(Instr::Sob {
                reg,
                offset: (word & 0o77) as u8,
            }),
            _ => None,
        };
    }

    // Remaining opcodes have 00 or 10 in the top four bits.
    let op15_6 = word >> 6; // opcode field for single-operand group

    match word {
        0o000000 => return Some(Instr::Halt),
        0o000001 => return Some(Instr::Wait),
        0o000002 => return Some(Instr::Rti),
        0o000003 => return Some(Instr::Bpt),
        0o000004 => return Some(Instr::Iot),
        0o000005 => return Some(Instr::Reset),
        0o000006 => return Some(Instr::Rtt),
        _ => {}
    }

    if word & 0o177770 == 0o000200 {
        return Some(Instr::Rts {
            reg: (word & 0o7) as u8,
        });
    }

    if (0o000240..=0o000277).contains(&word) {
        // Condition-code operates: 00024x–00025x clear, 00026x–00027x set.
        let set = word & 0o20 != 0;
        return Some(Instr::CondCode {
            set,
            mask: (word & 0o17) as u8,
        });
    }

    if word & 0o177700 == 0o000100 {
        return Some(Instr::Jmp {
            dst: Operand::from_bits(word),
        });
    }

    if word & 0o177000 == 0o004000 {
        return Some(Instr::Jsr {
            reg: ((word >> 6) & 0o7) as u8,
            dst: Operand::from_bits(word),
        });
    }

    if word & 0o177400 == 0o104000 {
        return Some(Instr::Emt((word & 0o377) as u8));
    }
    if word & 0o177400 == 0o104400 {
        return Some(Instr::Trap((word & 0o377) as u8));
    }

    // Branches.
    let offset = (word & 0o377) as u8 as i8;
    let cond = match word & 0o177400 {
        0o000400 => Some(BranchCond::Br),
        0o001000 => Some(BranchCond::Bne),
        0o001400 => Some(BranchCond::Beq),
        0o002000 => Some(BranchCond::Bge),
        0o002400 => Some(BranchCond::Blt),
        0o003000 => Some(BranchCond::Bgt),
        0o003400 => Some(BranchCond::Ble),
        0o100000 => Some(BranchCond::Bpl),
        0o100400 => Some(BranchCond::Bmi),
        0o101000 => Some(BranchCond::Bhi),
        0o101400 => Some(BranchCond::Blos),
        0o102000 => Some(BranchCond::Bvc),
        0o102400 => Some(BranchCond::Bvs),
        0o103000 => Some(BranchCond::Bcc),
        0o103400 => Some(BranchCond::Bcs),
        _ => None,
    };
    if let Some(cond) = cond {
        return Some(Instr::Branch { cond, offset });
    }

    // Single-operand group: 0050DD–0063DD (and byte variants 1050DD–1063DD),
    // plus SWAB 0003DD and SXT 0067DD.
    if word & 0o177700 == 0o000300 {
        return Some(Instr::Single {
            op: UnOp::Swab,
            byte: false,
            dst: Operand::from_bits(word),
        });
    }
    if word & 0o177700 == 0o006700 {
        return Some(Instr::Single {
            op: UnOp::Sxt,
            byte: false,
            dst: Operand::from_bits(word),
        });
    }
    let un = match op15_6 & 0o777 {
        0o050 => Some(UnOp::Clr),
        0o051 => Some(UnOp::Com),
        0o052 => Some(UnOp::Inc),
        0o053 => Some(UnOp::Dec),
        0o054 => Some(UnOp::Neg),
        0o055 => Some(UnOp::Adc),
        0o056 => Some(UnOp::Sbc),
        0o057 => Some(UnOp::Tst),
        0o060 => Some(UnOp::Ror),
        0o061 => Some(UnOp::Rol),
        0o062 => Some(UnOp::Asr),
        0o063 => Some(UnOp::Asl),
        _ => None,
    };
    if let Some(op) = un {
        return Some(Instr::Single {
            op,
            byte,
            dst: Operand::from_bits(word),
        });
    }

    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn decode_mov() {
        // MOV R0, R1 = 010001.
        match decode(0o010001).unwrap() {
            Instr::Double { op, byte, src, dst } => {
                assert_eq!(op, BinOp::Mov);
                assert!(!byte);
                assert_eq!((src.mode, src.reg), (0, 0));
                assert_eq!((dst.mode, dst.reg), (0, 1));
            }
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn decode_movb_and_sub() {
        assert!(matches!(
            decode(0o110001).unwrap(),
            Instr::Double {
                op: BinOp::Mov,
                byte: true,
                ..
            }
        ));
        assert!(matches!(
            decode(0o160001).unwrap(),
            Instr::Double {
                op: BinOp::Sub,
                byte: false,
                ..
            }
        ));
        assert!(matches!(
            decode(0o060001).unwrap(),
            Instr::Double { op: BinOp::Add, .. }
        ));
    }

    #[test]
    fn decode_single_ops() {
        assert!(matches!(
            decode(0o005000).unwrap(),
            Instr::Single {
                op: UnOp::Clr,
                byte: false,
                ..
            }
        ));
        assert!(matches!(
            decode(0o105000).unwrap(),
            Instr::Single {
                op: UnOp::Clr,
                byte: true,
                ..
            }
        ));
        assert!(matches!(
            decode(0o005201).unwrap(),
            Instr::Single { op: UnOp::Inc, .. }
        ));
        assert!(matches!(
            decode(0o000301).unwrap(),
            Instr::Single { op: UnOp::Swab, .. }
        ));
    }

    #[test]
    fn decode_branches() {
        assert!(matches!(
            decode(0o000401).unwrap(),
            Instr::Branch {
                cond: BranchCond::Br,
                offset: 1
            }
        ));
        assert!(matches!(
            decode(0o001377).unwrap(),
            Instr::Branch {
                cond: BranchCond::Bne,
                offset: -1
            }
        ));
        assert!(matches!(
            decode(0o103400).unwrap(),
            Instr::Branch {
                cond: BranchCond::Bcs,
                offset: 0
            }
        ));
    }

    #[test]
    fn decode_control_flow() {
        assert!(matches!(decode(0o000111).unwrap(), Instr::Jmp { .. }));
        assert!(matches!(
            decode(0o004711).unwrap(),
            Instr::Jsr { reg: 7, .. }
        ));
        assert!(matches!(decode(0o000207).unwrap(), Instr::Rts { reg: 7 }));
        assert!(matches!(
            decode(0o077102).unwrap(),
            Instr::Sob { reg: 1, offset: 2 }
        ));
    }

    #[test]
    fn decode_traps_and_misc() {
        assert!(matches!(decode(0o104001).unwrap(), Instr::Emt(1)));
        assert!(matches!(decode(0o104401).unwrap(), Instr::Trap(1)));
        assert!(matches!(decode(0o000000).unwrap(), Instr::Halt));
        assert!(matches!(decode(0o000001).unwrap(), Instr::Wait));
        assert!(matches!(decode(0o000002).unwrap(), Instr::Rti));
        assert!(matches!(decode(0o000006).unwrap(), Instr::Rtt));
    }

    #[test]
    fn decode_condition_codes() {
        // NOP.
        assert!(matches!(
            decode(0o000240).unwrap(),
            Instr::CondCode {
                set: false,
                mask: 0
            }
        ));
        // CLC.
        assert!(matches!(
            decode(0o000241).unwrap(),
            Instr::CondCode {
                set: false,
                mask: 1
            }
        ));
        // SEZ.
        assert!(matches!(
            decode(0o000264).unwrap(),
            Instr::CondCode { set: true, mask: 4 }
        ));
    }

    #[test]
    fn decode_eis() {
        assert!(matches!(
            decode(0o070001).unwrap(),
            Instr::Mul { reg: 0, .. }
        ));
        assert!(matches!(
            decode(0o071001).unwrap(),
            Instr::Div { reg: 0, .. }
        ));
        assert!(matches!(
            decode(0o072001).unwrap(),
            Instr::Ash { reg: 0, .. }
        ));
        assert!(matches!(
            decode(0o074001).unwrap(),
            Instr::Xor { reg: 0, .. }
        ));
    }

    #[test]
    fn reserved_encodings_are_none() {
        assert_eq!(decode(0o000007), None);
        assert_eq!(decode(0o007000), None);
        assert_eq!(decode(0o075000), None);
    }

    #[test]
    fn operand_display() {
        let op = |mode, reg| Operand { mode, reg };
        assert_eq!(op(0, 0).to_string(), "R0");
        assert_eq!(op(1, 6).to_string(), "(SP)");
        assert_eq!(op(2, 7).to_string(), "(PC)+");
        assert_eq!(op(4, 6).to_string(), "-(SP)");
        assert_eq!(op(6, 2).to_string(), "X(R2)");
    }
}

//! A disassembler for the machine's instruction subset.
//!
//! Produces MACRO-11-flavoured text from memory words, consuming operand
//! extension words as the hardware would. Round-trips with the assembler
//! for every encodable instruction (see the property tests), and renders
//! reserved words as `.word` directives so any memory image can be listed.

use crate::isa::{decode, BinOp, BranchCond, Instr, Operand, UnOp};
use crate::types::Word;

/// One disassembled instruction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Listing {
    /// Byte address of the instruction's first word.
    pub addr: Word,
    /// The words consumed (1–3).
    pub words: Vec<Word>,
    /// The rendered text.
    pub text: String,
}

/// Disassembles one instruction starting at `words[idx]`; returns the
/// listing and the number of words consumed.
pub fn disassemble_at(words: &[Word], idx: usize, addr: Word) -> (Listing, usize) {
    let word = words[idx];
    let Some(instr) = decode(word) else {
        return (
            Listing {
                addr,
                words: vec![word],
                text: format!(".word {word:#08o}"),
            },
            1,
        );
    };
    let mut used = 1usize;
    let next_extra = |used: &mut usize| -> Word {
        let w = words.get(idx + *used).copied().unwrap_or(0);
        *used += 1;
        w
    };

    // Renders an operand, consuming its extension word if needed. `pc_now`
    // is the PC *after* this operand's extension word, needed for relative
    // modes.
    let operand = |op: Operand, used: &mut usize| -> String {
        let needs_extra = matches!(op.mode, 6 | 7) || (op.reg == 7 && matches!(op.mode, 2 | 3));
        if !needs_extra {
            return op.to_string();
        }
        let x = next_extra(used);
        match (op.mode, op.reg) {
            (2, 7) => format!("#{x:#o}"),
            (3, 7) => format!("@#{x:#o}"),
            (6, 7) => {
                let target = (addr as i32 + 2 * *used as i32 + x as i16 as i32) as u16;
                format!("{target:#o}") // PC-relative rendered as the target
            }
            (7, 7) => {
                let target = (addr as i32 + 2 * *used as i32 + x as i16 as i32) as u16;
                format!("@{target:#o}")
            }
            (6, r) => format!("{:#o}({})", x, reg_name(r)),
            (7, r) => format!("@{:#o}({})", x, reg_name(r)),
            _ => unreachable!(),
        }
    };

    let text = match instr {
        Instr::Double { op, byte, src, dst } => {
            let mnem = match (op, byte) {
                (BinOp::Mov, false) => "MOV",
                (BinOp::Mov, true) => "MOVB",
                (BinOp::Cmp, false) => "CMP",
                (BinOp::Cmp, true) => "CMPB",
                (BinOp::Bit, false) => "BIT",
                (BinOp::Bit, true) => "BITB",
                (BinOp::Bic, false) => "BIC",
                (BinOp::Bic, true) => "BICB",
                (BinOp::Bis, false) => "BIS",
                (BinOp::Bis, true) => "BISB",
                (BinOp::Add, _) => "ADD",
                (BinOp::Sub, _) => "SUB",
            };
            let s = operand(src, &mut used);
            let d = operand(dst, &mut used);
            format!("{mnem} {s}, {d}")
        }
        Instr::Single { op, byte, dst } => {
            let stem = match op {
                UnOp::Clr => "CLR",
                UnOp::Com => "COM",
                UnOp::Inc => "INC",
                UnOp::Dec => "DEC",
                UnOp::Neg => "NEG",
                UnOp::Adc => "ADC",
                UnOp::Sbc => "SBC",
                UnOp::Tst => "TST",
                UnOp::Ror => "ROR",
                UnOp::Rol => "ROL",
                UnOp::Asr => "ASR",
                UnOp::Asl => "ASL",
                UnOp::Swab => "SWAB",
                UnOp::Sxt => "SXT",
            };
            let mnem = if byte {
                format!("{stem}B")
            } else {
                stem.to_string()
            };
            let d = operand(dst, &mut used);
            format!("{mnem} {d}")
        }
        Instr::Branch { cond, offset } => {
            let mnem = match cond {
                BranchCond::Br => "BR",
                BranchCond::Bne => "BNE",
                BranchCond::Beq => "BEQ",
                BranchCond::Bge => "BGE",
                BranchCond::Blt => "BLT",
                BranchCond::Bgt => "BGT",
                BranchCond::Ble => "BLE",
                BranchCond::Bpl => "BPL",
                BranchCond::Bmi => "BMI",
                BranchCond::Bhi => "BHI",
                BranchCond::Blos => "BLOS",
                BranchCond::Bvc => "BVC",
                BranchCond::Bvs => "BVS",
                BranchCond::Bcc => "BCC",
                BranchCond::Bcs => "BCS",
            };
            let target = (addr as i32 + 2 + 2 * offset as i32) as u16;
            format!("{mnem} {target:#o}")
        }
        Instr::Jmp { dst } => format!("JMP {}", operand(dst, &mut used)),
        Instr::Jsr { reg, dst } => {
            format!("JSR {}, {}", reg_name(reg), operand(dst, &mut used))
        }
        Instr::Rts { reg } => format!("RTS {}", reg_name(reg)),
        Instr::Sob { reg, offset } => {
            let target = (addr as i32 + 2 - 2 * offset as i32) as u16;
            format!("SOB {}, {target:#o}", reg_name(reg))
        }
        Instr::Mul { reg, src } => format!("MUL {}, {}", operand(src, &mut used), reg_name(reg)),
        Instr::Div { reg, src } => format!("DIV {}, {}", operand(src, &mut used), reg_name(reg)),
        Instr::Ash { reg, src } => format!("ASH {}, {}", operand(src, &mut used), reg_name(reg)),
        Instr::Xor { reg, dst } => format!("XOR {}, {}", reg_name(reg), operand(dst, &mut used)),
        Instr::Emt(n) => format!("EMT {n:#o}"),
        Instr::Trap(n) => format!("TRAP {n:#o}"),
        Instr::Bpt => "BPT".into(),
        Instr::Iot => "IOT".into(),
        Instr::Halt => "HALT".into(),
        Instr::Wait => "WAIT".into(),
        Instr::Reset => "RESET".into(),
        Instr::Rti => "RTI".into(),
        Instr::Rtt => "RTT".into(),
        Instr::CondCode { set, mask } => cc_name(set, mask),
    };
    (
        Listing {
            addr,
            words: words[idx..idx + used].to_vec(),
            text,
        },
        used,
    )
}

/// Disassembles a word slice into a listing, starting at byte address
/// `origin`.
pub fn disassemble(words: &[Word], origin: Word) -> Vec<Listing> {
    let mut out = Vec::new();
    let mut idx = 0usize;
    while idx < words.len() {
        let addr = origin.wrapping_add(2 * idx as Word);
        let (listing, used) = disassemble_at(words, idx, addr);
        out.push(listing);
        idx += used;
    }
    out
}

fn reg_name(r: u8) -> &'static str {
    match r {
        0 => "R0",
        1 => "R1",
        2 => "R2",
        3 => "R3",
        4 => "R4",
        5 => "R5",
        6 => "SP",
        _ => "PC",
    }
}

fn cc_name(set: bool, mask: u8) -> String {
    match (set, mask) {
        (false, 0) | (true, 0) => "NOP".into(),
        (false, 0o1) => "CLC".into(),
        (false, 0o2) => "CLV".into(),
        (false, 0o4) => "CLZ".into(),
        (false, 0o10) => "CLN".into(),
        (false, 0o17) => "CCC".into(),
        (true, 0o1) => "SEC".into(),
        (true, 0o2) => "SEV".into(),
        (true, 0o4) => "SEZ".into(),
        (true, 0o10) => "SEN".into(),
        (true, 0o17) => "SCC".into(),
        (s, m) => format!(".word {:#08o}", 0o000240 | ((s as Word) << 4) | m as Word),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::asm::assemble;

    fn dis(src: &str) -> Vec<String> {
        let prog = assemble(src).unwrap();
        disassemble(&prog.words, 0)
            .into_iter()
            .map(|l| l.text)
            .collect()
    }

    #[test]
    fn simple_instructions() {
        assert_eq!(dis("MOV R0, R1"), vec!["MOV R0, R1"]);
        assert_eq!(dis("HALT\nWAIT\nRTI"), vec!["HALT", "WAIT", "RTI"]);
        assert_eq!(dis("CLRB (R2)+"), vec!["CLRB (R2)+"]);
        assert_eq!(dis("TRAP 3"), vec!["TRAP 0o3"]);
    }

    #[test]
    fn immediate_and_absolute() {
        assert_eq!(dis("MOV #5, R0"), vec!["MOV #0o5, R0"]);
        assert_eq!(dis("MOV @#0o177560, R1"), vec!["MOV @#0o177560, R1"]);
        assert_eq!(dis("MOV 4(R1), R0"), vec!["MOV 0o4(R1), R0"]);
    }

    #[test]
    fn branches_render_targets() {
        let texts = dis("loop: NOP\nBR loop");
        assert_eq!(texts, vec!["NOP", "BR 0o0"]);
    }

    #[test]
    fn relative_mode_renders_target_address() {
        // `MOV counter, R0` at 0, counter at byte 6.
        let texts = dis("MOV counter, R0\nHALT\ncounter: .word 42");
        assert_eq!(texts[0], "MOV 0o6, R0");
    }

    #[test]
    fn reserved_words_become_data() {
        let texts = disassemble(&[0o000007], 0);
        assert_eq!(texts[0].text, ".word 0o000007");
    }

    #[test]
    fn sob_renders_backward_target() {
        let texts = dis("loop: NOP\nSOB R1, loop");
        assert_eq!(texts[1], "SOB R1, 0o0");
    }

    #[test]
    fn roundtrip_reassembles_identically() {
        let src = "
start:  MOV #10, R0
        CLR R1
loop:   ADD R0, R1
        SOB R0, loop
        CMP R1, #55
        BNE start
        JSR PC, 0o40
        TRAP 1
        HALT
";
        let prog = assemble(src).unwrap();
        let listing = disassemble(&prog.words, 0);
        let round: Vec<String> = listing.iter().map(|l| l.text.clone()).collect();
        let reassembled = assemble(&round.join("\n")).unwrap();
        assert_eq!(reassembled.words, prog.words, "{round:?}");
    }
}

//! The machine: CPU + MMU + memory + devices, executing unprivileged code.
//!
//! [`Machine::step`] advances time by one unit: devices tick, DMA requests
//! are honoured or refused, a pending interrupt above the CPU priority is
//! surfaced, or one instruction executes. Everything privileged — trap
//! handling, interrupt dispatch, register save/restore, MMU loading — is the
//! embedder's job: the separation kernel in `sep-kernel` receives each
//! [`Event`] and manipulates the machine as the SUE's handlers would.

use crate::cpu::Cpu;
use crate::dev::{DeviceSet, DmaOp, InterruptRequest};
use crate::hotpath::{Cached, DecodeCache, FetchWin, Tlb};
use crate::isa::{decode, BinOp, BranchCond, Instr, Operand, UnOp};
use crate::mem::{Memory, IO_BASE};
use crate::mmu::{Access, Mmu, MmuAbort};
use crate::psw::Psw;
use crate::superblock::{
    SbOp, SbTerm, SuperBlock, SuperCache, HOT_THRESHOLD, MAX_BLOCK_OPS, NO_SUCC,
};
use crate::types::{is_neg_b, is_neg_w, sign_extend_byte, PhysAddr, Word, SIGN_W};
use sep_obs::{ObsEvent, Recorder, TrapKind, NO_CONTEXT};

/// A condition that transfers control to the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Memory-management abort.
    Mmu(MmuAbort),
    /// Word access to an odd address.
    OddAddress {
        /// The offending virtual address.
        vaddr: Word,
    },
    /// Reference to an I/O-page address with no device (bus timeout).
    BusError {
        /// The offending physical address.
        addr: PhysAddr,
    },
    /// Reserved or unimplemented instruction.
    Illegal {
        /// The instruction word.
        word: Word,
    },
    /// EMT instruction with its operand byte.
    Emt(u8),
    /// TRAP instruction with its operand byte — the kernel-call vehicle.
    TrapInstr(u8),
    /// Breakpoint trap.
    Bpt,
    /// I/O trap instruction.
    Iot,
    /// HALT attempted in user mode (privilege violation).
    Halt,
}

/// What one call to [`Machine::step`] did.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Event {
    /// One instruction executed normally.
    Ran,
    /// The CPU executed WAIT: it idles until an interrupt.
    Wait,
    /// A device interrupt is pending above the CPU priority. The kernel must
    /// field it (and acknowledge the device).
    Interrupt {
        /// Index of the requesting device.
        device: usize,
        /// The request (vector and priority).
        request: InterruptRequest,
    },
    /// A trap transferred control to the kernel.
    Trap(Trap),
    /// A device attempted DMA while DMA is excluded from the system.
    DmaBlocked {
        /// Index of the offending device.
        device: usize,
    },
}

/// The complete machine.
#[derive(Debug)]
pub struct Machine {
    /// CPU registers and PSW.
    pub cpu: Cpu,
    /// Memory management unit.
    pub mmu: Mmu,
    /// Physical RAM.
    pub mem: Memory,
    /// Attached peripherals.
    pub devices: DeviceSet,
    /// Whether DMA transfers are honoured. The SUE's answer is `false`.
    pub allow_dma: bool,
    /// Machine steps taken.
    pub steps: u64,
    /// Instructions retired.
    pub instructions: u64,
    /// Observability recorder. Counters are always on; event tracing is
    /// off unless the embedder enables it. Not part of machine state: the
    /// verification adapter's state vector never reads it.
    pub obs: Recorder,
    /// Whether the fast-path caches are consulted. On by default; the
    /// differential test suite runs both settings and pins them identical.
    hotpath: bool,
    /// Decoded-instruction cache (pure memo of `decode`; never invalidates).
    icache: DecodeCache,
    /// Software TLB, invalidated wholesale whenever the MMU generation
    /// moves (every PAR/PDR load).
    tlb: Tlb,
    /// One-entry instruction-fetch window in front of the TLB.
    win: FetchWin,
    /// Whether the superblock tier compiles and chains hot straight-line
    /// runs. Meaningful only while `hotpath` is also on.
    superblocks: bool,
    /// Compiled superblocks plus the hotness profile that feeds them.
    sb: SuperCache,
    /// Write guard over the physical span of compiled code: a machine-path
    /// store into `[sb_guard_lo, sb_guard_hi)` sets `sb_dirty`, which drops
    /// every block before the tier runs again. Kept directly on the machine
    /// (not in [`SuperCache`]) so the store hot path pays two compares.
    sb_guard_lo: PhysAddr,
    sb_guard_hi: PhysAddr,
    sb_dirty: bool,
}

/// Cloning resets the fast-path caches: they memoize pure functions, so an
/// empty cache is always a valid (and cheap) starting point, and a cloned
/// machine — a verify-template snapshot or a `FaultPolicy::Restart`
/// re-image source — must behave byte-identically to a fresh boot.
impl Clone for Machine {
    fn clone(&self) -> Machine {
        Machine {
            cpu: self.cpu,
            mmu: self.mmu.clone(),
            mem: self.mem.clone(),
            devices: self.devices.clone(),
            allow_dma: self.allow_dma,
            steps: self.steps,
            instructions: self.instructions,
            obs: self.obs.clone(),
            hotpath: self.hotpath,
            icache: DecodeCache::new(),
            tlb: Tlb::new(),
            win: FetchWin::new(),
            superblocks: self.superblocks,
            sb: SuperCache::default(),
            sb_guard_lo: PhysAddr::MAX,
            sb_guard_hi: 0,
            sb_dirty: false,
        }
    }
}

/// Where an operand lives after addressing-mode resolution.
#[derive(Debug, Clone, Copy)]
enum Place {
    Reg(u8),
    Mem(Word),
}

impl Default for Machine {
    fn default() -> Self {
        Machine::new()
    }
}

impl Machine {
    /// A machine with zeroed CPU, empty MMU, zero RAM, and no devices.
    pub fn new() -> Machine {
        Machine {
            cpu: Cpu::new(),
            mmu: Mmu::new(),
            mem: Memory::new(),
            devices: DeviceSet::new(),
            allow_dma: false,
            steps: 0,
            instructions: 0,
            obs: Recorder::disabled(),
            hotpath: true,
            icache: DecodeCache::new(),
            tlb: Tlb::new(),
            win: FetchWin::new(),
            superblocks: true,
            sb: SuperCache::default(),
            sb_guard_lo: PhysAddr::MAX,
            sb_guard_hi: 0,
            sb_dirty: false,
        }
    }

    /// Enables or disables the fast-path caches (decode cache + software
    /// TLB + batched stepping). Turning the fast path off also drops any
    /// cached entries, so a subsequent re-enable starts cold.
    pub fn set_hotpath(&mut self, on: bool) {
        self.hotpath = on;
        if !on {
            self.icache = DecodeCache::new();
            self.tlb = Tlb::new();
            self.win = FetchWin::new();
            self.sb_drop_all();
        }
    }

    /// Whether the fast-path caches are in use.
    pub fn hotpath(&self) -> bool {
        self.hotpath
    }

    /// Enables or disables the superblock tier (hot-run compilation and
    /// chaining on top of the decode cache). On by default, but inert
    /// unless the fast path is also on. Turning it off drops all compiled
    /// blocks and the hotness profile, so a re-enable starts cold.
    pub fn set_superblocks(&mut self, on: bool) {
        self.superblocks = on;
        if !on {
            self.sb_drop_all();
        }
    }

    /// Whether the superblock tier is in use.
    pub fn superblocks(&self) -> bool {
        self.superblocks
    }

    /// Drops every compiled superblock, the hotness profile, and the write
    /// guard — the tier's "forget everything" switch.
    fn sb_drop_all(&mut self) {
        self.sb = SuperCache::default();
        self.sb_guard_lo = PhysAddr::MAX;
        self.sb_guard_hi = 0;
        self.sb_dirty = false;
    }

    /// Advances the machine one step: the tick phase (device time and DMA)
    /// followed by the execution phase (interrupt surfacing or one
    /// instruction).
    pub fn step(&mut self) -> Event {
        if let Some(ev) = self.tick_phase() {
            return ev;
        }
        self.exec_phase()
    }

    /// The tick phase: devices advance one time unit and DMA requests are
    /// honoured or refused. In the formal model of `sep-model` this phase is
    /// the `INPUT` stage — autonomous device activity — and is kept separate
    /// from instruction execution so the Proof of Separability adapter can
    /// drive the two stages independently.
    ///
    /// Returns `Some(event)` only when a DMA attempt was blocked.
    pub fn tick_phase(&mut self) -> Option<Event> {
        self.steps += 1;
        self.devices.tick_all();
        let dma_ops = self.devices.collect_dma();
        for (device, op) in dma_ops {
            if !self.allow_dma {
                self.obs.metrics.device_mut(device).dma_blocked += 1;
                let ts = self.instructions;
                self.obs.emit(
                    ts,
                    ObsEvent::DmaBlocked {
                        device: device as u16,
                    },
                );
                return Some(Event::DmaBlocked { device });
            }
            match op {
                DmaOp::WriteMem { addr, data } => {
                    for (i, b) in data.iter().enumerate() {
                        self.mem.write_byte(addr + i as u32, *b);
                    }
                }
                DmaOp::ReadMem { addr, len } => {
                    let data: Vec<u8> = (0..len).map(|i| self.mem.read_byte(addr + i)).collect();
                    if let Some(d) = self.devices.get_mut(device) {
                        d.dma_complete(data);
                    }
                }
            }
        }
        None
    }

    /// The execution phase: surface a pending interrupt above the CPU
    /// priority, or execute one instruction.
    pub fn exec_phase(&mut self) -> Event {
        if let Some((device, request)) = self.devices.highest_pending(self.cpu.psw.priority()) {
            return Event::Interrupt { device, request };
        }
        let event = match self.execute_one() {
            Ok(ev) => ev,
            Err(t) => Event::Trap(t),
        };
        if let Event::Trap(trap) = &event {
            self.note_trap(*trap);
        }
        event
    }

    /// Records a trap in the observability registry: totals, per-context
    /// attribution, and (with tracing on) a trap event plus MMU detail.
    fn note_trap(&mut self, trap: Trap) {
        self.obs.metrics.totals.traps += 1;
        let ctx = self.obs.context();
        if ctx != NO_CONTEXT {
            self.obs.metrics.regime_mut(ctx as usize).traps += 1;
        }
        let ts = self.instructions;
        self.obs.emit(
            ts,
            ObsEvent::Trap {
                regime: ctx,
                kind: trap_kind(trap),
            },
        );
        if let Trap::Mmu(abort) = trap {
            if ctx != NO_CONTEXT {
                self.obs.metrics.regime_mut(ctx as usize).mmu_faults += 1;
            }
            self.obs.emit(
                ts,
                ObsEvent::MmuFault {
                    regime: ctx,
                    vaddr: abort.vaddr,
                    write: abort.write,
                },
            );
        }
    }

    /// Runs until the next non-[`Event::Ran`] event, bounded by `max_steps`.
    /// Returns the event and the number of steps taken, or `None` if the
    /// bound was reached.
    pub fn run_until_event(&mut self, max_steps: u64) -> Option<(Event, u64)> {
        for n in 1..=max_steps {
            let ev = self.step();
            if ev != Event::Ran {
                return Some((ev, n));
            }
        }
        None
    }

    /// Runs up to `n` steps, returning the number of steps taken and the
    /// first non-[`Event::Ran`] event if one cut the batch short.
    ///
    /// Semantically identical to calling [`Machine::step`] `n` times and
    /// stopping at the first non-`Ran` result — with devices attached (or
    /// DMA allowed) it does exactly that, since device time must advance
    /// step by step. A deviceless machine takes a batched loop instead:
    /// the per-step device scan disappears and the per-instruction recorder
    /// dispatch collapses into one bump at the end (the context cannot
    /// change mid-batch — only the embedder switches context, between
    /// calls), so instruction-count benches measure the engine rather than
    /// the bookkeeping.
    pub fn step_n(&mut self, n: u64) -> (u64, Option<Event>) {
        if !self.devices.is_empty() || self.allow_dma {
            for k in 1..=n {
                let ev = self.step();
                if ev != Event::Ran {
                    return (k, Some(ev));
                }
            }
            return (n, None);
        }
        let retired_before = self.instructions;
        let mut taken = 0;
        let mut outcome = None;
        let sb_tier = self.hotpath && self.superblocks;
        if sb_tier {
            self.sb_begin_batch();
        }
        // The tier is entered right after a backward control transfer (the
        // only place hot entries live) — and once at batch start, since the
        // PC may be resuming a compiled loop from the previous batch.
        let mut try_tier = sb_tier && self.sb.has_blocks();
        while taken < n {
            if try_tier {
                try_tier = false;
                let (advanced, tier_outcome) = self.run_superblocks(n - taken);
                taken += advanced;
                if tier_outcome.is_some() {
                    outcome = tier_outcome;
                    break;
                }
                if taken >= n {
                    break;
                }
            }
            self.steps += 1;
            taken += 1;
            let pc_before = self.cpu.pc;
            match self.execute_inner(false) {
                Ok(Event::Ran) => {
                    if sb_tier && self.cpu.pc <= pc_before {
                        try_tier = self.sb_note_backward_edge();
                    }
                }
                Ok(ev) => {
                    outcome = Some(ev);
                    break;
                }
                Err(t) => {
                    outcome = Some(Event::Trap(t));
                    break;
                }
            }
        }
        let retired = self.instructions - retired_before;
        if retired > 0 {
            self.obs.instructions_retired(retired);
        }
        if let Some(Event::Trap(trap)) = &outcome {
            self.note_trap(*trap);
        }
        (taken, outcome)
    }

    // ------------------------------------------------------------------
    // The superblock tier (see the `superblock` module docs).
    // ------------------------------------------------------------------

    /// Batch prologue for the tier: drop every block if the MMU generation
    /// or enable flag moved since the blocks were compiled, or if a guarded
    /// store landed in compiled code, then open a new validation batch.
    fn sb_begin_batch(&mut self) {
        let generation = self.mmu.generation();
        let enabled = self.mmu.enabled;
        if self.sb.stale(generation, enabled) || self.sb_dirty {
            let had = self.sb.has_blocks();
            self.sb.flush(generation, enabled);
            self.sb_guard_lo = PhysAddr::MAX;
            self.sb_guard_hi = 0;
            self.sb_dirty = false;
            if had {
                self.obs.metrics.hotpath.sb_flushes += 1;
            }
        }
        self.sb.batch += 1;
    }

    /// Profiles a backward control transfer that just landed on
    /// `self.cpu.pc`: bump the target's heat and compile it when it crosses
    /// the threshold. Returns true when a compiled block now exists at the
    /// PC, i.e. the tier is worth entering.
    fn sb_note_backward_edge(&mut self) -> bool {
        let pc = self.cpu.pc;
        let mode = self.cpu.psw.mode();
        if self.sb.lookup(pc, mode).is_some() {
            return true;
        }
        if self.sb.has_failed(pc, mode) || self.sb.heat_bump(pc, mode) != HOT_THRESHOLD {
            return false;
        }
        let Some(block) = self.compile_superblock(pc) else {
            self.sb.mark_failed(pc, mode);
            return false;
        };
        let Some(idx) = self.sb.insert(mode, block) else {
            return false; // cache full; wait for the next flush
        };
        self.obs.metrics.hotpath.sb_compiles += 1;
        // The block was compiled from live memory, so it is valid for the
        // rest of this batch without a memcmp.
        let batch = self.sb.batch;
        let b = &mut self.sb.blocks[idx as usize];
        b.validated_batch = batch;
        let (lo, hi) = (b.phys, b.phys + b.image.len() as u32);
        self.sb_guard_lo = self.sb_guard_lo.min(lo);
        self.sb_guard_hi = self.sb_guard_hi.max(hi);
        true
    }

    /// Runs compiled superblocks starting at the current PC until the step
    /// budget runs low, a side exit fires, or control leaves compiled code.
    /// Returns the steps consumed and the event that cut execution short,
    /// if any. The cache is moved out of `self` for the duration so block
    /// data and the mutable machine can coexist; the write guard lives on
    /// `self` and stays armed throughout.
    fn run_superblocks(&mut self, budget: u64) -> (u64, Option<Event>) {
        let mut sb = std::mem::take(&mut self.sb);
        let result = self.superblock_loop(&mut sb, budget);
        self.sb = sb;
        result
    }

    fn superblock_loop(&mut self, sb: &mut SuperCache, budget: u64) -> (u64, Option<Event>) {
        let mode = self.cpu.psw.mode();
        // A guarded store earlier in this batch (per-instruction path)
        // poisons every block: drop them all before trusting any image.
        if self.sb_dirty {
            sb.flush(self.mmu.generation(), self.mmu.enabled);
            self.sb_guard_lo = PhysAddr::MAX;
            self.sb_guard_hi = 0;
            self.sb_dirty = false;
            self.obs.metrics.hotpath.sb_flushes += 1;
            return (0, None);
        }
        let Some(first) = sb.lookup(self.cpu.pc, mode) else {
            return (0, None);
        };
        let mut idx = first;
        let mut advanced: u64 = 0;
        let mut outcome = None;
        let (mut hits, mut chains, mut compiles, mut flushes) = (0u64, 0u64, 0u64, 0u64);
        'outer: loop {
            let block = &sb.blocks[idx as usize];
            if block.cost > budget - advanced {
                break; // not enough budget for a full run; step singly
            }
            // Once per batch, prove the block's instruction bytes are still
            // exactly what was compiled (re-imaging, kernel copies, DMA and
            // host pokes all happen between batches; in-batch stores trip
            // the write guard instead). Interior ops never write memory, so
            // a block can never invalidate itself mid-flight.
            if block.validated_batch != sb.batch {
                if self.mem.range(block.phys, block.image.len() as u32) != &block.image[..] {
                    sb.flush(self.mmu.generation(), self.mmu.enabled);
                    self.sb_guard_lo = PhysAddr::MAX;
                    self.sb_guard_hi = 0;
                    flushes += 1;
                    break;
                }
                sb.blocks[idx as usize].validated_batch = sb.batch;
            }
            let block = &sb.blocks[idx as usize];
            let term = block.term;
            let cost = block.cost;
            let entry = block.entry;
            let ops = &block.ops;
            if block.pure {
                // Pure blocks cannot trap and cannot touch memory: hand the
                // CPU alone to the specialized executor, which follows the
                // self-chain internally at register speed and returns how
                // many complete runs it retired (at least one — the budget
                // check above guarantees headroom for the first).
                let runs =
                    run_pure_block(&mut self.cpu, ops, term, entry, (budget - advanced) / cost);
                advanced += runs * cost;
                hits += runs;
                chains += runs - 1;
                if matches!(term, SbTerm::FallThrough { .. }) {
                    break; // control left compiled code
                }
            } else {
                // Run the block, and rerun it in place while its terminator
                // lands back on its own entry (the tight-loop steady state):
                // the self-chain needs no new validation — memory cannot change
                // under it — and touches no cache structure at all.
                loop {
                    // Interiors. The pure register forms skip PC maintenance
                    // entirely (they cannot trap and cannot observe the PC —
                    // classification admits only R0–R5) and hit the register
                    // file directly; generic forms get the PC pre-set to its
                    // post-fetch value so extension-word fetches, PC-relative
                    // operands, and traps behave exactly as on the
                    // per-instruction path.
                    let mut exit: Option<(u64, Result<Event, Trap>)> = None;
                    for (k, op) in ops.iter().enumerate() {
                        let r = match *op {
                            SbOp::RegReg { op, src, dst } => {
                                let s = self.cpu.r[src as usize];
                                let d = self.cpu.r[dst as usize];
                                let (wb, (n, z, v, c)) = alu2_w(op, s, d, self.cpu.psw.c());
                                if let Some(r) = wb {
                                    self.cpu.r[dst as usize] = r;
                                }
                                self.cpu.psw.set_nzvc(n, z, v, c);
                                continue;
                            }
                            SbOp::ImmReg { op, imm, dst } => {
                                let d = self.cpu.r[dst as usize];
                                let (wb, (n, z, v, c)) = alu2_w(op, imm, d, self.cpu.psw.c());
                                if let Some(r) = wb {
                                    self.cpu.r[dst as usize] = r;
                                }
                                self.cpu.psw.set_nzvc(n, z, v, c);
                                continue;
                            }
                            SbOp::OneReg { op, reg } => {
                                let d = self.cpu.r[reg as usize];
                                let (wb, (n, z, v, c)) =
                                    alu1_w(op, d, self.cpu.psw.n(), self.cpu.psw.c());
                                if let Some(r) = wb {
                                    self.cpu.r[reg as usize] = r;
                                }
                                self.cpu.psw.set_nzvc(n, z, v, c);
                                continue;
                            }
                            SbOp::Generic {
                                word,
                                instr,
                                pc_after,
                            } => {
                                self.cpu.pc = pc_after;
                                self.dispatch(word, instr)
                            }
                        };
                        match r {
                            Ok(Event::Ran) => {}
                            other => {
                                // Side exit mid-block: op k ran (and trapped).
                                // The trapping instruction counts as retired,
                                // exactly as `execute_inner` counts before
                                // dispatching.
                                exit = Some((k as u64 + 1, other));
                                break;
                            }
                        }
                    }
                    if let Some((done, r)) = exit {
                        advanced += done;
                        outcome = Some(match r {
                            Ok(ev) => ev,
                            Err(t) => Event::Trap(t),
                        });
                        break 'outer;
                    }
                    // Full block: run the terminator and account exactly.
                    match term {
                        SbTerm::Branch {
                            cond,
                            offset,
                            pc_after,
                        } => {
                            self.cpu.pc = pc_after;
                            self.exec_branch(cond, offset);
                        }
                        SbTerm::Sob {
                            reg,
                            offset,
                            pc_after,
                            ..
                        } => {
                            self.cpu.pc = pc_after;
                            let v = self.cpu.reg(reg).wrapping_sub(1);
                            self.cpu.set_reg(reg, v);
                            if v != 0 {
                                self.cpu.pc = self.cpu.pc.wrapping_sub(2 * offset as Word);
                            }
                        }
                        SbTerm::FallThrough { next_pc } => {
                            self.cpu.pc = next_pc;
                        }
                    }
                    advanced += cost;
                    hits += 1;
                    if matches!(term, SbTerm::FallThrough { .. }) {
                        break 'outer; // control left compiled code
                    }
                    if self.cpu.pc == entry && cost <= budget - advanced {
                        chains += 1;
                        continue;
                    }
                    break;
                }
            }
            // Chain to the successor block: the memo first, then the index,
            // then chain-compilation — a terminator target reached from a
            // hot block is hot by construction, so it skips the heat count.
            let next_pc = self.cpu.pc;
            if next_pc == entry {
                break; // the self-loop stopped only because the budget ran out
            }
            let b = &sb.blocks[idx as usize];
            let next_idx = if b.succ_idx != NO_SUCC && b.succ_pc == next_pc {
                b.succ_idx
            } else if let Some(i) = sb.lookup(next_pc, mode) {
                let b = &mut sb.blocks[idx as usize];
                b.succ_pc = next_pc;
                b.succ_idx = i;
                i
            } else {
                if sb.has_failed(next_pc, mode) {
                    break;
                }
                let Some(nb) = self.compile_superblock(next_pc) else {
                    sb.mark_failed(next_pc, mode);
                    break;
                };
                let Some(i) = sb.insert(mode, nb) else {
                    break; // cache full; wait for the next flush
                };
                compiles += 1;
                let batch = sb.batch;
                let nb = &mut sb.blocks[i as usize];
                nb.validated_batch = batch;
                let (lo, hi) = (nb.phys, nb.phys + nb.image.len() as u32);
                self.sb_guard_lo = self.sb_guard_lo.min(lo);
                self.sb_guard_hi = self.sb_guard_hi.max(hi);
                let b = &mut sb.blocks[idx as usize];
                b.succ_pc = next_pc;
                b.succ_idx = i;
                i
            };
            chains += 1;
            idx = next_idx;
        }
        // Deviceless batches equate steps and instructions, and nothing
        // inside the tier reads either counter, so both flush once here —
        // including the instructions of a partially retired block, so
        // `step_n`'s recorder accounting stays exact across side exits.
        self.steps += advanced;
        self.instructions += advanced;
        let h = &mut self.obs.metrics.hotpath;
        h.sb_hits += hits;
        h.sb_chains += chains;
        h.sb_compiles += compiles;
        h.sb_flushes += flushes;
        h.sb_instructions += advanced;
        (advanced, outcome)
    }

    /// Compiles the straight-line run starting at `entry` into a
    /// [`SuperBlock`], or `None` when nothing worth compiling starts there.
    ///
    /// The instruction-stream span is translated **once, here**: under the
    /// MMU the entry's whole segment must be resident and lie entirely in
    /// RAM (never the I/O page, so a block can never shadow live device
    /// registers); with the MMU off the identity-mapped RAM region plays
    /// that role. Compilation stops at the segment limit, so a PDR length
    /// boundary bisects a run and the instruction beyond it traps on the
    /// per-instruction path exactly as it would have without the tier.
    /// Reads are pure (`Mmu::translate` + direct RAM reads) — compiling
    /// perturbs no cache or counter.
    fn compile_superblock(&self, entry: Word) -> Option<SuperBlock> {
        if entry & 1 != 0 {
            return None;
        }
        let mode = self.cpu.psw.mode();
        // The virtual window [lo, hi) the run may occupy and the physical
        // base it maps to.
        let (lo, hi, base) = if self.mmu.enabled {
            let seg = entry >> 13;
            let d = self.mmu.segment(mode, seg as usize);
            if d.is_empty() {
                return None;
            }
            if d.base() + d.len() > IO_BASE {
                return None;
            }
            (seg << 13, ((seg as u32) << 13) + d.len(), d.base())
        } else {
            // 16-bit compatibility map: everything below 0o160000 is RAM
            // identity-mapped; the top segment is the I/O page.
            (0, 0o160000, 0)
        };
        let phys_of = |v: u32| base + (v - lo as u32);
        let mut v = entry as u32; // fetch cursor, one past Word range at most
        let mut ops: Vec<SbOp> = Vec::new();
        let (term, img_end) = loop {
            if ops.len() >= MAX_BLOCK_OPS || v + 2 > hi || v < lo as u32 {
                break (SbTerm::FallThrough { next_pc: v as Word }, v);
            }
            let word = self.mem.read_word(phys_of(v));
            let Some(instr) = decode(word) else {
                break (SbTerm::FallThrough { next_pc: v as Word }, v);
            };
            let pc_after = (v + 2) as Word;
            match classify(instr) {
                Class::Pure(op) => {
                    ops.push(op);
                    v += 2;
                }
                Class::PureImm { op, dst } => {
                    if v + 4 > hi {
                        break (SbTerm::FallThrough { next_pc: v as Word }, v);
                    }
                    let imm = self.mem.read_word(phys_of(v + 2));
                    ops.push(SbOp::ImmReg { op, imm, dst });
                    v += 4;
                }
                Class::Slow(exts) => {
                    let end = v + 2 + 2 * exts;
                    if end > hi {
                        break (SbTerm::FallThrough { next_pc: v as Word }, v);
                    }
                    ops.push(SbOp::Generic {
                        word,
                        instr,
                        pc_after,
                    });
                    v = end;
                }
                Class::Term => {
                    let t = match instr {
                        Instr::Branch { cond, offset } => SbTerm::Branch {
                            cond,
                            offset,
                            pc_after,
                        },
                        Instr::Sob { reg, offset } => SbTerm::Sob {
                            word,
                            reg,
                            offset,
                            pc_after,
                        },
                        _ => unreachable!("only branches and SOB terminate"),
                    };
                    break (t, v + 2);
                }
                Class::Stop => {
                    break (SbTerm::FallThrough { next_pc: v as Word }, v);
                }
            }
        };
        let term_cost = !matches!(term, SbTerm::FallThrough { .. }) as u64;
        let cost = ops.len() as u64 + term_cost;
        // Not worth a block: nothing compiled, or a fall-through so short
        // the dispatcher does as well without the entry overhead.
        if cost == 0 || (term_cost == 0 && cost < 2) {
            return None;
        }
        let phys = phys_of(entry as u32);
        let pure = !ops.iter().any(|o| matches!(o, SbOp::Generic { .. }));
        Some(SuperBlock {
            entry,
            phys,
            image: self.mem.range(phys, img_end - entry as u32).into(),
            ops: ops.into(),
            term,
            pure,
            cost,
            validated_batch: 0,
            succ_pc: 0,
            succ_idx: NO_SUCC,
        })
    }

    // ------------------------------------------------------------------
    // Bus access (virtual, through the MMU, routed to RAM or devices).
    // ------------------------------------------------------------------

    fn translate(&mut self, vaddr: Word, write: bool) -> Result<PhysAddr, Trap> {
        let mode = self.cpu.psw.mode();
        if self.hotpath && self.mmu.enabled {
            let generation = self.mmu.generation();
            if self.tlb.stale(generation) {
                self.tlb.reset(generation);
                self.obs.metrics.hotpath.tlb_invalidations += 1;
            }
            let seg = (vaddr >> 13) as usize;
            let offset = (vaddr & 0o17777) as u32;
            if let Some(p) = self.tlb.lookup(mode, seg, offset, write) {
                self.obs.metrics.hotpath.tlb_hits += 1;
                return Ok(p);
            }
            self.obs.metrics.hotpath.tlb_misses += 1;
            let p = self.mmu.translate(vaddr, mode, write).map_err(Trap::Mmu)?;
            let d = self.mmu.segment(mode, seg);
            self.tlb
                .fill(mode, seg, d.base(), d.len(), d.access == Access::ReadWrite);
            return Ok(p);
        }
        self.mmu.translate(vaddr, mode, write).map_err(Trap::Mmu)
    }

    /// Reads a word at a virtual address in the current mode.
    pub fn read_word_v(&mut self, vaddr: Word) -> Result<Word, Trap> {
        if vaddr & 1 != 0 {
            return Err(Trap::OddAddress { vaddr });
        }
        let p = self.translate(vaddr, false)?;
        self.read_word_p(p)
    }

    /// Writes a word at a virtual address in the current mode.
    pub fn write_word_v(&mut self, vaddr: Word, value: Word) -> Result<(), Trap> {
        if vaddr & 1 != 0 {
            return Err(Trap::OddAddress { vaddr });
        }
        let p = self.translate(vaddr, true)?;
        self.write_word_p(p, value)
    }

    /// Reads a byte at a virtual address in the current mode.
    pub fn read_byte_v(&mut self, vaddr: Word) -> Result<u8, Trap> {
        let p = self.translate(vaddr, false)?;
        if Memory::is_io(p) {
            let word = self.read_word_p(p & !1)?;
            Ok(if p & 1 == 0 {
                (word & 0xFF) as u8
            } else {
                (word >> 8) as u8
            })
        } else {
            Ok(self.mem.read_byte(p))
        }
    }

    /// Writes a byte at a virtual address in the current mode.
    pub fn write_byte_v(&mut self, vaddr: Word, value: u8) -> Result<(), Trap> {
        let p = self.translate(vaddr, true)?;
        if Memory::is_io(p) {
            let aligned = p & !1;
            let old = self.read_word_p(aligned)?;
            let new = if p & 1 == 0 {
                (old & 0xFF00) | value as Word
            } else {
                (old & 0x00FF) | ((value as Word) << 8)
            };
            self.write_word_p(aligned, new)
        } else {
            if p < self.sb_guard_hi && p.wrapping_add(1) > self.sb_guard_lo {
                self.sb_dirty = true;
            }
            self.mem.write_byte(p, value);
            Ok(())
        }
    }

    /// Reads a word at a *physical* address (RAM or device register).
    pub fn read_word_p(&mut self, addr: PhysAddr) -> Result<Word, Trap> {
        if Memory::is_io(addr) {
            match self.devices.by_addr(addr) {
                Some(d) => {
                    let off = addr - d.base();
                    Ok(d.read_reg(off))
                }
                None => Err(Trap::BusError { addr }),
            }
        } else {
            Ok(self.mem.read_word(addr))
        }
    }

    /// Writes a word at a *physical* address (RAM or device register).
    pub fn write_word_p(&mut self, addr: PhysAddr, value: Word) -> Result<(), Trap> {
        if Memory::is_io(addr) {
            match self.devices.by_addr(addr) {
                Some(d) => {
                    let off = addr - d.base();
                    d.write_reg(off, value);
                    Ok(())
                }
                None => Err(Trap::BusError { addr }),
            }
        } else {
            if addr < self.sb_guard_hi && addr.wrapping_add(2) > self.sb_guard_lo {
                self.sb_dirty = true;
            }
            self.mem.write_word(addr, value);
            Ok(())
        }
    }

    // ------------------------------------------------------------------
    // Instruction execution.
    // ------------------------------------------------------------------

    fn fetch_word(&mut self) -> Result<Word, Trap> {
        let pc = self.cpu.pc;
        if self.hotpath && self.mmu.enabled {
            if let Some(p) = self
                .win
                .lookup(pc, self.mmu.generation(), self.cpu.psw.mode())
            {
                self.obs.metrics.hotpath.tlb_hits += 1;
                self.cpu.pc = pc.wrapping_add(2);
                return Ok(self.mem.read_word(p));
            }
        }
        let w = self.read_word_v(pc)?;
        self.cpu.pc = pc.wrapping_add(2);
        if self.hotpath && self.mmu.enabled {
            self.fill_fetch_window(pc);
        }
        Ok(w)
    }

    /// Caches the PC's segment as the fetch window. Called only after a
    /// successful instruction-stream read, so the segment is known readable
    /// under the current generation; the whole span must lie in RAM so the
    /// window's direct memory read can never shadow a device register.
    fn fill_fetch_window(&mut self, pc: Word) {
        let mode = self.cpu.psw.mode();
        let seg = pc >> 13;
        let d = self.mmu.segment(mode, seg as usize);
        let base = d.base();
        let len = d.len();
        if len > 0 && base + len <= IO_BASE {
            let lo = seg << 13;
            self.win.fill(
                self.mmu.generation(),
                mode,
                lo,
                ((seg as u32) << 13) + len,
                base,
            );
        } else {
            self.win.clear();
        }
    }

    /// Reads an immediate operand (addressing mode 2 on the PC) through the
    /// fetch window. The slow path advances the PC past the literal *before*
    /// reading it — `resolve` increments first — so a trapping read must
    /// leave the PC beyond the operand; this preserves that order.
    #[inline]
    fn read_imm(&mut self) -> Result<Word, Trap> {
        let a = self.cpu.pc;
        self.cpu.pc = a.wrapping_add(2);
        if self.mmu.enabled {
            if let Some(p) = self
                .win
                .lookup(a, self.mmu.generation(), self.cpu.psw.mode())
            {
                self.obs.metrics.hotpath.tlb_hits += 1;
                return Ok(self.mem.read_word(p));
            }
        }
        self.read_word_v(a)
    }

    fn execute_one(&mut self) -> Result<Event, Trap> {
        self.execute_inner(true)
    }

    /// Fetches, decodes (through the i-cache when the fast path is on), and
    /// dispatches one instruction. With `count_obs` false the recorder bump
    /// is skipped — [`Machine::step_n`] batches it after the loop.
    ///
    /// The hot path runs the specialized register-direct forms inline with
    /// the same ALU helpers the generic dispatcher uses, so the two paths
    /// cannot drift; everything else falls through to [`Machine::dispatch`].
    fn execute_inner(&mut self, count_obs: bool) -> Result<Event, Trap> {
        let word = self.fetch_word()?;
        if !self.hotpath {
            let instr = decode(word).ok_or(Trap::Illegal { word })?;
            self.instructions += 1;
            if count_obs {
                self.obs.instruction_retired();
            }
            return self.dispatch(word, instr);
        }
        let cached = match self.icache.get(word) {
            Some(c) => {
                self.obs.metrics.hotpath.icache_hits += 1;
                c
            }
            None => {
                self.obs.metrics.hotpath.icache_misses += 1;
                let i = decode(word).ok_or(Trap::Illegal { word })?;
                let c = Cached::specialize(i);
                self.icache.fill(word, c);
                c
            }
        };
        self.instructions += 1;
        if count_obs {
            self.obs.instruction_retired();
        }
        match cached {
            Cached::RegReg { op, src, dst } => {
                let s = self.cpu.reg(src);
                let d = self.cpu.reg(dst);
                let (wb, (n, z, v, c)) = alu2_w(op, s, d, self.cpu.psw.c());
                if let Some(r) = wb {
                    self.cpu.set_reg(dst, r);
                }
                self.cpu.psw.set_nzvc(n, z, v, c);
                Ok(Event::Ran)
            }
            Cached::ImmReg { op, dst } => {
                let s = self.read_imm()?;
                let d = self.cpu.reg(dst);
                let (wb, (n, z, v, c)) = alu2_w(op, s, d, self.cpu.psw.c());
                if let Some(r) = wb {
                    self.cpu.set_reg(dst, r);
                }
                self.cpu.psw.set_nzvc(n, z, v, c);
                Ok(Event::Ran)
            }
            Cached::OneReg { op, reg } => {
                let d = self.cpu.reg(reg);
                let (wb, (n, z, v, c)) = alu1_w(op, d, self.cpu.psw.n(), self.cpu.psw.c());
                if let Some(r) = wb {
                    self.cpu.set_reg(reg, r);
                }
                self.cpu.psw.set_nzvc(n, z, v, c);
                Ok(Event::Ran)
            }
            Cached::Branch { cond, offset } => {
                self.exec_branch(cond, offset);
                Ok(Event::Ran)
            }
            Cached::Generic(instr) => self.dispatch(word, instr),
        }
    }

    fn dispatch(&mut self, word: Word, instr: Instr) -> Result<Event, Trap> {
        match instr {
            Instr::Double { op, byte, src, dst } => self.exec_double(op, byte, src, dst)?,
            Instr::Single { op, byte, dst } => self.exec_single(op, byte, dst)?,
            Instr::Branch { cond, offset } => self.exec_branch(cond, offset),
            Instr::Jmp { dst } => {
                let place = self.resolve(dst, false)?;
                match place {
                    Place::Reg(_) => return Err(Trap::Illegal { word }),
                    Place::Mem(addr) => self.cpu.pc = addr,
                }
            }
            Instr::Jsr { reg, dst } => {
                let place = self.resolve(dst, false)?;
                let target = match place {
                    Place::Reg(_) => return Err(Trap::Illegal { word }),
                    Place::Mem(addr) => addr,
                };
                self.push(self.cpu.reg(reg))?;
                let return_pc = self.cpu.pc;
                self.cpu.set_reg(reg, return_pc);
                self.cpu.pc = target;
            }
            Instr::Rts { reg } => {
                self.cpu.pc = self.cpu.reg(reg);
                let v = self.pop()?;
                self.cpu.set_reg(reg, v);
            }
            Instr::Sob { reg, offset } => {
                let v = self.cpu.reg(reg).wrapping_sub(1);
                self.cpu.set_reg(reg, v);
                if v != 0 {
                    self.cpu.pc = self.cpu.pc.wrapping_sub(2 * offset as Word);
                }
            }
            Instr::Mul { reg, src } => self.exec_mul(reg, src)?,
            Instr::Div { reg, src } => self.exec_div(reg, src)?,
            Instr::Ash { reg, src } => self.exec_ash(reg, src)?,
            Instr::Xor { reg, dst } => {
                let place = self.resolve(dst, false)?;
                let v = self.read_place_w(place)? ^ self.cpu.reg(reg);
                self.write_place_w(place, v)?;
                let c = self.cpu.psw.c();
                self.cpu.psw.set_nz_w(v, false, c);
            }
            Instr::Emt(n) => return Ok(Event::Trap(Trap::Emt(n))),
            Instr::Trap(n) => return Ok(Event::Trap(Trap::TrapInstr(n))),
            Instr::Bpt => return Ok(Event::Trap(Trap::Bpt)),
            Instr::Iot => return Ok(Event::Trap(Trap::Iot)),
            Instr::Halt => return Ok(Event::Trap(Trap::Halt)),
            Instr::Wait => return Ok(Event::Wait),
            Instr::Reset => {} // No-op in user mode, as on the hardware.
            Instr::Rti | Instr::Rtt => {
                let pc = self.pop()?;
                let saved = self.pop()?;
                self.cpu.pc = pc;
                // In user mode only the condition codes can be restored;
                // mode and priority are protected.
                self.cpu.psw.set_cc_bits(saved);
            }
            Instr::CondCode { set, mask } => {
                let bits = self.cpu.psw.cc_bits();
                let new = if set {
                    bits | mask as Word
                } else {
                    bits & !(mask as Word)
                };
                self.cpu.psw.set_cc_bits(new);
            }
        }
        Ok(Event::Ran)
    }

    fn push(&mut self, value: Word) -> Result<(), Trap> {
        let sp = self.cpu.reg(6).wrapping_sub(2);
        self.cpu.set_reg(6, sp);
        self.write_word_v(sp, value)
    }

    fn pop(&mut self) -> Result<Word, Trap> {
        let sp = self.cpu.reg(6);
        let v = self.read_word_v(sp)?;
        self.cpu.set_reg(6, sp.wrapping_add(2));
        Ok(v)
    }

    fn resolve(&mut self, op: Operand, byte: bool) -> Result<Place, Trap> {
        let delta: Word = if byte && op.reg < 6 { 1 } else { 2 };
        Ok(match op.mode {
            0 => Place::Reg(op.reg),
            1 => Place::Mem(self.cpu.reg(op.reg)),
            2 => {
                let a = self.cpu.reg(op.reg);
                self.cpu.set_reg(op.reg, a.wrapping_add(delta));
                Place::Mem(a)
            }
            3 => {
                let a = self.cpu.reg(op.reg);
                self.cpu.set_reg(op.reg, a.wrapping_add(2));
                Place::Mem(self.read_word_v(a)?)
            }
            4 => {
                let a = self.cpu.reg(op.reg).wrapping_sub(delta);
                self.cpu.set_reg(op.reg, a);
                Place::Mem(a)
            }
            5 => {
                let a = self.cpu.reg(op.reg).wrapping_sub(2);
                self.cpu.set_reg(op.reg, a);
                Place::Mem(self.read_word_v(a)?)
            }
            6 => {
                let x = self.fetch_word()?;
                Place::Mem(self.cpu.reg(op.reg).wrapping_add(x))
            }
            _ => {
                let x = self.fetch_word()?;
                let a = self.cpu.reg(op.reg).wrapping_add(x);
                Place::Mem(self.read_word_v(a)?)
            }
        })
    }

    fn read_place_w(&mut self, p: Place) -> Result<Word, Trap> {
        match p {
            Place::Reg(r) => Ok(self.cpu.reg(r)),
            Place::Mem(a) => self.read_word_v(a),
        }
    }

    fn write_place_w(&mut self, p: Place, v: Word) -> Result<(), Trap> {
        match p {
            Place::Reg(r) => {
                self.cpu.set_reg(r, v);
                Ok(())
            }
            Place::Mem(a) => self.write_word_v(a, v),
        }
    }

    fn read_place_b(&mut self, p: Place) -> Result<u8, Trap> {
        match p {
            Place::Reg(r) => Ok((self.cpu.reg(r) & 0xFF) as u8),
            Place::Mem(a) => self.read_byte_v(a),
        }
    }

    fn write_place_b(&mut self, p: Place, v: u8) -> Result<(), Trap> {
        match p {
            Place::Reg(r) => {
                let old = self.cpu.reg(r);
                self.cpu.set_reg(r, (old & 0xFF00) | v as Word);
                Ok(())
            }
            Place::Mem(a) => self.write_byte_v(a, v),
        }
    }

    fn exec_double(
        &mut self,
        op: BinOp,
        byte: bool,
        src: Operand,
        dst: Operand,
    ) -> Result<(), Trap> {
        if byte {
            return self.exec_double_b(op, src, dst);
        }
        let s = {
            let sp = self.resolve(src, false)?;
            self.read_place_w(sp)?
        };
        let dp = self.resolve(dst, false)?;
        // MOV writes without reading its destination — significant when the
        // destination is a memory operand with read side effects.
        let d = if op == BinOp::Mov {
            0
        } else {
            self.read_place_w(dp)?
        };
        let (wb, (n, z, v, c)) = alu2_w(op, s, d, self.cpu.psw.c());
        if let Some(r) = wb {
            self.write_place_w(dp, r)?;
        }
        self.cpu.psw.set_nzvc(n, z, v, c);
        Ok(())
    }

    fn exec_double_b(&mut self, op: BinOp, src: Operand, dst: Operand) -> Result<(), Trap> {
        let s = {
            let sp = self.resolve(src, true)?;
            self.read_place_b(sp)?
        };
        let dp = self.resolve(dst, true)?;
        let c = self.cpu.psw.c();
        match op {
            BinOp::Mov => {
                // MOVB to a register sign-extends, per the hardware.
                if let Place::Reg(r) = dp {
                    self.cpu.set_reg(r, sign_extend_byte(s));
                } else {
                    self.write_place_b(dp, s)?;
                }
                self.cpu.psw.set_nzvc(is_neg_b(s), s == 0, false, c);
            }
            BinOp::Cmp => {
                let d = self.read_place_b(dp)?;
                let r = s.wrapping_sub(d);
                let v = (is_neg_b(s) != is_neg_b(d)) && (is_neg_b(r) == is_neg_b(d));
                let borrow = s < d;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, v, borrow);
            }
            BinOp::Bit => {
                let d = self.read_place_b(dp)?;
                let r = s & d;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, false, c);
            }
            BinOp::Bic => {
                let d = self.read_place_b(dp)?;
                let r = d & !s;
                self.write_place_b(dp, r)?;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, false, c);
            }
            BinOp::Bis => {
                let d = self.read_place_b(dp)?;
                let r = d | s;
                self.write_place_b(dp, r)?;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, false, c);
            }
            BinOp::Add | BinOp::Sub => unreachable!("ADD/SUB have no byte form"),
        }
        Ok(())
    }

    fn exec_single(&mut self, op: UnOp, byte: bool, dst: Operand) -> Result<(), Trap> {
        if byte && !matches!(op, UnOp::Swab | UnOp::Sxt) {
            return self.exec_single_b(op, dst);
        }
        let dp = self.resolve(dst, false)?;
        // CLR and SXT write without reading — significant for memory
        // operands with read side effects.
        let d = if matches!(op, UnOp::Clr | UnOp::Sxt) {
            0
        } else {
            self.read_place_w(dp)?
        };
        let (wb, (n, z, v, c)) = alu1_w(op, d, self.cpu.psw.n(), self.cpu.psw.c());
        if let Some(r) = wb {
            self.write_place_w(dp, r)?;
        }
        self.cpu.psw.set_nzvc(n, z, v, c);
        Ok(())
    }

    fn exec_single_b(&mut self, op: UnOp, dst: Operand) -> Result<(), Trap> {
        let dp = self.resolve(dst, true)?;
        let c = self.cpu.psw.c();
        match op {
            UnOp::Clr => {
                self.write_place_b(dp, 0)?;
                self.cpu.psw.set_nzvc(false, true, false, false);
            }
            UnOp::Com => {
                let r = !self.read_place_b(dp)?;
                self.write_place_b(dp, r)?;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, false, true);
            }
            UnOp::Inc => {
                let d = self.read_place_b(dp)?;
                let r = d.wrapping_add(1);
                self.write_place_b(dp, r)?;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, d == 0o177, c);
            }
            UnOp::Dec => {
                let d = self.read_place_b(dp)?;
                let r = d.wrapping_sub(1);
                self.write_place_b(dp, r)?;
                self.cpu.psw.set_nzvc(is_neg_b(r), r == 0, d == 0o200, c);
            }
            UnOp::Neg => {
                let r = (self.read_place_b(dp)? as i8).wrapping_neg() as u8;
                self.write_place_b(dp, r)?;
                self.cpu
                    .psw
                    .set_nzvc(is_neg_b(r), r == 0, r == 0o200, r != 0);
            }
            UnOp::Tst => {
                let d = self.read_place_b(dp)?;
                self.cpu.psw.set_nzvc(is_neg_b(d), d == 0, false, false);
            }
            UnOp::Adc => {
                let d = self.read_place_b(dp)?;
                let r = d.wrapping_add(c as u8);
                self.write_place_b(dp, r)?;
                self.cpu
                    .psw
                    .set_nzvc(is_neg_b(r), r == 0, d == 0o177 && c, d == 0o377 && c);
            }
            UnOp::Sbc => {
                let d = self.read_place_b(dp)?;
                let r = d.wrapping_sub(c as u8);
                self.write_place_b(dp, r)?;
                self.cpu
                    .psw
                    .set_nzvc(is_neg_b(r), r == 0, d == 0o200, !(d == 0 && c));
            }
            UnOp::Ror => {
                let d = self.read_place_b(dp)?;
                let r = (d >> 1) | ((c as u8) << 7);
                let new_c = d & 1 != 0;
                self.write_place_b(dp, r)?;
                let n = is_neg_b(r);
                self.cpu.psw.set_nzvc(n, r == 0, n ^ new_c, new_c);
            }
            UnOp::Rol => {
                let d = self.read_place_b(dp)?;
                let r = (d << 1) | c as u8;
                let new_c = is_neg_b(d);
                self.write_place_b(dp, r)?;
                let n = is_neg_b(r);
                self.cpu.psw.set_nzvc(n, r == 0, n ^ new_c, new_c);
            }
            UnOp::Asr => {
                let d = self.read_place_b(dp)?;
                let r = ((d as i8) >> 1) as u8;
                let new_c = d & 1 != 0;
                self.write_place_b(dp, r)?;
                let n = is_neg_b(r);
                self.cpu.psw.set_nzvc(n, r == 0, n ^ new_c, new_c);
            }
            UnOp::Asl => {
                let d = self.read_place_b(dp)?;
                let r = d << 1;
                let new_c = is_neg_b(d);
                self.write_place_b(dp, r)?;
                let n = is_neg_b(r);
                self.cpu.psw.set_nzvc(n, r == 0, n ^ new_c, new_c);
            }
            UnOp::Swab | UnOp::Sxt => unreachable!("word-only operations"),
        }
        Ok(())
    }

    fn exec_branch(&mut self, cond: BranchCond, offset: i8) {
        if branch_taken(self.cpu.psw, cond) {
            self.cpu.pc = self
                .cpu
                .pc
                .wrapping_add((offset as i16 as Word).wrapping_mul(2));
        }
    }

    fn exec_mul(&mut self, reg: u8, src: Operand) -> Result<(), Trap> {
        let sp = self.resolve(src, false)?;
        let s = self.read_place_w(sp)? as i16 as i32;
        let r = self.cpu.reg(reg) as i16 as i32;
        let product = r * s;
        if reg & 1 == 0 {
            self.cpu.set_reg(reg, (product >> 16) as Word);
            self.cpu.set_reg(reg + 1, (product & 0xFFFF) as Word);
        } else {
            self.cpu.set_reg(reg, (product & 0xFFFF) as Word);
        }
        let c = !(-(1 << 15)..(1 << 15)).contains(&product);
        self.cpu.psw.set_nzvc(product < 0, product == 0, false, c);
        Ok(())
    }

    fn exec_div(&mut self, reg: u8, src: Operand) -> Result<(), Trap> {
        let sp = self.resolve(src, false)?;
        let s = self.read_place_w(sp)? as i16 as i32;
        if reg & 1 != 0 {
            // Odd register: undefined on the hardware; we trap it as illegal
            // to keep programs honest.
            return Err(Trap::Illegal { word: 0o071000 });
        }
        let dividend = ((self.cpu.reg(reg) as u32) << 16 | self.cpu.reg(reg + 1) as u32) as i32;
        if s == 0 {
            self.cpu.psw.set_nzvc(false, false, true, true);
            return Ok(());
        }
        let q = dividend / s;
        let rem = dividend % s;
        if !(-(1 << 15)..(1 << 15)).contains(&q) {
            self.cpu.psw.set_nzvc(q < 0, false, true, false);
            return Ok(());
        }
        self.cpu.set_reg(reg, q as i16 as Word);
        self.cpu.set_reg(reg + 1, rem as i16 as Word);
        self.cpu.psw.set_nzvc(q < 0, q == 0, false, false);
        Ok(())
    }

    fn exec_ash(&mut self, reg: u8, src: Operand) -> Result<(), Trap> {
        let sp = self.resolve(src, false)?;
        let count = (self.read_place_w(sp)? & 0o77) as i8;
        // Six-bit signed shift count.
        let count = if count >= 32 { count - 64 } else { count };
        let v = self.cpu.reg(reg) as i16;
        let (r, c) = if count >= 0 {
            let shifted = (v as i32) << count;
            (shifted as i16, count > 0 && (shifted & 0x1_0000) != 0)
        } else {
            let n = (-count) as u32;
            let r = v >> n.min(15);
            let c = n <= 16 && (v >> (n - 1).min(15)) & 1 != 0;
            (r, c)
        };
        self.cpu.set_reg(reg, r as Word);
        let v_flag = (r < 0) != (v < 0);
        self.cpu.psw.set_nzvc(r < 0, r == 0, v_flag, c);
        Ok(())
    }
}

/// Evaluates a branch condition against unpacked condition codes.
#[inline]
fn cond_taken(cond: BranchCond, n: bool, z: bool, v: bool, c: bool) -> bool {
    match cond {
        BranchCond::Br => true,
        BranchCond::Bne => !z,
        BranchCond::Beq => z,
        BranchCond::Bge => n == v,
        BranchCond::Blt => n != v,
        BranchCond::Bgt => !z && (n == v),
        BranchCond::Ble => z || (n != v),
        BranchCond::Bpl => !n,
        BranchCond::Bmi => n,
        BranchCond::Bhi => !c && !z,
        BranchCond::Blos => c || z,
        BranchCond::Bvc => !v,
        BranchCond::Bvs => v,
        BranchCond::Bcc => !c,
        BranchCond::Bcs => c,
    }
}

/// Evaluates a branch condition against the condition codes.
#[inline]
fn branch_taken(p: Psw, cond: BranchCond) -> bool {
    cond_taken(cond, p.n(), p.z(), p.v(), p.c())
}

/// Executes a pure superblock (no `Generic` interiors) up to `max_runs`
/// times, following the self-chain while the terminator lands back on the
/// block's own entry. A pure block cannot trap and cannot touch memory, so
/// it runs against the CPU alone — no machine state is reachable — and the
/// condition codes live in four locals for the whole run (host registers
/// instead of a packed PSW read-modify-write per op), folded back into the
/// PSW exactly once on the way out. Returns the number of complete runs
/// retired (at least one when `max_runs >= 1`).
#[inline]
fn run_pure_block(cpu: &mut Cpu, ops: &[SbOp], term: SbTerm, entry: Word, max_runs: u64) -> u64 {
    let mut runs = 0;
    let p = cpu.psw;
    let (mut n, mut z, mut v, mut c) = (p.n(), p.z(), p.v(), p.c());
    while runs < max_runs {
        for op in ops {
            match *op {
                SbOp::RegReg { op, src, dst } => {
                    let s = cpu.r[src as usize];
                    let d = cpu.r[dst as usize];
                    let (wb, f) = alu2_w(op, s, d, c);
                    if let Some(r) = wb {
                        cpu.r[dst as usize] = r;
                    }
                    (n, z, v, c) = f;
                }
                SbOp::ImmReg { op, imm, dst } => {
                    let d = cpu.r[dst as usize];
                    let (wb, f) = alu2_w(op, imm, d, c);
                    if let Some(r) = wb {
                        cpu.r[dst as usize] = r;
                    }
                    (n, z, v, c) = f;
                }
                SbOp::OneReg { op, reg } => {
                    let d = cpu.r[reg as usize];
                    let (wb, f) = alu1_w(op, d, n, c);
                    if let Some(r) = wb {
                        cpu.r[reg as usize] = r;
                    }
                    (n, z, v, c) = f;
                }
                SbOp::Generic { .. } => unreachable!("generic interior in a pure block"),
            }
        }
        runs += 1;
        match term {
            SbTerm::Branch {
                cond,
                offset,
                pc_after,
            } => {
                cpu.pc = pc_after;
                if cond_taken(cond, n, z, v, c) {
                    cpu.pc = cpu.pc.wrapping_add((offset as i16 as Word).wrapping_mul(2));
                }
            }
            SbTerm::Sob {
                reg,
                offset,
                pc_after,
                ..
            } => {
                cpu.pc = pc_after;
                let count = cpu.reg(reg).wrapping_sub(1);
                cpu.set_reg(reg, count);
                if count != 0 {
                    cpu.pc = cpu.pc.wrapping_sub(2 * offset as Word);
                }
            }
            SbTerm::FallThrough { next_pc } => {
                cpu.pc = next_pc;
                cpu.psw.set_nzvc(n, z, v, c);
                return runs;
            }
        }
        if cpu.pc != entry {
            break;
        }
    }
    cpu.psw.set_nzvc(n, z, v, c);
    runs
}

/// Word-size double-operand ALU semantics, shared by the generic dispatcher
/// and the specialized register-direct fast path so the two cannot drift.
/// Returns the value to write back (`None` for the non-writing CMP/BIT) and
/// the resulting condition codes. `d` is ignored for MOV — callers must not
/// *read* a MOV destination, only write it.
#[inline]
fn alu2_w(op: BinOp, s: Word, d: Word, c: bool) -> (Option<Word>, (bool, bool, bool, bool)) {
    match op {
        BinOp::Mov => (Some(s), (is_neg_w(s), s == 0, false, c)),
        BinOp::Cmp => {
            let r = s.wrapping_sub(d);
            let v = (is_neg_w(s) != is_neg_w(d)) && (is_neg_w(r) == is_neg_w(d));
            let borrow = (s as u32) < (d as u32);
            (None, (is_neg_w(r), r == 0, v, borrow))
        }
        BinOp::Bit => {
            let r = s & d;
            (None, (is_neg_w(r), r == 0, false, c))
        }
        BinOp::Bic => {
            let r = d & !s;
            (Some(r), (is_neg_w(r), r == 0, false, c))
        }
        BinOp::Bis => {
            let r = d | s;
            (Some(r), (is_neg_w(r), r == 0, false, c))
        }
        BinOp::Add => {
            let (r, carry) = d.overflowing_add(s);
            let v = (is_neg_w(s) == is_neg_w(d)) && (is_neg_w(r) != is_neg_w(d));
            (Some(r), (is_neg_w(r), r == 0, v, carry))
        }
        BinOp::Sub => {
            let r = d.wrapping_sub(s);
            let v = (is_neg_w(s) != is_neg_w(d)) && (is_neg_w(r) == is_neg_w(s));
            let borrow = (d as u32) < (s as u32);
            (Some(r), (is_neg_w(r), r == 0, v, borrow))
        }
    }
}

/// Word-size single-operand ALU semantics, shared like [`alu2_w`]. `n_in`
/// is the incoming N flag (SXT materializes it); `d` is ignored for CLR and
/// SXT — callers must not *read* their destination, only write it.
#[inline]
fn alu1_w(op: UnOp, d: Word, n_in: bool, c: bool) -> (Option<Word>, (bool, bool, bool, bool)) {
    match op {
        UnOp::Clr => (Some(0), (false, true, false, false)),
        UnOp::Com => {
            let r = !d;
            (Some(r), (is_neg_w(r), r == 0, false, true))
        }
        UnOp::Inc => {
            let r = d.wrapping_add(1);
            (Some(r), (is_neg_w(r), r == 0, d == 0o077777, c))
        }
        UnOp::Dec => {
            let r = d.wrapping_sub(1);
            (Some(r), (is_neg_w(r), r == 0, d == SIGN_W, c))
        }
        UnOp::Neg => {
            let r = (d as i16).wrapping_neg() as Word;
            (Some(r), (is_neg_w(r), r == 0, r == SIGN_W, r != 0))
        }
        UnOp::Adc => {
            let r = d.wrapping_add(c as Word);
            (
                Some(r),
                (is_neg_w(r), r == 0, d == 0o077777 && c, d == 0o177777 && c),
            )
        }
        UnOp::Sbc => {
            let r = d.wrapping_sub(c as Word);
            (Some(r), (is_neg_w(r), r == 0, d == SIGN_W, !(d == 0 && c)))
        }
        UnOp::Tst => (None, (is_neg_w(d), d == 0, false, false)),
        UnOp::Ror => {
            let r = (d >> 1) | ((c as Word) << 15);
            let new_c = d & 1 != 0;
            let n = is_neg_w(r);
            (Some(r), (n, r == 0, n ^ new_c, new_c))
        }
        UnOp::Rol => {
            let r = (d << 1) | c as Word;
            let new_c = is_neg_w(d);
            let n = is_neg_w(r);
            (Some(r), (n, r == 0, n ^ new_c, new_c))
        }
        UnOp::Asr => {
            let r = ((d as i16) >> 1) as Word;
            let new_c = d & 1 != 0;
            let n = is_neg_w(r);
            (Some(r), (n, r == 0, n ^ new_c, new_c))
        }
        UnOp::Asl => {
            let r = d << 1;
            let new_c = is_neg_w(d);
            let n = is_neg_w(r);
            (Some(r), (n, r == 0, n ^ new_c, new_c))
        }
        UnOp::Swab => {
            let r = d.rotate_left(8);
            let low = (r & 0xFF) as u8;
            (Some(r), (is_neg_b(low), low == 0, false, false))
        }
        UnOp::Sxt => {
            let r = if n_in { 0o177777 } else { 0 };
            (Some(r), (n_in, !n_in, false, c))
        }
    }
}

/// How the superblock compiler treats one decoded instruction.
enum Class {
    /// Register-only op with no extension words: runs without the
    /// dispatcher and without PC maintenance.
    Pure(SbOp),
    /// Immediate-source register op: one extension word, captured into the
    /// block at compile time.
    PureImm { op: BinOp, dst: u8 },
    /// Includable but dispatched generically, consuming `n` extension
    /// words from the instruction stream.
    Slow(u32),
    /// Terminates the block (branch or SOB): the chaining point.
    Term,
    /// Not includable (writes memory or the PC, transfers control, or
    /// leaves user-mode execution): the block ends before it.
    Stop,
}

/// Classifies an instruction for superblock inclusion.
///
/// The interior invariant is **no memory writes and no PC writes**: memory
/// stays constant while a block runs (so the once-per-batch image check
/// plus the write guard make stale code impossible), and the next
/// instruction is statically known (so the run really is straight-line).
/// Operand *reads* of any addressing mode are fine — they go through the
/// generic dispatcher with an exact PC and side-exit on traps.
fn classify(instr: Instr) -> Class {
    // The pure forms mirror `Cached::specialize`'s fast shapes, restricted
    // to R0–R5: reading the PC needs the maintained value only the generic
    // path has (and writing it ends the run), and the SP is banked by
    // processor mode, so excluding both lets the tier index the register
    // file directly instead of resolving through `Cpu::reg`.
    match Cached::specialize(instr) {
        Cached::RegReg { op, src, dst } if src < 6 && dst < 6 => {
            return Class::Pure(SbOp::RegReg { op, src, dst });
        }
        Cached::ImmReg { op, dst } if dst < 6 => return Class::PureImm { op, dst },
        Cached::OneReg { op, reg } if reg < 6 => {
            return Class::Pure(SbOp::OneReg { op, reg });
        }
        _ => {}
    }
    // Extension words an operand consumes from the instruction stream.
    let ext = |o: Operand| -> u32 {
        (o.mode >= 6 || (o.reg == 7 && (o.mode == 2 || o.mode == 3))) as u32
    };
    // Auto-decrement through the PC rewrites it: never straight-line.
    let hostile = |o: Operand| o.reg == 7 && matches!(o.mode, 4 | 5);
    match instr {
        Instr::Double { op, src, dst, .. } => {
            let writes = !matches!(op, BinOp::Cmp | BinOp::Bit);
            if hostile(src) || hostile(dst) || (writes && (dst.mode != 0 || dst.reg == 7)) {
                Class::Stop
            } else {
                Class::Slow(ext(src) + ext(dst))
            }
        }
        Instr::Single { op, dst, .. } => {
            let writes = !matches!(op, UnOp::Tst);
            if hostile(dst) || (writes && (dst.mode != 0 || dst.reg == 7)) {
                Class::Stop
            } else {
                Class::Slow(ext(dst))
            }
        }
        Instr::Branch { .. } | Instr::Sob { .. } => Class::Term,
        // MUL/DIV write reg (and reg|1 / reg+1): keep them clear of SP/PC.
        Instr::Mul { reg, src } | Instr::Div { reg, src } if reg < 6 && !hostile(src) => {
            Class::Slow(ext(src))
        }
        Instr::Ash { reg, src } if reg != 7 && !hostile(src) => Class::Slow(ext(src)),
        Instr::Xor { reg: _, dst } if dst.mode == 0 && dst.reg != 7 => Class::Slow(0),
        Instr::CondCode { .. } => Class::Slow(0),
        // Control transfers, trap instructions, WAIT/HALT/RESET, RTI/RTT,
        // and everything else privileged or PC-writing.
        _ => Class::Stop,
    }
}

/// The observability classification of a [`Trap`].
fn trap_kind(trap: Trap) -> TrapKind {
    match trap {
        Trap::Mmu(_) => TrapKind::Mmu,
        Trap::OddAddress { .. } => TrapKind::OddAddress,
        Trap::BusError { .. } => TrapKind::BusError,
        Trap::Illegal { .. } => TrapKind::Illegal,
        Trap::Emt(_) => TrapKind::Emt,
        Trap::TrapInstr(_) => TrapKind::TrapInstr,
        Trap::Bpt => TrapKind::Bpt,
        Trap::Iot => TrapKind::Iot,
        Trap::Halt => TrapKind::Halt,
    }
}

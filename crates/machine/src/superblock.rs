//! The superblock compilation tier: pre-translated straight-line runs.
//!
//! PR 5's decode cache specializes one instruction at a time; this tier
//! compiles *runs* of them. A hot basic block — detected by counting how
//! often a backward control transfer lands on its entry — is translated
//! once into a [`SuperBlock`]: a sequence of pre-specialized ops whose
//! instruction-stream fetch is MMU-checked **once per block** at compile
//! time, plus a terminator that records where control goes next. When the
//! successor of a terminator is itself compiled, execution chains directly
//! from block to block and the fetch/decode dispatcher is skipped entirely
//! on warm traces.
//!
//! Like the decode cache and TLB, compiled blocks are derivable state,
//! never modelled state. Three guards keep them semantically invisible:
//!
//! * **Generation.** A block's fetch span was translated under one MMU
//!   generation; any PAR/PDR load bumps the generation and drops every
//!   block (the PR 5 invalidation scheme, verbatim). The MMU enable flag
//!   is checked alongside, since it is a plain field that does not bump
//!   the generation.
//! * **Image validation.** A block stores the bytes it was compiled from
//!   and compares them against RAM once per `step_n` batch, so code
//!   rewritten between batches (kernel copies, re-imaging, DMA, host
//!   pokes) can never execute stale. Within a batch only the machine
//!   itself can write memory, and …
//! * **Write guard.** … every machine-path store is checked against the
//!   span of compiled code; a hit drops all blocks before the next block
//!   runs. Interior ops never write memory (see [`SbOp`]), so a block can
//!   never invalidate itself mid-flight.
//!
//! `Machine::clone`, `set_hotpath(false)`, and `set_superblocks(false)`
//! drop everything, so snapshots and re-imaged partitions stay
//! byte-identical to fresh boots.

use std::collections::{HashMap, HashSet};

use crate::isa::{BinOp, BranchCond, Instr, UnOp};
use crate::psw::Mode;
use crate::types::{PhysAddr, Word};

/// Executions of a backward-branch target before it is compiled.
pub(crate) const HOT_THRESHOLD: u32 = 8;

/// Interior ops per block (terminator excluded).
pub(crate) const MAX_BLOCK_OPS: usize = 32;

/// Compiled blocks held at once; further compilation waits for a flush.
pub(crate) const MAX_BLOCKS: usize = 512;

/// Heat-map entries kept before the profile is reset (bounds the memory a
/// branchy cold program can pin).
const MAX_HEAT_ENTRIES: usize = 1024;

/// Successor-memo sentinel: no memoized successor block.
pub(crate) const NO_SUCC: u32 = u32::MAX;

/// One pre-specialized interior instruction of a superblock.
///
/// Interior ops are restricted to forms that write registers and condition
/// codes but **never memory and never the PC**: the pure register shapes
/// name only R0–R5 (the PC needs the maintained value, the SP is banked by
/// mode — excluding both lets the executor index the register file
/// directly), carry their operands (and, for `ImmReg`, the immediate word
/// captured at compile time — sound because the word is part of the image),
/// and everything else runs through the generic dispatcher with the PC
/// pre-set to its post-fetch value, so memory reads, register side
/// effects, and traps behave exactly as on the slow path.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SbOp {
    /// Word double-operand op, both operands register-direct.
    RegReg {
        /// The operation.
        op: BinOp,
        /// Source register.
        src: u8,
        /// Destination register.
        dst: u8,
    },
    /// Word double-operand op with the immediate captured at compile time.
    ImmReg {
        /// The operation.
        op: BinOp,
        /// The immediate word (part of the validated block image).
        imm: Word,
        /// Destination register.
        dst: u8,
    },
    /// Word single-operand op on a register.
    OneReg {
        /// The operation.
        op: UnOp,
        /// The register.
        reg: u8,
    },
    /// Any other includable instruction, run through the dispatcher.
    Generic {
        /// The instruction word (for the dispatcher's trap reporting).
        word: Word,
        /// The decoded instruction.
        instr: Instr,
        /// The PC value after fetching the opcode word — the dispatcher
        /// resolves extension words relative to this, exactly as the
        /// per-instruction engine would.
        pc_after: Word,
    },
}

/// How a superblock ends.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum SbTerm {
    /// A conditional (or unconditional) branch: the chaining point.
    Branch {
        /// The condition.
        cond: BranchCond,
        /// Signed word offset.
        offset: i8,
        /// PC after fetching the branch word.
        pc_after: Word,
    },
    /// Subtract-one-and-branch: the other chaining point.
    Sob {
        /// The instruction word.
        word: Word,
        /// Counter register.
        reg: u8,
        /// Backward word offset.
        offset: u8,
        /// PC after fetching the SOB word.
        pc_after: Word,
    },
    /// The block ended before a non-includable instruction; execution
    /// continues per-instruction at `next_pc`.
    FallThrough {
        /// Virtual address of the first instruction not in the block.
        next_pc: Word,
    },
}

/// One compiled straight-line run.
#[derive(Debug)]
pub(crate) struct SuperBlock {
    /// Virtual entry PC.
    pub entry: Word,
    /// Physical address of the entry word (fetch span resolved at compile
    /// time — the once-per-block MMU check).
    pub phys: PhysAddr,
    /// The instruction-stream bytes the block was compiled from, compared
    /// against RAM once per batch before the block may run.
    pub image: Box<[u8]>,
    /// Interior ops.
    pub ops: Box<[SbOp]>,
    /// The terminator.
    pub term: SbTerm,
    /// True when no interior is `SbOp::Generic`: the whole block (and any
    /// self-chained reruns) touches only R0–R5, the PSW, and the PC — it
    /// cannot trap, cannot read memory, and runs on the register-file fast
    /// path.
    pub pure: bool,
    /// Machine steps one full execution consumes (interiors + terminator).
    pub cost: u64,
    /// Batch id of the last successful image validation.
    pub validated_batch: u64,
    /// Memoized successor: the last post-terminator PC …
    pub succ_pc: Word,
    /// … and the block index it chained to ([`NO_SUCC`] when none).
    pub succ_idx: u32,
}

/// The compiled-block cache plus the hotness profile that feeds it.
///
/// `seen_gen`/`seen_enabled` play the TLB role: blocks are valid exactly
/// while the MMU generation and enable flag both match. The heat map is a
/// profile, not compiled state — it survives block flushes (a re-imaged
/// loop is still a loop) and dies only with the tier itself.
#[derive(Debug, Default)]
pub(crate) struct SuperCache {
    seen_gen: u64,
    seen_enabled: bool,
    /// Current `step_n` batch id (bumped per batch; forces one image
    /// validation per block per batch).
    pub batch: u64,
    /// Compiled blocks, indexed by the map below.
    pub blocks: Vec<SuperBlock>,
    index: HashMap<(Word, u8), u32>,
    heat: HashMap<(Word, u8), u32>,
    failed: HashSet<(Word, u8)>,
}

impl SuperCache {
    /// True when any block is compiled (cheap gate for the lookup path).
    #[inline]
    pub(crate) fn has_blocks(&self) -> bool {
        !self.blocks.is_empty()
    }

    /// True when the cache was filled under a different MMU generation or
    /// enable flag and must be flushed before use.
    #[inline]
    pub(crate) fn stale(&self, generation: u64, enabled: bool) -> bool {
        self.seen_gen != generation || self.seen_enabled != enabled
    }

    /// Drops all compiled blocks (keeping the heat profile) and adopts the
    /// given MMU generation and enable flag.
    pub(crate) fn flush(&mut self, generation: u64, enabled: bool) {
        self.seen_gen = generation;
        self.seen_enabled = enabled;
        self.blocks.clear();
        self.index.clear();
        self.failed.clear();
    }

    /// The compiled block for `(pc, mode)`, if any.
    #[inline]
    pub(crate) fn lookup(&self, pc: Word, mode: Mode) -> Option<u32> {
        self.index.get(&(pc, mode_tag(mode))).copied()
    }

    /// Inserts a compiled block, returning its index, or `None` when the
    /// cache is full.
    pub(crate) fn insert(&mut self, mode: Mode, block: SuperBlock) -> Option<u32> {
        if self.blocks.len() >= MAX_BLOCKS {
            return None;
        }
        let idx = self.blocks.len() as u32;
        self.index.insert((block.entry, mode_tag(mode)), idx);
        self.blocks.push(block);
        Some(idx)
    }

    /// Bumps the heat of a backward-branch target, returning the new
    /// count. Saturates; the map resets when it outgrows its bound.
    pub(crate) fn heat_bump(&mut self, pc: Word, mode: Mode) -> u32 {
        if self.heat.len() >= MAX_HEAT_ENTRIES {
            self.heat.clear();
        }
        let c = self.heat.entry((pc, mode_tag(mode))).or_insert(0);
        *c = c.saturating_add(1);
        *c
    }

    /// Records that compilation at `(pc, mode)` produced nothing, so the
    /// chain-compiler does not retry it every loop iteration.
    pub(crate) fn mark_failed(&mut self, pc: Word, mode: Mode) {
        self.failed.insert((pc, mode_tag(mode)));
    }

    /// True when compilation at `(pc, mode)` already failed.
    #[inline]
    pub(crate) fn has_failed(&self, pc: Word, mode: Mode) -> bool {
        self.failed.contains(&(pc, mode_tag(mode)))
    }
}

#[inline]
fn mode_tag(mode: Mode) -> u8 {
    match mode {
        Mode::Kernel => 0,
        Mode::User => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn block(entry: Word) -> SuperBlock {
        SuperBlock {
            entry,
            phys: entry as PhysAddr,
            image: Box::from(&[0u8, 0][..]),
            ops: Box::from(&[][..]),
            term: SbTerm::FallThrough { next_pc: entry },
            pure: true,
            cost: 1,
            validated_batch: 0,
            succ_pc: 0,
            succ_idx: NO_SUCC,
        }
    }

    #[test]
    fn lookup_is_keyed_by_pc_and_mode() {
        let mut c = SuperCache::default();
        let idx = c.insert(Mode::User, block(0o1000)).unwrap();
        assert_eq!(c.lookup(0o1000, Mode::User), Some(idx));
        assert_eq!(c.lookup(0o1000, Mode::Kernel), None);
        assert_eq!(c.lookup(0o1002, Mode::User), None);
    }

    #[test]
    fn flush_drops_blocks_and_failures_but_keeps_heat() {
        let mut c = SuperCache::default();
        c.insert(Mode::User, block(0o1000));
        c.mark_failed(0o2000, Mode::User);
        for _ in 0..3 {
            c.heat_bump(0o1000, Mode::User);
        }
        c.flush(7, true);
        assert!(!c.has_blocks());
        assert_eq!(c.lookup(0o1000, Mode::User), None);
        assert!(!c.has_failed(0o2000, Mode::User));
        assert_eq!(c.heat_bump(0o1000, Mode::User), 4, "profile survives");
        assert!(!c.stale(7, true));
        assert!(c.stale(8, true));
        assert!(c.stale(7, false));
    }

    #[test]
    fn fresh_cache_is_stale_for_any_real_generation() {
        // The MMU generation starts at 1, so a default cache (seen_gen 0)
        // can never serve a block before its first flush-adopt.
        let c = SuperCache::default();
        assert!(c.stale(1, false));
        assert!(c.stale(1, true));
    }

    #[test]
    fn insert_refuses_past_the_block_cap() {
        let mut c = SuperCache::default();
        for i in 0..MAX_BLOCKS {
            assert!(c.insert(Mode::User, block(2 * i as Word)).is_some());
        }
        assert_eq!(c.insert(Mode::User, block(0o177776)), None);
    }

    #[test]
    fn heat_counts_per_target_and_resets_when_outgrown() {
        let mut c = SuperCache::default();
        assert_eq!(c.heat_bump(0o100, Mode::User), 1);
        assert_eq!(c.heat_bump(0o100, Mode::User), 2);
        assert_eq!(c.heat_bump(0o100, Mode::Kernel), 1, "modes are distinct");
        for i in 0..MAX_HEAT_ENTRIES as Word {
            c.heat_bump(i * 2, Mode::User);
        }
        // The map was reset at the bound; the original target restarts.
        assert_eq!(c.heat_bump(0o100, Mode::User), 1);
    }
}

//! CPU register state.
//!
//! Eight general registers, with R6 (the stack pointer) banked per mode as
//! on the real machine: the kernel and user modes each have a private SP.
//! R7 is the program counter. The register file is the first thing a SWAP
//! must save and restore — and, as the paper observes, exactly the thing
//! Information Flow Analysis cannot handle, because the same physical
//! registers carry every regime's values at different times.

use crate::psw::{Mode, Psw};
use crate::types::Word;

/// CPU register state (registers plus PSW).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Cpu {
    /// R0–R5.
    pub r: [Word; 6],
    /// Banked stack pointers: `sp[0]` kernel, `sp[1]` user.
    pub sp: [Word; 2],
    /// The program counter (R7).
    pub pc: Word,
    /// The processor status word.
    pub psw: Psw,
}

impl Cpu {
    /// A CPU in user mode with all registers zero.
    pub fn new() -> Cpu {
        Cpu {
            psw: Psw::user(),
            ..Cpu::default()
        }
    }

    fn sp_index(&self, mode: Mode) -> usize {
        match mode {
            Mode::Kernel => 0,
            Mode::User => 1,
        }
    }

    /// Reads general register `n` (0–7), resolving SP by current mode.
    pub fn reg(&self, n: u8) -> Word {
        match n {
            0..=5 => self.r[n as usize],
            6 => self.sp[self.sp_index(self.psw.mode())],
            7 => self.pc,
            _ => panic!("register index out of range: {n}"),
        }
    }

    /// Writes general register `n` (0–7), resolving SP by current mode.
    pub fn set_reg(&mut self, n: u8, value: Word) {
        match n {
            0..=5 => self.r[n as usize] = value,
            6 => {
                let i = self.sp_index(self.psw.mode());
                self.sp[i] = value;
            }
            7 => self.pc = value,
            _ => panic!("register index out of range: {n}"),
        }
    }

    /// The stack pointer of a specific mode (regardless of current mode).
    pub fn sp_of(&self, mode: Mode) -> Word {
        self.sp[self.sp_index(mode)]
    }

    /// Sets the stack pointer of a specific mode.
    pub fn set_sp_of(&mut self, mode: Mode, value: Word) {
        let i = self.sp_index(mode);
        self.sp[i] = value;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn general_registers_roundtrip() {
        let mut cpu = Cpu::new();
        for n in 0..=7u8 {
            cpu.set_reg(n, 0o1000 + n as Word);
        }
        for n in 0..=7u8 {
            assert_eq!(cpu.reg(n), 0o1000 + n as Word);
        }
    }

    #[test]
    fn sp_is_banked_by_mode() {
        let mut cpu = Cpu::new();
        cpu.psw.set_mode(Mode::User);
        cpu.set_reg(6, 0o1000);
        cpu.psw.set_mode(Mode::Kernel);
        cpu.set_reg(6, 0o2000);
        assert_eq!(cpu.reg(6), 0o2000);
        cpu.psw.set_mode(Mode::User);
        assert_eq!(cpu.reg(6), 0o1000);
        assert_eq!(cpu.sp_of(Mode::Kernel), 0o2000);
        assert_eq!(cpu.sp_of(Mode::User), 0o1000);
    }

    #[test]
    fn pc_is_register_seven() {
        let mut cpu = Cpu::new();
        cpu.set_reg(7, 0o400);
        assert_eq!(cpu.pc, 0o400);
        cpu.pc = 0o500;
        assert_eq!(cpu.reg(7), 0o500);
    }

    #[test]
    #[should_panic(expected = "register index out of range")]
    fn bad_register_panics() {
        Cpu::new().reg(8);
    }
}

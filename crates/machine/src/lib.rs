//! A PDP-11/34-flavoured machine simulator.
//!
//! Rushby's separation kernel (the RSRE "Secure User Environment") ran on a
//! PDP-11/34 and leaned on three properties of that hardware:
//!
//! 1. memory management that protects *device registers* exactly like
//!    ordinary memory (so whole devices can be given to regimes);
//! 2. vectored interrupts that trap through kernel space (so the kernel can
//!    field and forward them);
//! 3. the possibility of excluding DMA (so the MMU's word is final).
//!
//! This crate reproduces that substrate: a 16-bit CPU with a real subset of
//! the PDP-11 instruction set ([`isa`], [`cpu`]), a PAR/PDR-style MMU
//! ([`mmu`]), byte-addressable physical memory with a memory-mapped I/O page
//! ([`mem`]), a device framework with serial lines, clock, printer, crypto
//! unit, and a (deliberately dangerous) DMA disk ([`dev`]), and a two-pass
//! assembler ([`asm`]) for writing regime programs.
//!
//! The machine executes *unprivileged* code only: every trap, fault, and
//! interrupt is surfaced to the embedder as an [`exec::Event`]. The
//! separation kernel in `sep-kernel` plays the role of the privileged
//! mode — exactly the "abstract interpreter" position the paper assigns it.

#![forbid(unsafe_code)]

pub mod asm;
pub mod cpu;
pub mod dev;
pub mod disasm;
pub mod exec;
mod hotpath;
pub mod isa;
pub mod mem;
pub mod mmu;
pub mod psw;
mod superblock;
pub mod types;

pub use asm::{assemble, AsmError};
pub use cpu::Cpu;
pub use dev::{Device, DeviceSet, InterruptRequest};
pub use disasm::{disassemble, Listing};
pub use exec::{Event, Machine, Trap};
pub use mem::{Memory, IO_BASE, PHYS_SIZE};
pub use mmu::{Access, Mmu, MmuAbort, SegmentDescriptor};
pub use psw::{Mode, Psw};
pub use types::{PhysAddr, Word};

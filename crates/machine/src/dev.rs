//! The device framework and the machine's standard peripherals.
//!
//! Every device occupies a range of word registers in the I/O page. Because
//! the MMU protects device registers exactly like memory, a device can be
//! assigned wholesale to a regime by mapping its registers into that
//! regime's address space — the SUE's I/O architecture. Devices raise
//! vectored interrupt requests; the machine surfaces them to the kernel,
//! which forwards them to the owning regime.
//!
//! DMA is modelled — and excluded by default — via [`DmaOp`]: a DMA-capable
//! device ([`dma::DmaDisk`]) asks the machine to move bytes using *physical*
//! addresses, evading the MMU entirely. The SUE's answer was to ban DMA; the
//! machine reproduces both the ban and (when configured permissively) the
//! threat.

use crate::types::{PhysAddr, Word};
use core::any::Any;
use core::fmt;

pub mod clock;
pub mod crypto;
pub mod dma;
pub mod printer;
pub mod serial;

/// A pending interrupt request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct InterruptRequest {
    /// Interrupt vector address (in kernel space on a real machine).
    pub vector: Word,
    /// Bus request priority (4–7 conventionally).
    pub priority: u8,
}

/// A DMA transfer requested by a device: performed on *physical* memory,
/// bypassing the MMU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DmaOp {
    /// Write these bytes to physical memory at `addr`.
    WriteMem {
        /// Destination physical address.
        addr: PhysAddr,
        /// Bytes to store.
        data: Vec<u8>,
    },
    /// Read `len` bytes of physical memory at `addr` into the device (the
    /// machine calls [`Device::dma_complete`] with the data).
    ReadMem {
        /// Source physical address.
        addr: PhysAddr,
        /// Number of bytes.
        len: u32,
    },
}

/// A memory-mapped peripheral.
///
/// `Send + Sync` because device state rides inside cloned kernels that the
/// parallel separability checker moves across worker threads; devices are
/// plain data and every implementation in this workspace satisfies the
/// bounds structurally.
pub trait Device: Send + Sync {
    /// Display name.
    fn name(&self) -> &str;

    /// First byte address of the register block (must be in the I/O page
    /// and even).
    fn base(&self) -> PhysAddr;

    /// Length of the register block in bytes (even).
    fn reg_len(&self) -> u32;

    /// Reads the word register at byte `offset` from `base`.
    fn read_reg(&mut self, offset: u32) -> Word;

    /// Writes the word register at byte `offset` from `base`.
    fn write_reg(&mut self, offset: u32, value: Word);

    /// Advances device time by one machine step.
    fn tick(&mut self);

    /// The device's pending interrupt, if any.
    fn pending(&self) -> Option<InterruptRequest>;

    /// Clears the pending interrupt (called when the kernel fields it).
    fn acknowledge(&mut self);

    /// A stable snapshot of device state for machine-state equality.
    ///
    /// The snapshot must capture everything that influences the device's
    /// future register values and interrupts, and must be *bounded*:
    /// host-side record-keeping (paper trays, transmitted-byte logs, total
    /// tick counters) is excluded so that cyclic device behaviour yields
    /// cyclic snapshots.
    fn snapshot(&self) -> Vec<Word>;

    /// Restores the device to a previously snapshotted state (the inverse
    /// of [`Device::snapshot`]). Host-side record-keeping is reset.
    ///
    /// # Panics
    ///
    /// Panics when the snapshot is malformed or the device does not support
    /// restoration.
    fn restore(&mut self, snapshot: &[Word]);

    /// Clones the device (object-safe clone).
    fn boxed_clone(&self) -> Box<dyn Device>;

    /// Dynamic access for host-side test harnesses.
    fn as_any(&mut self) -> &mut dyn Any;

    /// A DMA transfer the device wants performed this step (None for the
    /// well-behaved majority).
    fn dma_request(&mut self) -> Option<DmaOp> {
        None
    }

    /// Completion callback for [`DmaOp::ReadMem`].
    fn dma_complete(&mut self, _data: Vec<u8>) {}
}

/// The set of devices attached to a machine.
pub struct DeviceSet {
    devices: Vec<Box<dyn Device>>,
}

impl fmt::Debug for DeviceSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_list()
            .entries(self.devices.iter().map(|d| d.name()))
            .finish()
    }
}

impl Clone for DeviceSet {
    fn clone(&self) -> Self {
        DeviceSet {
            devices: self.devices.iter().map(|d| d.boxed_clone()).collect(),
        }
    }
}

impl Default for DeviceSet {
    fn default() -> Self {
        DeviceSet::new()
    }
}

impl DeviceSet {
    /// An empty device set.
    pub fn new() -> DeviceSet {
        DeviceSet {
            devices: Vec::new(),
        }
    }

    /// Attaches a device, returning its index.
    ///
    /// # Panics
    ///
    /// Panics if the device's register block overlaps an existing one or
    /// lies outside the I/O page.
    pub fn attach(&mut self, dev: Box<dyn Device>) -> usize {
        let (b, l) = (dev.base(), dev.reg_len());
        assert!(
            b >= crate::mem::IO_BASE && b + l <= crate::mem::PHYS_SIZE,
            "device {} registers outside the I/O page",
            dev.name()
        );
        assert_eq!(b % 2, 0, "device base must be even");
        for d in &self.devices {
            let (db, dl) = (d.base(), d.reg_len());
            assert!(
                b + l <= db || db + dl <= b,
                "device {} overlaps {}",
                dev.name(),
                d.name()
            );
        }
        self.devices.push(dev);
        self.devices.len() - 1
    }

    /// Number of attached devices.
    pub fn len(&self) -> usize {
        self.devices.len()
    }

    /// True when no devices are attached.
    pub fn is_empty(&self) -> bool {
        self.devices.is_empty()
    }

    /// The device whose registers contain `addr`, if any.
    pub fn by_addr(&mut self, addr: PhysAddr) -> Option<&mut Box<dyn Device>> {
        self.devices
            .iter_mut()
            .find(|d| addr >= d.base() && addr < d.base() + d.reg_len())
    }

    /// The device at an index.
    pub fn get_mut(&mut self, index: usize) -> Option<&mut Box<dyn Device>> {
        self.devices.get_mut(index)
    }

    /// Shared access to the device at an index.
    pub fn get(&self, index: usize) -> Option<&dyn Device> {
        self.devices.get(index).map(|d| d.as_ref())
    }

    /// Typed access to a device by index.
    pub fn downcast_mut<T: Device + 'static>(&mut self, index: usize) -> Option<&mut T> {
        self.devices.get_mut(index)?.as_any().downcast_mut::<T>()
    }

    /// Ticks every device.
    pub fn tick_all(&mut self) {
        for d in &mut self.devices {
            d.tick();
        }
    }

    /// The highest-priority pending interrupt strictly above `level`,
    /// together with its device index. Ties break by device order.
    pub fn highest_pending(&self, level: u8) -> Option<(usize, InterruptRequest)> {
        self.devices
            .iter()
            .enumerate()
            .filter_map(|(i, d)| d.pending().map(|irq| (i, irq)))
            .filter(|(_, irq)| irq.priority > level)
            .max_by_key(|(i, irq)| (irq.priority, usize::MAX - i))
    }

    /// Collects DMA requests from all devices (index, op).
    pub fn collect_dma(&mut self) -> Vec<(usize, DmaOp)> {
        self.devices
            .iter_mut()
            .enumerate()
            .filter_map(|(i, d)| d.dma_request().map(|op| (i, op)))
            .collect()
    }

    /// Snapshots of every device's state, in attach order.
    pub fn snapshots(&self) -> Vec<Vec<Word>> {
        self.devices.iter().map(|d| d.snapshot()).collect()
    }

    /// Iterates over the devices.
    pub fn iter(&self) -> impl Iterator<Item = &Box<dyn Device>> {
        self.devices.iter()
    }
}

#[cfg(test)]
mod tests {
    use super::serial::SerialLine;
    use super::*;

    fn serial_at(base: PhysAddr, vector: Word) -> Box<dyn Device> {
        Box::new(SerialLine::new("tty", base, vector, 4))
    }

    #[test]
    fn attach_and_lookup_by_address() {
        let mut set = DeviceSet::new();
        let idx = set.attach(serial_at(0o777560, 0o60));
        assert_eq!(idx, 0);
        assert!(set.by_addr(0o777560).is_some());
        assert!(set.by_addr(0o777566).is_some());
        assert!(set.by_addr(0o777570).is_none());
    }

    #[test]
    #[should_panic(expected = "overlaps")]
    fn overlapping_devices_panic() {
        let mut set = DeviceSet::new();
        set.attach(serial_at(0o777560, 0o60));
        set.attach(serial_at(0o777564, 0o70));
    }

    #[test]
    #[should_panic(expected = "outside the I/O page")]
    fn device_outside_io_page_panics() {
        let mut set = DeviceSet::new();
        set.attach(serial_at(0o1000, 0o60));
    }

    #[test]
    fn highest_pending_respects_priority_level() {
        let mut set = DeviceSet::new();
        let a = set.attach(serial_at(0o777560, 0o60));
        set.downcast_mut::<SerialLine>(a).unwrap().host_send(b"x");
        set.downcast_mut::<SerialLine>(a)
            .unwrap()
            .set_rx_interrupt(true);
        set.tick_all();
        assert!(set.highest_pending(3).is_some());
        assert!(set.highest_pending(4).is_none());
        assert!(set.highest_pending(7).is_none());
    }

    #[test]
    fn clone_preserves_device_state() {
        let mut set = DeviceSet::new();
        let a = set.attach(serial_at(0o777560, 0o60));
        set.downcast_mut::<SerialLine>(a)
            .unwrap()
            .host_send(b"hello");
        let mut copy = set.clone();
        assert_eq!(copy.snapshots(), set.snapshots());
        // Mutating the copy does not affect the original.
        copy.downcast_mut::<SerialLine>(a).unwrap().host_send(b"!");
        assert_ne!(copy.snapshots(), set.snapshots());
    }
}

//! Fast-path caches for the execution engine: a decoded-instruction cache
//! and a software TLB.
//!
//! Both structures are *semantically invisible*: they memoize pure
//! functions of architectural state and are consulted only when provably
//! fresh. `decode` is a pure function of the 16-bit instruction word, so
//! decode-cache entries never invalidate; a translation is a pure function
//! of the segment descriptors, so TLB entries are valid exactly while the
//! MMU's generation counter (bumped on every PAR/PDR load) is unchanged.
//! Neither cache is part of modelled machine state — `Machine::clone`
//! resets them, so a snapshot or a re-imaged partition behaves
//! byte-identically to a fresh boot.

use crate::isa::{BinOp, BranchCond, Instr, Operand, UnOp};
use crate::psw::Mode;
use crate::types::{PhysAddr, Word};

/// Number of direct-mapped decode-cache slots (power of two).
const DECODE_SLOTS: usize = 1024;

/// A decoded instruction pre-specialized for execution.
///
/// The common register-direct forms carry their operands unpacked so the
/// execution engine can run them without addressing-mode resolution; every
/// other shape falls back to [`Cached::Generic`] and the full dispatcher.
/// Specialization is a pure function of the decoded [`Instr`], so cached
/// forms are as timeless as the decode itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Cached {
    /// Word-size double-operand op, both operands register-direct.
    RegReg { op: BinOp, src: u8, dst: u8 },
    /// Word-size double-operand op, immediate source (mode 2 on the PC),
    /// register-direct destination.
    ImmReg { op: BinOp, dst: u8 },
    /// Word-size single-operand op on a register.
    OneReg { op: UnOp, reg: u8 },
    /// Conditional branch.
    Branch { cond: BranchCond, offset: i8 },
    /// Everything else: run through the generic dispatcher.
    Generic(Instr),
}

impl Cached {
    /// Specializes a decoded instruction into its fast executable form.
    pub(crate) fn specialize(instr: Instr) -> Cached {
        let reg_direct = |o: Operand| o.mode == 0;
        let immediate = |o: Operand| o.mode == 2 && o.reg == 7;
        match instr {
            Instr::Double {
                op,
                byte: false,
                src,
                dst,
            } if reg_direct(dst) => {
                if reg_direct(src) {
                    Cached::RegReg {
                        op,
                        src: src.reg,
                        dst: dst.reg,
                    }
                } else if immediate(src) {
                    Cached::ImmReg { op, dst: dst.reg }
                } else {
                    Cached::Generic(instr)
                }
            }
            Instr::Single {
                op,
                byte: false,
                dst,
            } if reg_direct(dst) => Cached::OneReg { op, reg: dst.reg },
            Instr::Branch { cond, offset } => Cached::Branch { cond, offset },
            _ => Cached::Generic(instr),
        }
    }
}

/// A lazy direct-mapped cache from instruction word to its specialized
/// [`Cached`] form.
///
/// The backing store is allocated on first fill, so machines that never
/// execute (checker snapshots, templates) pay nothing for carrying one.
/// Entries carry the full word as tag — word 0 decodes to HALT, so there is
/// no spare encoding for "empty" and slots hold `Option`s.
#[derive(Debug, Default)]
pub(crate) struct DecodeCache {
    slots: Vec<Option<(Word, Cached)>>,
}

impl DecodeCache {
    pub(crate) fn new() -> DecodeCache {
        DecodeCache::default()
    }

    /// The cached decode of `word`, if present.
    #[inline]
    pub(crate) fn get(&self, word: Word) -> Option<Cached> {
        match self.slots.get(word as usize & (DECODE_SLOTS - 1)) {
            Some(&Some((tag, cached))) if tag == word => Some(cached),
            _ => None,
        }
    }

    /// Caches the specialized decode of `word`, evicting whatever shared
    /// its slot.
    #[inline]
    pub(crate) fn fill(&mut self, word: Word, cached: Cached) {
        if self.slots.is_empty() {
            self.slots = vec![None; DECODE_SLOTS];
        }
        self.slots[word as usize & (DECODE_SLOTS - 1)] = Some((word, cached));
    }
}

/// One cached translation: the segment's resolved base, length, and write
/// permission. Validity is implicit — the whole table is cleared whenever
/// the MMU generation moves.
#[derive(Debug, Clone, Copy, Default)]
struct TlbEntry {
    valid: bool,
    writable: bool,
    base: PhysAddr,
    len: u32,
}

/// A software TLB: one entry per (mode, segment).
///
/// `seen_gen` records the MMU generation the entries were filled under;
/// a lookup under any other generation first drops the whole table. The
/// generation starts at 0, below any real MMU generation, so a fresh TLB
/// can never hit.
#[derive(Debug, Default)]
pub(crate) struct Tlb {
    seen_gen: u64,
    entries: [[TlbEntry; 8]; 2],
}

impl Tlb {
    pub(crate) fn new() -> Tlb {
        Tlb::default()
    }

    /// True when the table was filled under a different MMU generation and
    /// must be dropped before use.
    #[inline]
    pub(crate) fn stale(&self, generation: u64) -> bool {
        self.seen_gen != generation
    }

    /// Drops every entry and adopts `generation`.
    #[inline]
    pub(crate) fn reset(&mut self, generation: u64) {
        self.seen_gen = generation;
        self.entries = Default::default();
    }

    /// The cached physical address for `(mode, seg, offset)`, or `None` on
    /// a miss. A write through a read-only entry misses (the slow path then
    /// raises the abort), as does any offset at or past the cached length.
    #[inline]
    pub(crate) fn lookup(
        &self,
        mode: Mode,
        seg: usize,
        offset: u32,
        write: bool,
    ) -> Option<PhysAddr> {
        let e = &self.entries[mode_index(mode)][seg];
        if e.valid && offset < e.len && (!write || e.writable) {
            Some(e.base + offset)
        } else {
            None
        }
    }

    /// Caches a successful translation's segment parameters.
    #[inline]
    pub(crate) fn fill(
        &mut self,
        mode: Mode,
        seg: usize,
        base: PhysAddr,
        len: u32,
        writable: bool,
    ) {
        self.entries[mode_index(mode)][seg] = TlbEntry {
            valid: true,
            writable,
            base,
            len,
        };
    }
}

/// A one-entry instruction-fetch window (an L0 I-TLB): the RAM span of the
/// segment the PC last fetched from.
///
/// While the MMU generation and CPU mode are unchanged and the (even) PC
/// stays inside `[lo, hi)`, a fetch is a direct RAM read at
/// `base + (pc - lo)` with no translate call at all. Only spans that lie
/// entirely in RAM are cached, so a fetch that could touch the I/O page
/// always takes the slow path and sees live device state. `hi` is a `u32`
/// exclusive bound because segment 7 ends at `0o200000`, one past `Word`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct FetchWin {
    valid: bool,
    gen: u64,
    mode: Mode,
    lo: Word,
    hi: u32,
    base: PhysAddr,
}

impl FetchWin {
    pub(crate) fn new() -> FetchWin {
        FetchWin {
            valid: false,
            gen: 0,
            mode: Mode::Kernel,
            lo: 0,
            hi: 0,
            base: 0,
        }
    }

    /// The physical address of the instruction word at `pc`, or `None` when
    /// the window is stale (generation or mode moved), `pc` is outside it,
    /// or `pc` is odd (the slow path raises the odd-address trap).
    #[inline]
    pub(crate) fn lookup(&self, pc: Word, generation: u64, mode: Mode) -> Option<PhysAddr> {
        if self.valid
            && self.gen == generation
            && self.mode == mode
            && pc & 1 == 0
            && pc >= self.lo
            && (pc as u32) < self.hi
        {
            Some(self.base + (pc - self.lo) as PhysAddr)
        } else {
            None
        }
    }

    /// Adopts a new window.
    #[inline]
    pub(crate) fn fill(&mut self, generation: u64, mode: Mode, lo: Word, hi: u32, base: PhysAddr) {
        *self = FetchWin {
            valid: true,
            gen: generation,
            mode,
            lo,
            hi,
            base,
        };
    }

    /// Drops the window.
    #[inline]
    pub(crate) fn clear(&mut self) {
        self.valid = false;
    }
}

#[inline]
fn mode_index(mode: Mode) -> usize {
    match mode {
        Mode::Kernel => 0,
        Mode::User => 1,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::isa::decode;

    #[test]
    fn decode_cache_round_trips_and_tags_exactly() {
        let mut c = DecodeCache::new();
        let halt = Cached::specialize(decode(0).unwrap());
        assert_eq!(c.get(0), None);
        c.fill(0, halt);
        assert_eq!(c.get(0), Some(halt));
        // A word that shares slot 0 modulo the table size must miss.
        let aliasing = DECODE_SLOTS as Word;
        assert_eq!(c.get(aliasing), None);
    }

    #[test]
    fn specialization_picks_the_fast_forms_exactly() {
        let spec = |word| Cached::specialize(decode(word).unwrap());
        // ADD R1, R2 — both register-direct.
        assert_eq!(
            spec(0o060102),
            Cached::RegReg {
                op: BinOp::Add,
                src: 1,
                dst: 2
            }
        );
        // ADD (R2)+, R3 — autoincrement on anything but the PC is generic.
        assert!(matches!(spec(0o062203), Cached::Generic(_)));
        // ADD #imm, R3 — mode 2 on the PC is the immediate form.
        assert_eq!(
            spec(0o062703),
            Cached::ImmReg {
                op: BinOp::Add,
                dst: 3
            }
        );
        // ADD R1, (R2) — memory destination is generic.
        assert!(matches!(spec(0o060112), Cached::Generic(_)));
        // INC R1 — register-direct single op.
        assert_eq!(
            spec(0o005201),
            Cached::OneReg {
                op: UnOp::Inc,
                reg: 1
            }
        );
        // INCB R1 — byte ops stay generic.
        assert!(matches!(spec(0o105201), Cached::Generic(_)));
        // BR .-2 — branches carry their condition and offset.
        assert_eq!(
            spec(0o000776),
            Cached::Branch {
                cond: BranchCond::Br,
                offset: -2
            }
        );
    }

    #[test]
    fn fetch_window_respects_bounds_generation_mode_and_alignment() {
        let mut w = FetchWin::new();
        assert_eq!(w.lookup(0, 1, Mode::User), None);
        // Segment 7 of user space: [0o160000, 0o200000) — the high bound
        // only representable as a u32.
        w.fill(3, Mode::User, 0o160000, 0o200000, 0o40000);
        assert_eq!(w.lookup(0o160000, 3, Mode::User), Some(0o40000));
        assert_eq!(w.lookup(0o177776, 3, Mode::User), Some(0o57776));
        assert_eq!(w.lookup(0o157776, 3, Mode::User), None, "below the window");
        assert_eq!(w.lookup(0o160001, 3, Mode::User), None, "odd PC");
        assert_eq!(w.lookup(0o160000, 4, Mode::User), None, "stale generation");
        assert_eq!(w.lookup(0o160000, 3, Mode::Kernel), None, "other mode");
        w.clear();
        assert_eq!(w.lookup(0o160000, 3, Mode::User), None);
    }

    #[test]
    fn tlb_respects_length_write_and_generation() {
        let mut t = Tlb::new();
        assert!(t.stale(1));
        t.reset(1);
        t.fill(Mode::User, 0, 0o40000, 0o1000, false);
        assert_eq!(t.lookup(Mode::User, 0, 0o777, false), Some(0o40777));
        assert_eq!(t.lookup(Mode::User, 0, 0o1000, false), None);
        assert_eq!(t.lookup(Mode::User, 0, 0, true), None);
        assert_eq!(t.lookup(Mode::Kernel, 0, 0, false), None);
        assert!(t.stale(2));
        t.reset(2);
        assert_eq!(t.lookup(Mode::User, 0, 0, false), None);
    }
}

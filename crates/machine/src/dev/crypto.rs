//! A memory-mapped block-cipher unit (the SNFE's "crypto").
//!
//! The paper treats the crypto as "a trusted physical device"; we model it
//! as a register-file peripheral implementing XTEA (64-bit block, 128-bit
//! key, 32 rounds). XTEA here is a stand-in for the real cryptographic
//! equipment — the property the reproduction needs is only that ciphertext
//! is not cleartext and that the key never leaves the device except by
//! explicit host loading.
//!
//! Register layout (byte offsets from base, decimal):
//!
//! | offset | register |
//! |--------|----------|
//! | 0      | CSR: bit 0 = encrypt go, bit 1 = decrypt go, bit 7 = done, bit 6 = IE |
//! | 2–16   | KEY0–KEY7 (write-only; read back as zero) |
//! | 18–24  | IN0–IN3 (the 64-bit block, low word first) |
//! | 26–32  | OUT0–OUT3 (read-only) |

use crate::dev::{Device, InterruptRequest};
use crate::types::{PhysAddr, Word};
use core::any::Any;

/// CSR bit 0: start encryption.
pub const CSR_GO_ENC: Word = 0o001;
/// CSR bit 1: start decryption.
pub const CSR_GO_DEC: Word = 0o002;
/// CSR bit 6: interrupt enable.
pub const CSR_IE: Word = 0o100;
/// CSR bit 7: done.
pub const CSR_DONE: Word = 0o200;

/// Processing delay in ticks.
const CRYPT_DELAY: u8 = 2;

/// Number of XTEA rounds.
const ROUNDS: u32 = 32;

/// XTEA key schedule constant.
const DELTA: u32 = 0x9E37_79B9;

/// Encrypts one 64-bit block under a 128-bit key.
pub fn xtea_encrypt(block: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let [mut v0, mut v1] = block;
    let mut sum: u32 = 0;
    for _ in 0..ROUNDS {
        v0 = v0.wrapping_add(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
        sum = sum.wrapping_add(DELTA);
        v1 = v1.wrapping_add(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
    }
    [v0, v1]
}

/// Decrypts one 64-bit block under a 128-bit key.
pub fn xtea_decrypt(block: [u32; 2], key: [u32; 4]) -> [u32; 2] {
    let [mut v0, mut v1] = block;
    let mut sum: u32 = DELTA.wrapping_mul(ROUNDS);
    for _ in 0..ROUNDS {
        v1 = v1.wrapping_sub(
            (((v0 << 4) ^ (v0 >> 5)).wrapping_add(v0))
                ^ (sum.wrapping_add(key[((sum >> 11) & 3) as usize])),
        );
        sum = sum.wrapping_sub(DELTA);
        v0 = v0.wrapping_sub(
            (((v1 << 4) ^ (v1 >> 5)).wrapping_add(v1))
                ^ (sum.wrapping_add(key[(sum & 3) as usize])),
        );
    }
    [v0, v1]
}

/// The crypto unit.
#[derive(Debug, Clone)]
pub struct CryptoUnit {
    base: PhysAddr,
    vector: Word,
    priority: u8,
    key: [Word; 8],
    input: [Word; 4],
    output: [Word; 4],
    done: bool,
    ie: bool,
    irq: bool,
    busy: Option<(bool, u8)>, // (encrypt?, remaining delay)
}

impl CryptoUnit {
    /// A crypto unit at `base` with the given interrupt vector.
    pub fn new(base: PhysAddr, vector: Word) -> CryptoUnit {
        CryptoUnit {
            base,
            vector,
            priority: 5,
            key: [0; 8],
            input: [0; 4],
            output: [0; 4],
            done: true,
            ie: false,
            irq: false,
            busy: None,
        }
    }

    /// Host side: load a key directly (as the key-fill officer would).
    pub fn host_load_key(&mut self, key: [Word; 8]) {
        self.key = key;
    }

    fn key_u32(&self) -> [u32; 4] {
        let k = &self.key;
        [
            (k[0] as u32) | ((k[1] as u32) << 16),
            (k[2] as u32) | ((k[3] as u32) << 16),
            (k[4] as u32) | ((k[5] as u32) << 16),
            (k[6] as u32) | ((k[7] as u32) << 16),
        ]
    }

    fn input_block(&self) -> [u32; 2] {
        [
            (self.input[0] as u32) | ((self.input[1] as u32) << 16),
            (self.input[2] as u32) | ((self.input[3] as u32) << 16),
        ]
    }

    fn set_output(&mut self, block: [u32; 2]) {
        self.output = [
            (block[0] & 0xFFFF) as Word,
            (block[0] >> 16) as Word,
            (block[1] & 0xFFFF) as Word,
            (block[1] >> 16) as Word,
        ];
    }
}

impl Device for CryptoUnit {
    fn name(&self) -> &str {
        "crypto"
    }

    fn base(&self) -> PhysAddr {
        self.base
    }

    fn reg_len(&self) -> u32 {
        34
    }

    fn read_reg(&mut self, offset: u32) -> Word {
        match offset {
            0 => (if self.done { CSR_DONE } else { 0 }) | (if self.ie { CSR_IE } else { 0 }),
            // The key is write-only: it cannot be exfiltrated through the
            // register file.
            2..=16 => 0,
            18..=24 if offset.is_multiple_of(2) => self.input[((offset - 18) / 2) as usize],
            26..=32 if offset.is_multiple_of(2) => self.output[((offset - 26) / 2) as usize],
            _ => 0,
        }
    }

    fn write_reg(&mut self, offset: u32, value: Word) {
        match offset {
            0 => {
                self.ie = value & CSR_IE != 0;
                if self.done && value & (CSR_GO_ENC | CSR_GO_DEC) != 0 {
                    let encrypt = value & CSR_GO_ENC != 0;
                    self.done = false;
                    self.busy = Some((encrypt, CRYPT_DELAY));
                }
            }
            2..=16 if offset.is_multiple_of(2) => {
                self.key[((offset - 2) / 2) as usize] = value;
            }
            18..=24 if offset.is_multiple_of(2) => {
                self.input[((offset - 18) / 2) as usize] = value;
            }
            _ => {}
        }
    }

    fn tick(&mut self) {
        if let Some((encrypt, delay)) = self.busy {
            if delay == 0 {
                let block = self.input_block();
                let key = self.key_u32();
                let out = if encrypt {
                    xtea_encrypt(block, key)
                } else {
                    xtea_decrypt(block, key)
                };
                self.set_output(out);
                self.busy = None;
                self.done = true;
                if self.ie {
                    self.irq = true;
                }
            } else {
                self.busy = Some((encrypt, delay - 1));
            }
        }
    }

    fn pending(&self) -> Option<InterruptRequest> {
        self.irq.then_some(InterruptRequest {
            vector: self.vector,
            priority: self.priority,
        })
    }

    fn acknowledge(&mut self) {
        self.irq = false;
    }

    fn snapshot(&self) -> Vec<Word> {
        // Format: key[8], input[4], output[4], done, ie, irq, busy_flag,
        // busy_encrypt, busy_delay.
        let (bf, be, bd) = match self.busy {
            Some((enc, d)) => (1, enc as Word, d as Word),
            None => (0, 0, 0),
        };
        let mut v = Vec::with_capacity(22);
        v.extend_from_slice(&self.key);
        v.extend_from_slice(&self.input);
        v.extend_from_slice(&self.output);
        v.extend_from_slice(&[
            self.done as Word,
            self.ie as Word,
            self.irq as Word,
            bf,
            be,
            bd,
        ]);
        v
    }

    fn restore(&mut self, snapshot: &[Word]) {
        assert_eq!(snapshot.len(), 22, "crypto snapshot malformed");
        self.key.copy_from_slice(&snapshot[0..8]);
        self.input.copy_from_slice(&snapshot[8..12]);
        self.output.copy_from_slice(&snapshot[12..16]);
        self.done = snapshot[16] != 0;
        self.ie = snapshot[17] != 0;
        self.irq = snapshot[18] != 0;
        self.busy = (snapshot[19] != 0).then_some((snapshot[20] != 0, snapshot[21] as u8));
    }

    fn boxed_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Register file offsets.
    const IN0: u32 = 18;
    const OUT0: u32 = 26;

    #[test]
    fn xtea_roundtrip() {
        let key = [0x0123_4567, 0x89AB_CDEF, 0xFEDC_BA98, 0x7654_3210];
        let block = [0xDEAD_BEEF, 0x0BAD_F00D];
        let ct = xtea_encrypt(block, key);
        assert_ne!(ct, block);
        assert_eq!(xtea_decrypt(ct, key), block);
    }

    #[test]
    fn xtea_known_answer() {
        // All-zero key and block: a self-consistency vector pinned here so
        // accidental algorithm changes are caught.
        let ct = xtea_encrypt([0, 0], [0, 0, 0, 0]);
        assert_eq!(xtea_decrypt(ct, [0, 0, 0, 0]), [0, 0]);
        assert_ne!(ct, [0, 0]);
    }

    fn run_block(c: &mut CryptoUnit, go: Word) {
        c.write_reg(0, go);
        for _ in 0..=CRYPT_DELAY as u32 {
            c.tick();
        }
        assert_ne!(c.read_reg(0) & CSR_DONE, 0);
    }

    #[test]
    fn register_file_encrypt_decrypt() {
        let mut c = CryptoUnit::new(0o777400, 0o300);
        c.host_load_key([1, 2, 3, 4, 5, 6, 7, 8]);
        for (i, w) in [0o111, 0o222, 0o333, 0o444].iter().enumerate() {
            c.write_reg(IN0 + 2 * i as u32, *w);
        }
        run_block(&mut c, CSR_GO_ENC);
        let ct: Vec<Word> = (0..4).map(|i| c.read_reg(OUT0 + 2 * i)).collect();
        assert_ne!(ct, vec![0o111, 0o222, 0o333, 0o444]);
        // Feed ciphertext back and decrypt.
        for (i, w) in ct.iter().enumerate() {
            c.write_reg(IN0 + 2 * i as u32, *w);
        }
        run_block(&mut c, CSR_GO_DEC);
        let pt: Vec<Word> = (0..4).map(|i| c.read_reg(OUT0 + 2 * i)).collect();
        assert_eq!(pt, vec![0o111, 0o222, 0o333, 0o444]);
    }

    #[test]
    fn key_is_write_only() {
        let mut c = CryptoUnit::new(0o777400, 0o300);
        c.write_reg(2, 0o7777);
        assert_eq!(c.read_reg(2), 0);
    }

    #[test]
    fn interrupt_on_completion() {
        let mut c = CryptoUnit::new(0o777400, 0o300);
        c.write_reg(0, CSR_IE | CSR_GO_ENC);
        assert!(c.pending().is_none());
        for _ in 0..=CRYPT_DELAY as u32 {
            c.tick();
        }
        assert_eq!(c.pending().unwrap().vector, 0o300);
        c.acknowledge();
        assert!(c.pending().is_none());
    }
}

//! A DMA-capable disk — the threat the SUE design rules out.
//!
//! > "Input/output via Direct Memory Access (DMA) poses a security threat on
//! > most machines (including PDP-11s) since it uses absolute addresses and
//! > thereby evades the protection of the memory management hardware. ...
//! > The SUE adopts a far more ruthless approach: DMA is permanently
//! > excluded from the system."
//!
//! [`DmaDisk`] is an RK11-flavoured block device whose transfers move bytes
//! to and from *physical* addresses. A machine configured with
//! `allow_dma = false` (the default, and the SUE's stance) refuses the
//! transfers; enabling them demonstrates, in tests and in experiment E8,
//! exactly how DMA destroys separation.
//!
//! Registers (byte offsets): CSR (+0), physical address low 16 bits (+2),
//! word count (+4), sector number (+6). CSR bits: 0 = go, 1 = direction
//! (0 = read sector into memory, 1 = write memory to sector), bits 4–5 =
//! physical address bits 16–17, bit 7 = done, bit 6 = IE.

use crate::dev::{Device, DmaOp, InterruptRequest};
use crate::types::{PhysAddr, Word};
use core::any::Any;

/// CSR bit 0: start a transfer.
pub const CSR_GO: Word = 0o001;
/// CSR bit 1: transfer direction (set = memory → disk).
pub const CSR_WRITE: Word = 0o002;
/// CSR bit 6: interrupt enable.
pub const CSR_IE: Word = 0o100;
/// CSR bit 7: done.
pub const CSR_DONE: Word = 0o200;

/// Bytes per sector.
pub const SECTOR_SIZE: usize = 64;

/// Number of sectors on the disk.
pub const SECTOR_COUNT: usize = 16;

/// The DMA disk.
#[derive(Debug, Clone)]
pub struct DmaDisk {
    base: PhysAddr,
    vector: Word,
    priority: u8,
    csr: Word,
    mem_addr_low: Word,
    word_count: Word,
    sector: Word,
    storage: Vec<u8>,
    pending_op: Option<DmaOp>,
    write_back: Option<usize>, // sector awaiting dma_complete data
    irq: bool,
}

impl DmaDisk {
    /// A disk at `base` with the given interrupt vector.
    pub fn new(base: PhysAddr, vector: Word) -> DmaDisk {
        DmaDisk {
            base,
            vector,
            priority: 5,
            csr: CSR_DONE,
            mem_addr_low: 0,
            word_count: 0,
            sector: 0,
            storage: vec![0; SECTOR_SIZE * SECTOR_COUNT],
            pending_op: None,
            write_back: None,
            irq: false,
        }
    }

    /// Host side: read a sector's contents directly.
    pub fn host_sector(&self, sector: usize) -> &[u8] {
        &self.storage[sector * SECTOR_SIZE..(sector + 1) * SECTOR_SIZE]
    }

    /// Host side: fill a sector directly.
    pub fn host_fill_sector(&mut self, sector: usize, data: &[u8]) {
        let s = &mut self.storage[sector * SECTOR_SIZE..(sector + 1) * SECTOR_SIZE];
        s[..data.len()].copy_from_slice(data);
    }

    fn phys_addr(&self) -> PhysAddr {
        (self.mem_addr_low as u32) | (((self.csr as u32 >> 4) & 0b11) << 16)
    }

    fn transfer_len(&self) -> u32 {
        (self.word_count as u32 * 2).min(SECTOR_SIZE as u32)
    }
}

impl Device for DmaDisk {
    fn name(&self) -> &str {
        "rk-dma"
    }

    fn base(&self) -> PhysAddr {
        self.base
    }

    fn reg_len(&self) -> u32 {
        8
    }

    fn read_reg(&mut self, offset: u32) -> Word {
        match offset {
            0 => self.csr,
            2 => self.mem_addr_low,
            4 => self.word_count,
            6 => self.sector,
            _ => 0,
        }
    }

    fn write_reg(&mut self, offset: u32, value: Word) {
        match offset {
            0 => {
                self.csr = (self.csr & CSR_DONE) | (value & !CSR_DONE);
                if value & CSR_GO != 0 && self.csr & CSR_DONE != 0 {
                    self.csr &= !CSR_DONE;
                    let sector = (self.sector as usize) % SECTOR_COUNT;
                    let len = self.transfer_len();
                    if value & CSR_WRITE != 0 {
                        // Memory → disk: ask the machine for the bytes.
                        self.pending_op = Some(DmaOp::ReadMem {
                            addr: self.phys_addr(),
                            len,
                        });
                        self.write_back = Some(sector);
                    } else {
                        // Disk → memory: push the sector at physical addr.
                        let data = self.storage
                            [sector * SECTOR_SIZE..sector * SECTOR_SIZE + len as usize]
                            .to_vec();
                        self.pending_op = Some(DmaOp::WriteMem {
                            addr: self.phys_addr(),
                            data,
                        });
                    }
                }
            }
            2 => self.mem_addr_low = value,
            4 => self.word_count = value,
            6 => self.sector = value,
            _ => {}
        }
    }

    fn tick(&mut self) {}

    fn pending(&self) -> Option<InterruptRequest> {
        self.irq.then_some(InterruptRequest {
            vector: self.vector,
            priority: self.priority,
        })
    }

    fn acknowledge(&mut self) {
        self.irq = false;
    }

    fn snapshot(&self) -> Vec<Word> {
        // Format: [csr, mem_addr_low, word_count, sector, irq, wb_flag,
        // wb_sector, storage words...]. A transfer in flight (pending_op)
        // cannot be snapshotted; callers snapshot between steps.
        assert!(self.pending_op.is_none(), "snapshot with DMA in flight");
        let (wf, ws) = match self.write_back {
            Some(s) => (1, s as Word),
            None => (0, 0),
        };
        let mut v = vec![
            self.csr,
            self.mem_addr_low,
            self.word_count,
            self.sector,
            self.irq as Word,
            wf,
            ws,
        ];
        v.extend(
            self.storage
                .chunks(2)
                .map(|c| u16::from_le_bytes([c[0], c[1]])),
        );
        v
    }

    fn restore(&mut self, snapshot: &[Word]) {
        let header = 7;
        assert_eq!(
            snapshot.len(),
            header + SECTOR_SIZE * SECTOR_COUNT / 2,
            "dma snapshot malformed"
        );
        self.csr = snapshot[0];
        self.mem_addr_low = snapshot[1];
        self.word_count = snapshot[2];
        self.sector = snapshot[3];
        self.irq = snapshot[4] != 0;
        self.write_back = (snapshot[5] != 0).then_some(snapshot[6] as usize);
        self.pending_op = None;
        for (i, w) in snapshot[header..].iter().enumerate() {
            let [lo, hi] = w.to_le_bytes();
            self.storage[2 * i] = lo;
            self.storage[2 * i + 1] = hi;
        }
    }

    fn boxed_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }

    fn dma_request(&mut self) -> Option<DmaOp> {
        let op = self.pending_op.take();
        if op.is_some() && self.write_back.is_none() {
            // Disk → memory transfers complete as soon as the machine
            // performs them.
            self.csr |= CSR_DONE;
            if self.csr & CSR_IE != 0 {
                self.irq = true;
            }
        }
        op
    }

    fn dma_complete(&mut self, data: Vec<u8>) {
        if let Some(sector) = self.write_back.take() {
            let s = &mut self.storage[sector * SECTOR_SIZE..sector * SECTOR_SIZE + data.len()];
            s.copy_from_slice(&data);
            self.csr |= CSR_DONE;
            if self.csr & CSR_IE != 0 {
                self.irq = true;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_transfer_emits_write_mem_op() {
        let mut d = DmaDisk::new(0o777440, 0o220);
        d.host_fill_sector(2, b"secret sector data");
        d.write_reg(2, 0o1000); // physical address
        d.write_reg(4, 4); // 4 words = 8 bytes
        d.write_reg(6, 2); // sector
        d.write_reg(0, CSR_GO);
        match d.dma_request().unwrap() {
            DmaOp::WriteMem { addr, data } => {
                assert_eq!(addr, 0o1000);
                assert_eq!(&data, b"secret s");
            }
            other => panic!("{other:?}"),
        }
        assert_ne!(d.read_reg(0) & CSR_DONE, 0);
    }

    #[test]
    fn write_transfer_reads_memory_then_stores() {
        let mut d = DmaDisk::new(0o777440, 0o220);
        d.write_reg(2, 0o2000);
        d.write_reg(4, 3);
        d.write_reg(6, 1);
        d.write_reg(0, CSR_GO | CSR_WRITE);
        match d.dma_request().unwrap() {
            DmaOp::ReadMem { addr, len } => {
                assert_eq!(addr, 0o2000);
                assert_eq!(len, 6);
            }
            other => panic!("{other:?}"),
        }
        assert_eq!(d.read_reg(0) & CSR_DONE, 0);
        d.dma_complete(b"ABCDEF".to_vec());
        assert_ne!(d.read_reg(0) & CSR_DONE, 0);
        assert_eq!(&d.host_sector(1)[..6], b"ABCDEF");
    }

    #[test]
    fn extended_address_bits_from_csr() {
        let mut d = DmaDisk::new(0o777440, 0o220);
        d.write_reg(2, 0o1000);
        d.write_reg(4, 1);
        // CSR bits 4-5 = 0b11 → address bits 16-17.
        d.write_reg(0, CSR_GO | 0o060);
        match d.dma_request().unwrap() {
            DmaOp::WriteMem { addr, .. } => assert_eq!(addr, 0o600000 + 0o1000),
            other => panic!("{other:?}"),
        }
    }

    #[test]
    fn interrupt_after_completion_when_enabled() {
        let mut d = DmaDisk::new(0o777440, 0o220);
        d.write_reg(4, 1);
        d.write_reg(0, CSR_GO | CSR_IE);
        assert!(d.pending().is_none());
        let _ = d.dma_request();
        assert_eq!(d.pending().unwrap().vector, 0o220);
    }
}

//! A KW11-style line-time clock.
//!
//! One register (LKS): bit 7 is the monitor bit, set every `period` ticks;
//! bit 6 enables interrupts. Reading does not clear the monitor bit; writing
//! does (writing also sets the enable bit as given). Interrupts vector
//! through 0o100 at priority 6 on the real machine.

use crate::dev::{Device, InterruptRequest};
use crate::types::{PhysAddr, Word};
use core::any::Any;

/// LKS bit 7: clock monitor.
pub const LKS_MONITOR: Word = 0o200;
/// LKS bit 6: interrupt enable.
pub const LKS_IE: Word = 0o100;

/// The line-time clock.
#[derive(Debug, Clone)]
pub struct LineClock {
    base: PhysAddr,
    vector: Word,
    priority: u8,
    period: u32,
    counter: u32,
    monitor: bool,
    ie: bool,
    irq: bool,
    /// Total ticks elapsed (host-visible, for tests and experiments).
    pub ticks: u64,
}

impl LineClock {
    /// A clock raising its monitor bit every `period` machine steps.
    pub fn new(base: PhysAddr, vector: Word, period: u32) -> LineClock {
        assert!(period > 0, "clock period must be positive");
        LineClock {
            base,
            vector,
            priority: 6,
            period,
            counter: 0,
            monitor: false,
            ie: false,
            irq: false,
            ticks: 0,
        }
    }
}

impl Device for LineClock {
    fn name(&self) -> &str {
        "kw11"
    }

    fn base(&self) -> PhysAddr {
        self.base
    }

    fn reg_len(&self) -> u32 {
        2
    }

    fn read_reg(&mut self, _offset: u32) -> Word {
        (if self.monitor { LKS_MONITOR } else { 0 }) | (if self.ie { LKS_IE } else { 0 })
    }

    fn write_reg(&mut self, _offset: u32, value: Word) {
        self.monitor = false;
        self.ie = value & LKS_IE != 0;
    }

    fn tick(&mut self) {
        self.ticks += 1;
        self.counter += 1;
        if self.counter >= self.period {
            self.counter = 0;
            self.monitor = true;
            if self.ie {
                self.irq = true;
            }
        }
    }

    fn pending(&self) -> Option<InterruptRequest> {
        self.irq.then_some(InterruptRequest {
            vector: self.vector,
            priority: self.priority,
        })
    }

    fn acknowledge(&mut self) {
        self.irq = false;
    }

    fn snapshot(&self) -> Vec<Word> {
        // Format: [counter, monitor, ie, irq]. The host-side `ticks` total
        // is excluded: it grows without bound and is record-keeping only.
        vec![
            self.counter as Word,
            self.monitor as Word,
            self.ie as Word,
            self.irq as Word,
        ]
    }

    fn restore(&mut self, snapshot: &[Word]) {
        assert_eq!(snapshot.len(), 4, "clock snapshot malformed");
        self.counter = snapshot[0] as u32;
        self.monitor = snapshot[1] != 0;
        self.ie = snapshot[2] != 0;
        self.irq = snapshot[3] != 0;
        self.ticks = 0;
    }

    fn boxed_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn monitor_sets_every_period() {
        let mut c = LineClock::new(0o777546, 0o100, 3);
        for _ in 0..2 {
            c.tick();
            assert_eq!(c.read_reg(0) & LKS_MONITOR, 0);
        }
        c.tick();
        assert_eq!(c.read_reg(0) & LKS_MONITOR, LKS_MONITOR);
    }

    #[test]
    fn write_clears_monitor() {
        let mut c = LineClock::new(0o777546, 0o100, 1);
        c.tick();
        assert_ne!(c.read_reg(0) & LKS_MONITOR, 0);
        c.write_reg(0, 0);
        assert_eq!(c.read_reg(0) & LKS_MONITOR, 0);
    }

    #[test]
    fn interrupt_only_when_enabled() {
        let mut c = LineClock::new(0o777546, 0o100, 1);
        c.tick();
        assert!(c.pending().is_none());
        c.write_reg(0, LKS_IE);
        c.tick();
        let irq = c.pending().unwrap();
        assert_eq!(irq.vector, 0o100);
        assert_eq!(irq.priority, 6);
        c.acknowledge();
        assert!(c.pending().is_none());
    }

    #[test]
    #[should_panic(expected = "period must be positive")]
    fn zero_period_panics() {
        LineClock::new(0o777546, 0o100, 0);
    }
}

//! A DL11-style asynchronous serial line unit.
//!
//! Four word registers: receiver status (RCSR), receiver buffer (RBUF),
//! transmitter status (XCSR), transmitter buffer (XBUF). The host side of
//! the line (a terminal, another machine, a communications line) is driven
//! through [`SerialLine::host_send`] and [`SerialLine::host_take_output`].
//! Receive interrupts use the device's vector; transmit interrupts use
//! vector + 4, as on the real unit.

use crate::dev::{Device, InterruptRequest};
use crate::types::{PhysAddr, Word};
use core::any::Any;
use std::collections::VecDeque;

/// RCSR/XCSR bit 7: done/ready.
pub const CSR_DONE: Word = 0o200;
/// RCSR/XCSR bit 6: interrupt enable.
pub const CSR_IE: Word = 0o100;

/// Transmit delay in ticks (models line speed).
const TX_DELAY: u8 = 1;

/// Receive-queue depth; bytes beyond it are dropped by the line discipline.
/// Bounding the queue keeps machine state spaces finite for verification.
pub const RX_CAPACITY: usize = 256;

/// A serial line unit.
#[derive(Debug, Clone)]
pub struct SerialLine {
    name: String,
    base: PhysAddr,
    vector: Word,
    priority: u8,
    // Receiver.
    rx_capacity: usize,
    rx_queue: VecDeque<u8>,
    rbuf: u8,
    rx_done: bool,
    rx_ie: bool,
    rx_irq: bool,
    // Transmitter.
    tx_ready: bool,
    tx_ie: bool,
    tx_irq: bool,
    tx_shift: Option<(u8, u8)>, // (char, remaining delay)
    /// The byte most recently placed on the line (`0o400 | byte`), or 0 if
    /// none yet. Part of the model state; `tx_out` is host-side only.
    last_tx: Word,
    tx_out: Vec<u8>,
}

impl SerialLine {
    /// A serial line at `base` with receive vector `vector` and the given
    /// bus priority.
    pub fn new(name: &str, base: PhysAddr, vector: Word, priority: u8) -> SerialLine {
        SerialLine {
            name: name.to_string(),
            base,
            vector,
            priority,
            rx_capacity: RX_CAPACITY,
            rx_queue: VecDeque::new(),
            rbuf: 0,
            rx_done: false,
            rx_ie: false,
            rx_irq: false,
            tx_ready: true,
            tx_ie: false,
            tx_irq: false,
            tx_shift: None,
            last_tx: 0,
            tx_out: Vec::new(),
        }
    }

    /// Shrinks the receive queue to `capacity` bytes (the default is
    /// [`RX_CAPACITY`]), builder-style. A tightly bounded queue models a
    /// line with no buffering — extra bytes fall on the floor — and keeps
    /// exhaustively explored state spaces small.
    pub fn with_rx_capacity(mut self, capacity: usize) -> SerialLine {
        self.rx_capacity = capacity.min(RX_CAPACITY);
        self
    }

    /// Host side: queue bytes for the CPU to receive. Bytes beyond the
    /// receive capacity are dropped (and counted in the return value).
    pub fn host_send(&mut self, bytes: &[u8]) -> usize {
        let room = self.rx_capacity.saturating_sub(self.rx_queue.len());
        let take = bytes.len().min(room);
        self.rx_queue.extend(bytes[..take].iter().copied());
        bytes.len() - take
    }

    /// Host side: take everything the CPU has transmitted so far.
    pub fn host_take_output(&mut self) -> Vec<u8> {
        core::mem::take(&mut self.tx_out)
    }

    /// Host side: peek at transmitted output without consuming it.
    pub fn host_peek_output(&self) -> &[u8] {
        &self.tx_out
    }

    /// Number of bytes waiting to be received by the CPU.
    pub fn host_rx_backlog(&self) -> usize {
        self.rx_queue.len() + usize::from(self.rx_done)
    }

    /// Enables or disables the receive interrupt (as the CPU would by
    /// setting RCSR bit 6); exposed for test harnesses.
    pub fn set_rx_interrupt(&mut self, enable: bool) {
        self.rx_ie = enable;
        if enable && self.rx_done {
            self.rx_irq = true;
        }
    }
}

impl Device for SerialLine {
    fn name(&self) -> &str {
        &self.name
    }

    fn base(&self) -> PhysAddr {
        self.base
    }

    fn reg_len(&self) -> u32 {
        8
    }

    fn read_reg(&mut self, offset: u32) -> Word {
        match offset {
            0 => (if self.rx_done { CSR_DONE } else { 0 }) | (if self.rx_ie { CSR_IE } else { 0 }),
            2 => {
                self.rx_done = false;
                self.rx_irq = false;
                self.rbuf as Word
            }
            4 => (if self.tx_ready { CSR_DONE } else { 0 }) | (if self.tx_ie { CSR_IE } else { 0 }),
            _ => 0,
        }
    }

    fn write_reg(&mut self, offset: u32, value: Word) {
        match offset {
            0 => {
                let was = self.rx_ie;
                self.rx_ie = value & CSR_IE != 0;
                if !was && self.rx_ie && self.rx_done {
                    self.rx_irq = true;
                }
            }
            4 => {
                let was = self.tx_ie;
                self.tx_ie = value & CSR_IE != 0;
                if !was && self.tx_ie && self.tx_ready {
                    self.tx_irq = true;
                }
            }
            6 if self.tx_ready => {
                self.tx_ready = false;
                self.tx_shift = Some(((value & 0o377) as u8, TX_DELAY));
            }
            // Writes while busy are lost, as on the hardware.
            _ => {}
        }
    }

    fn tick(&mut self) {
        // Receiver: move the next queued byte into RBUF when it is free.
        if !self.rx_done {
            if let Some(b) = self.rx_queue.pop_front() {
                self.rbuf = b;
                self.rx_done = true;
                if self.rx_ie {
                    self.rx_irq = true;
                }
            }
        }
        // Transmitter: complete the in-flight character.
        if let Some((ch, delay)) = self.tx_shift {
            if delay == 0 {
                self.tx_out.push(ch);
                self.last_tx = 0o400 | ch as Word;
                self.tx_shift = None;
                self.tx_ready = true;
                if self.tx_ie {
                    self.tx_irq = true;
                }
            } else {
                self.tx_shift = Some((ch, delay - 1));
            }
        }
    }

    fn pending(&self) -> Option<InterruptRequest> {
        if self.rx_irq {
            Some(InterruptRequest {
                vector: self.vector,
                priority: self.priority,
            })
        } else if self.tx_irq {
            Some(InterruptRequest {
                vector: self.vector + 4,
                priority: self.priority,
            })
        } else {
            None
        }
    }

    fn acknowledge(&mut self) {
        if self.rx_irq {
            self.rx_irq = false;
        } else {
            self.tx_irq = false;
        }
    }

    fn snapshot(&self) -> Vec<Word> {
        // Format: [rbuf, rx_done, rx_ie, rx_irq, tx_ready, tx_ie, tx_irq,
        //          shift_flag, shift_ch, shift_delay, last_tx,
        //          rx_len, rx bytes...]. The host-side `tx_out` tray is
        // deliberately excluded (see the trait documentation).
        let (sf, sc, sd) = match self.tx_shift {
            Some((ch, d)) => (1, ch as Word, d as Word),
            None => (0, 0, 0),
        };
        let mut v = vec![
            self.rbuf as Word,
            self.rx_done as Word,
            self.rx_ie as Word,
            self.rx_irq as Word,
            self.tx_ready as Word,
            self.tx_ie as Word,
            self.tx_irq as Word,
            sf,
            sc,
            sd,
            self.last_tx,
            self.rx_queue.len() as Word,
        ];
        v.extend(self.rx_queue.iter().map(|&b| b as Word));
        v
    }

    fn restore(&mut self, snapshot: &[Word]) {
        assert!(snapshot.len() >= 12, "serial snapshot too short");
        self.rbuf = snapshot[0] as u8;
        self.rx_done = snapshot[1] != 0;
        self.rx_ie = snapshot[2] != 0;
        self.rx_irq = snapshot[3] != 0;
        self.tx_ready = snapshot[4] != 0;
        self.tx_ie = snapshot[5] != 0;
        self.tx_irq = snapshot[6] != 0;
        self.tx_shift = (snapshot[7] != 0).then_some((snapshot[8] as u8, snapshot[9] as u8));
        self.last_tx = snapshot[10];
        let rx_len = snapshot[11] as usize;
        assert_eq!(snapshot.len(), 12 + rx_len, "serial snapshot malformed");
        self.rx_queue = snapshot[12..].iter().map(|&w| w as u8).collect();
        self.tx_out.clear();
    }

    fn boxed_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn line() -> SerialLine {
        SerialLine::new("tty0", 0o777560, 0o60, 4)
    }

    #[test]
    fn receive_path() {
        let mut l = line();
        l.host_send(b"AB");
        assert_eq!(l.read_reg(0) & CSR_DONE, 0);
        l.tick();
        assert_eq!(l.read_reg(0) & CSR_DONE, CSR_DONE);
        assert_eq!(l.read_reg(2), b'A' as Word);
        // Reading RBUF clears done; next tick delivers 'B'.
        assert_eq!(l.read_reg(0) & CSR_DONE, 0);
        l.tick();
        assert_eq!(l.read_reg(2), b'B' as Word);
    }

    #[test]
    fn transmit_path() {
        let mut l = line();
        assert_eq!(l.read_reg(4) & CSR_DONE, CSR_DONE);
        l.write_reg(6, b'X' as Word);
        assert_eq!(l.read_reg(4) & CSR_DONE, 0);
        l.tick();
        l.tick();
        assert_eq!(l.read_reg(4) & CSR_DONE, CSR_DONE);
        assert_eq!(l.host_take_output(), b"X");
        assert!(l.host_take_output().is_empty());
    }

    #[test]
    fn write_while_busy_is_lost() {
        let mut l = line();
        l.write_reg(6, b'1' as Word);
        l.write_reg(6, b'2' as Word);
        for _ in 0..4 {
            l.tick();
        }
        assert_eq!(l.host_take_output(), b"1");
    }

    #[test]
    fn rx_interrupt_raised_when_enabled() {
        let mut l = line();
        l.write_reg(0, CSR_IE);
        assert!(l.pending().is_none());
        l.host_send(b"Z");
        l.tick();
        let irq = l.pending().unwrap();
        assert_eq!(irq.vector, 0o60);
        assert_eq!(irq.priority, 4);
        l.acknowledge();
        assert!(l.pending().is_none());
    }

    #[test]
    fn enabling_ie_with_done_set_latches_interrupt() {
        let mut l = line();
        l.host_send(b"Z");
        l.tick();
        assert!(l.pending().is_none());
        l.write_reg(0, CSR_IE);
        assert!(l.pending().is_some());
    }

    #[test]
    fn tx_interrupt_uses_vector_plus_four() {
        let mut l = line();
        l.write_reg(4, CSR_IE);
        // Enabling with ready already set latches immediately.
        let irq = l.pending().unwrap();
        assert_eq!(irq.vector, 0o64);
        l.acknowledge();
        l.write_reg(6, b'Q' as Word);
        l.tick();
        l.tick();
        assert_eq!(l.pending().unwrap().vector, 0o64);
    }

    #[test]
    fn snapshot_changes_with_state() {
        let mut l = line();
        let s0 = l.snapshot();
        l.host_send(b"A");
        assert_ne!(l.snapshot(), s0);
    }
}

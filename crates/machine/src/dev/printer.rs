//! An LP11-style line printer.
//!
//! Two registers: status (bit 7 ready, bit 6 interrupt enable) and data
//! (write a character to print). Printing a character takes a few ticks,
//! modelling the paper's concern that printed output is a slow, shared,
//! security-relevant resource.

use crate::dev::{Device, InterruptRequest};
use crate::types::{PhysAddr, Word};
use core::any::Any;

/// Status bit 7: ready.
pub const LP_READY: Word = 0o200;
/// Status bit 6: interrupt enable.
pub const LP_IE: Word = 0o100;

/// Ticks per character.
const PRINT_DELAY: u8 = 2;

/// The line printer.
#[derive(Debug, Clone)]
pub struct LinePrinter {
    base: PhysAddr,
    vector: Word,
    priority: u8,
    ready: bool,
    ie: bool,
    irq: bool,
    shift: Option<(u8, u8)>,
    printed: Vec<u8>,
}

impl LinePrinter {
    /// A printer at `base` with the given interrupt vector.
    pub fn new(base: PhysAddr, vector: Word) -> LinePrinter {
        LinePrinter {
            base,
            vector,
            priority: 4,
            ready: true,
            ie: false,
            irq: false,
            shift: None,
            printed: Vec::new(),
        }
    }

    /// Host side: everything printed so far.
    pub fn printed(&self) -> &[u8] {
        &self.printed
    }

    /// Host side: take the printed output, clearing the paper.
    pub fn take_printed(&mut self) -> Vec<u8> {
        core::mem::take(&mut self.printed)
    }
}

impl Device for LinePrinter {
    fn name(&self) -> &str {
        "lp11"
    }

    fn base(&self) -> PhysAddr {
        self.base
    }

    fn reg_len(&self) -> u32 {
        4
    }

    fn read_reg(&mut self, offset: u32) -> Word {
        match offset {
            0 => (if self.ready { LP_READY } else { 0 }) | (if self.ie { LP_IE } else { 0 }),
            _ => 0,
        }
    }

    fn write_reg(&mut self, offset: u32, value: Word) {
        match offset {
            0 => {
                let was = self.ie;
                self.ie = value & LP_IE != 0;
                if !was && self.ie && self.ready {
                    self.irq = true;
                }
            }
            2 if self.ready => {
                self.ready = false;
                self.shift = Some(((value & 0o377) as u8, PRINT_DELAY));
            }
            _ => {}
        }
    }

    fn tick(&mut self) {
        if let Some((ch, delay)) = self.shift {
            if delay == 0 {
                self.printed.push(ch);
                self.shift = None;
                self.ready = true;
                if self.ie {
                    self.irq = true;
                }
            } else {
                self.shift = Some((ch, delay - 1));
            }
        }
    }

    fn pending(&self) -> Option<InterruptRequest> {
        self.irq.then_some(InterruptRequest {
            vector: self.vector,
            priority: self.priority,
        })
    }

    fn acknowledge(&mut self) {
        self.irq = false;
    }

    fn snapshot(&self) -> Vec<Word> {
        // Format: [ready, ie, irq, shift_flag, shift_ch, shift_delay]. The
        // paper tray (`printed`) is host-side record-keeping and excluded.
        let (sf, sc, sd) = match self.shift {
            Some((ch, d)) => (1, ch as Word, d as Word),
            None => (0, 0, 0),
        };
        vec![
            self.ready as Word,
            self.ie as Word,
            self.irq as Word,
            sf,
            sc,
            sd,
        ]
    }

    fn restore(&mut self, snapshot: &[Word]) {
        assert_eq!(snapshot.len(), 6, "printer snapshot malformed");
        self.ready = snapshot[0] != 0;
        self.ie = snapshot[1] != 0;
        self.irq = snapshot[2] != 0;
        self.shift = (snapshot[3] != 0).then_some((snapshot[4] as u8, snapshot[5] as u8));
        self.printed.clear();
    }

    fn boxed_clone(&self) -> Box<dyn Device> {
        Box::new(self.clone())
    }

    fn as_any(&mut self) -> &mut dyn Any {
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prints_characters_with_delay() {
        let mut p = LinePrinter::new(0o777514, 0o200);
        p.write_reg(2, b'H' as Word);
        assert_eq!(p.read_reg(0) & LP_READY, 0);
        for _ in 0..=PRINT_DELAY {
            p.tick();
        }
        assert_eq!(p.read_reg(0) & LP_READY, LP_READY);
        p.write_reg(2, b'I' as Word);
        for _ in 0..=PRINT_DELAY {
            p.tick();
        }
        assert_eq!(p.printed(), b"HI");
        assert_eq!(p.take_printed(), b"HI");
        assert!(p.printed().is_empty());
    }

    #[test]
    fn characters_written_while_busy_are_lost() {
        let mut p = LinePrinter::new(0o777514, 0o200);
        p.write_reg(2, b'A' as Word);
        p.write_reg(2, b'B' as Word);
        for _ in 0..10 {
            p.tick();
        }
        assert_eq!(p.printed(), b"A");
    }

    #[test]
    fn interrupt_on_completion() {
        let mut p = LinePrinter::new(0o777514, 0o200);
        p.write_reg(0, LP_IE);
        p.acknowledge(); // Clear the enable-while-ready latch.
        p.write_reg(2, b'A' as Word);
        assert!(p.pending().is_none());
        for _ in 0..=PRINT_DELAY {
            p.tick();
        }
        assert_eq!(p.pending().unwrap().vector, 0o200);
    }
}

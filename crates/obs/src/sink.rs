//! Event sinks: where emitted events go.
//!
//! The [`EventSink`] trait is the extension point; the two provided sinks
//! are [`Disabled`] (the default — its `record` is an empty inlined body,
//! so instrumented code pays nothing) and [`TraceBuffer`], a fixed-capacity
//! ring that keeps the most recent events and counts what it dropped.

use crate::event::ObsEvent;

/// An event with its deterministic timestamp (instruction count or round
/// number — never wall clock).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimedEvent {
    /// Instructions retired (or rounds completed) when the event occurred.
    pub ts: u64,
    /// The event.
    pub event: ObsEvent,
}

/// A consumer of observability events.
pub trait EventSink {
    /// Records one event at a deterministic timestamp.
    fn record(&mut self, ts: u64, event: ObsEvent);

    /// Whether this sink actually stores anything. Instrumentation may use
    /// this to skip expensive event construction.
    fn enabled(&self) -> bool {
        true
    }
}

/// The no-op sink: recording compiles to nothing.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Disabled;

impl EventSink for Disabled {
    #[inline(always)]
    fn record(&mut self, _ts: u64, _event: ObsEvent) {}

    #[inline(always)]
    fn enabled(&self) -> bool {
        false
    }
}

/// A fixed-capacity ring buffer of [`TimedEvent`]s.
///
/// When full, the oldest event is overwritten and `dropped` is incremented,
/// so a bounded buffer still reports exactly how much it did not keep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceBuffer {
    buf: Vec<TimedEvent>,
    capacity: usize,
    /// Index of the oldest event once the ring has wrapped.
    head: usize,
    /// Events overwritten because the ring was full.
    dropped: u64,
    /// Events ever recorded (kept + dropped).
    recorded: u64,
}

impl TraceBuffer {
    /// A ring keeping at most `capacity` events (`capacity` must be
    /// non-zero).
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — use [`Disabled`] to record nothing.
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(
            capacity > 0,
            "a zero-capacity trace records nothing; use Disabled"
        );
        TraceBuffer {
            buf: Vec::with_capacity(capacity.min(4096)),
            capacity,
            head: 0,
            dropped: 0,
            recorded: 0,
        }
    }

    /// The configured capacity.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Events currently held (≤ capacity).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been recorded.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Events overwritten because the ring was full.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Events ever recorded (kept + dropped).
    pub fn recorded(&self) -> u64 {
        self.recorded
    }

    /// The retained events, oldest first.
    pub fn events(&self) -> Vec<TimedEvent> {
        let mut out = Vec::with_capacity(self.buf.len());
        out.extend_from_slice(&self.buf[self.head..]);
        out.extend_from_slice(&self.buf[..self.head]);
        out
    }

    /// Retained events matching a predicate, oldest first.
    pub fn filtered(&self, mut pred: impl FnMut(&ObsEvent) -> bool) -> Vec<TimedEvent> {
        self.events()
            .into_iter()
            .filter(|t| pred(&t.event))
            .collect()
    }
}

impl EventSink for TraceBuffer {
    #[inline]
    fn record(&mut self, ts: u64, event: ObsEvent) {
        self.recorded += 1;
        if self.buf.len() < self.capacity {
            self.buf.push(TimedEvent { ts, event });
        } else {
            self.buf[self.head] = TimedEvent { ts, event };
            self.head = (self.head + 1) % self.capacity;
            self.dropped += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(n: u16) -> ObsEvent {
        ObsEvent::Syscall {
            regime: n,
            number: 0,
        }
    }

    #[test]
    fn disabled_records_nothing() {
        let mut d = Disabled;
        d.record(1, ev(0));
        assert!(!d.enabled());
    }

    #[test]
    fn ring_keeps_most_recent() {
        let mut t = TraceBuffer::new(3);
        for i in 0..5u16 {
            t.record(i as u64, ev(i));
        }
        assert_eq!(t.len(), 3);
        assert_eq!(t.dropped(), 2);
        assert_eq!(t.recorded(), 5);
        let kept: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(kept, vec![2, 3, 4]);
    }

    #[test]
    fn under_capacity_preserves_order() {
        let mut t = TraceBuffer::new(8);
        for i in 0..3u16 {
            t.record(i as u64, ev(i));
        }
        assert_eq!(t.dropped(), 0);
        let kept: Vec<u64> = t.events().iter().map(|e| e.ts).collect();
        assert_eq!(kept, vec![0, 1, 2]);
    }

    #[test]
    fn filtered_selects_by_event() {
        let mut t = TraceBuffer::new(8);
        t.record(0, ObsEvent::ContextSwitch { from: 0, to: 1 });
        t.record(1, ev(1));
        let switches = t.filtered(|e| matches!(e, ObsEvent::ContextSwitch { .. }));
        assert_eq!(switches.len(), 1);
    }

    #[test]
    #[should_panic(expected = "zero-capacity")]
    fn zero_capacity_panics() {
        TraceBuffer::new(0);
    }
}

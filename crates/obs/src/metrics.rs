//! The metrics registry: per-regime and per-device counters plus system
//! totals.
//!
//! Increment paths are `#[inline]` field bumps — cheap enough to leave on
//! always, unlike tracing. Regime and device slots are registered by the
//! embedder at boot (index → name); incrementing an unregistered index
//! grows the table with a placeholder name so hot paths never check.

/// Counters for one regime.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RegimeCounters {
    /// Machine instructions retired while this regime held the CPU.
    pub instructions: u64,
    /// Steps taken by a native (Rust) regime.
    pub native_steps: u64,
    /// Traps raised (all kinds, including kernel calls).
    pub traps: u64,
    /// Kernel calls serviced.
    pub syscalls: u64,
    /// MMU faults (subset of `traps`).
    pub mmu_faults: u64,
    /// Times control switched away from this regime.
    pub switches_out: u64,
    /// Times control switched to this regime.
    pub switches_in: u64,
    /// Interrupts fielded on this regime's behalf.
    pub interrupts_fielded: u64,
    /// Interrupts delivered into this regime's handlers.
    pub interrupts_delivered: u64,
    /// Interrupts discarded because this regime's vector slot was empty.
    pub interrupts_discarded: u64,
    /// Times this regime faulted and was stopped.
    pub faults: u64,
    /// Times this regime was re-imaged from its boot image and resumed.
    pub restarts: u64,
    /// Frames this node retransmitted (distributed realization only).
    pub retransmissions: u64,
    /// Messages this regime sent on channels.
    pub messages_sent: u64,
    /// Messages this regime received from channels.
    pub messages_received: u64,
    /// Channel bytes copied out of this regime's partition.
    pub channel_bytes_sent: u64,
    /// Channel bytes copied into this regime's partition.
    pub channel_bytes_received: u64,
}

/// Counters for one device.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DeviceCounters {
    /// Interrupts this device raised that the kernel fielded.
    pub interrupts: u64,
    /// DMA attempts refused.
    pub dma_blocked: u64,
}

/// Counters for the machine's fast-path caches and the checker's
/// fingerprint dedup.
///
/// These measure *how* a result was computed, never *what* was computed:
/// the decoded-instruction cache and the software TLB are semantically
/// invisible, and fingerprint dedup commits the same states. They are
/// therefore kept out of the default run-report serialization
/// ([`crate::report::metrics_json`]) — a report must be byte-identical
/// with the fast path on and off — and surfaced explicitly by the E10
/// bench via [`crate::report::hotpath_json`].
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HotPathCounters {
    /// Decoded-instruction cache hits.
    pub icache_hits: u64,
    /// Decoded-instruction cache misses (full decode performed).
    pub icache_misses: u64,
    /// Software-TLB hits (translation served without walking PAR/PDR).
    pub tlb_hits: u64,
    /// Software-TLB misses (full translate; entry refilled on success).
    pub tlb_misses: u64,
    /// Generation bumps that invalidated the whole TLB (PAR/PDR loads,
    /// i.e. every regime switch and partition re-image).
    pub tlb_invalidations: u64,
    /// Superblocks compiled (hot straight-line runs translated).
    pub sb_compiles: u64,
    /// Superblock executions (full runs entered through the tier).
    pub sb_hits: u64,
    /// Direct block-to-block transitions that skipped the dispatcher.
    pub sb_chains: u64,
    /// Wholesale superblock-cache drops (generation bump, code store,
    /// image mismatch, or tier shutdown).
    pub sb_flushes: u64,
    /// Instructions retired inside superblocks (subset of the run total).
    pub sb_instructions: u64,
    /// States the checker deduplicated by 128-bit fingerprint.
    pub fp_states: u64,
    /// Resident seen-set bytes under fingerprint dedup (16 per state).
    pub fp_bytes: u64,
}

/// System-wide totals (also the cross-check for the per-regime tables).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Totals {
    /// Machine instructions retired.
    pub instructions: u64,
    /// Traps raised.
    pub traps: u64,
    /// Context switches.
    pub switches: u64,
    /// Interrupts fielded.
    pub interrupts_fielded: u64,
    /// Interrupts delivered.
    pub interrupts_delivered: u64,
    /// Interrupts discarded (fielded, but the owner had no handler).
    pub interrupts_discarded: u64,
    /// Channel messages accepted.
    pub messages: u64,
    /// Channel bytes copied between partitions.
    pub channel_bytes: u64,
    /// Regime faults.
    pub faults: u64,
    /// Regime restarts (re-imaged from boot after a fault).
    pub restarts: u64,
    /// Frame retransmissions (distributed realization only).
    pub retransmissions: u64,
    /// Policy mediations (conventional baseline only — always zero for the
    /// separation kernel, which is the paper's point).
    pub policy_mediations: u64,
    /// Wire messages (distributed realization only).
    pub wire_messages: u64,
    /// Wire bytes (distributed realization only).
    pub wire_bytes: u64,
}

/// The registry.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Metrics {
    /// System totals.
    pub totals: Totals,
    /// Fast-path cache and fingerprint-dedup counters (excluded from the
    /// default report serialization; see [`HotPathCounters`]).
    pub hotpath: HotPathCounters,
    regimes: Vec<(String, RegimeCounters)>,
    devices: Vec<(String, DeviceCounters)>,
}

impl Metrics {
    /// An empty registry.
    pub fn new() -> Metrics {
        Metrics::default()
    }

    /// Registers (or renames) regime `idx`.
    pub fn register_regime(&mut self, idx: usize, name: &str) {
        self.grow_regimes(idx);
        self.regimes[idx].0 = name.to_string();
    }

    /// Registers (or renames) device `idx`.
    pub fn register_device(&mut self, idx: usize, name: &str) {
        self.grow_devices(idx);
        self.devices[idx].0 = name.to_string();
    }

    fn grow_regimes(&mut self, idx: usize) {
        while self.regimes.len() <= idx {
            let placeholder = format!("regime{}", self.regimes.len());
            self.regimes.push((placeholder, RegimeCounters::default()));
        }
    }

    fn grow_devices(&mut self, idx: usize) {
        while self.devices.len() <= idx {
            let placeholder = format!("device{}", self.devices.len());
            self.devices.push((placeholder, DeviceCounters::default()));
        }
    }

    /// Mutable counters for regime `idx`, growing the table on demand.
    #[inline]
    pub fn regime_mut(&mut self, idx: usize) -> &mut RegimeCounters {
        if idx >= self.regimes.len() {
            self.grow_regimes(idx);
        }
        &mut self.regimes[idx].1
    }

    /// Mutable counters for device `idx`, growing the table on demand.
    #[inline]
    pub fn device_mut(&mut self, idx: usize) -> &mut DeviceCounters {
        if idx >= self.devices.len() {
            self.grow_devices(idx);
        }
        &mut self.devices[idx].1
    }

    /// Registered regimes as `(name, counters)`, in index order.
    pub fn regimes(&self) -> &[(String, RegimeCounters)] {
        &self.regimes
    }

    /// Registered devices as `(name, counters)`, in index order.
    pub fn devices(&self) -> &[(String, DeviceCounters)] {
        &self.devices
    }

    /// Counters for regime `idx`, if registered.
    pub fn regime(&self, idx: usize) -> Option<&RegimeCounters> {
        self.regimes.get(idx).map(|(_, c)| c)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn grows_on_demand_with_placeholder_names() {
        let mut m = Metrics::new();
        m.regime_mut(2).instructions += 1;
        assert_eq!(m.regimes().len(), 3);
        assert_eq!(m.regimes()[2].0, "regime2");
        assert_eq!(m.regime(2).unwrap().instructions, 1);
    }

    #[test]
    fn register_names_slots() {
        let mut m = Metrics::new();
        m.register_regime(0, "red");
        m.register_regime(1, "black");
        m.register_device(0, "red-tty0");
        m.regime_mut(1).channel_bytes_sent += 7;
        assert_eq!(m.regimes()[1].0, "black");
        assert_eq!(m.devices()[0].0, "red-tty0");
        assert_eq!(m.regime(1).unwrap().channel_bytes_sent, 7);
    }

    #[test]
    fn totals_accumulate_independently() {
        let mut m = Metrics::new();
        m.totals.instructions += 10;
        m.totals.channel_bytes += 4;
        assert_eq!(m.totals.instructions, 10);
        assert_eq!(m.totals.channel_bytes, 4);
    }
}

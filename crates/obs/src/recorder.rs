//! The [`Recorder`]: the one observability handle an executing substrate
//! owns.
//!
//! A recorder bundles the always-on [`Metrics`] registry with an optional
//! [`TraceBuffer`]. Tracing is off by default — the disabled path is a
//! single branch on an `Option`, and the hot counters are plain `#[inline]`
//! field bumps — so instrumented code can stay instrumented in release
//! builds (the `kernel_overhead` bench and acceptance criteria hold it to
//! "no measurable slowdown").
//!
//! The recorder also carries the *current context* (which regime holds the
//! CPU), set by the kernel at boot and on every context switch, so
//! machine-level instrumentation can attribute instructions and traps to
//! regimes without the machine knowing regimes exist.

use crate::event::ObsEvent;
use crate::metrics::Metrics;
use crate::sink::{EventSink, TraceBuffer};

/// Context value before any regime has been established.
pub const NO_CONTEXT: u16 = u16::MAX;

/// Metrics plus optional event trace, owned by a machine, network, or
/// conventional kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct Recorder {
    /// The counter registry (always on; increments are cheap).
    pub metrics: Metrics,
    trace: Option<TraceBuffer>,
    ctx: u16,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::disabled()
    }
}

impl Recorder {
    /// A recorder with tracing disabled (the default).
    pub fn disabled() -> Recorder {
        Recorder {
            metrics: Metrics::new(),
            trace: None,
            ctx: NO_CONTEXT,
        }
    }

    /// A recorder tracing into a ring of `capacity` events.
    pub fn with_trace(capacity: usize) -> Recorder {
        let mut r = Recorder::disabled();
        r.enable_tracing(capacity);
        r
    }

    /// Switches tracing on (replacing any existing trace).
    pub fn enable_tracing(&mut self, capacity: usize) {
        self.trace = Some(TraceBuffer::new(capacity));
    }

    /// Switches tracing off, returning the buffer if one existed.
    pub fn disable_tracing(&mut self) -> Option<TraceBuffer> {
        self.trace.take()
    }

    /// Whether events are currently being kept.
    #[inline]
    pub fn tracing(&self) -> bool {
        self.trace.is_some()
    }

    /// The trace, if tracing is enabled.
    pub fn trace(&self) -> Option<&TraceBuffer> {
        self.trace.as_ref()
    }

    /// Sets the current regime context (kernel boot / context switch).
    #[inline]
    pub fn set_context(&mut self, regime: u16) {
        self.ctx = regime;
    }

    /// The current regime context ([`NO_CONTEXT`] before boot).
    #[inline]
    pub fn context(&self) -> u16 {
        self.ctx
    }

    /// Emits an event at a deterministic timestamp. With tracing disabled
    /// this is one branch and a drop.
    #[inline]
    pub fn emit(&mut self, ts: u64, event: ObsEvent) {
        if let Some(trace) = &mut self.trace {
            trace.record(ts, event);
        }
    }

    /// Commits a worker-buffered batch of events, all at one timestamp, in
    /// buffer order. The parallel round executor collects each node's
    /// events worker-locally during its step phase and commits the batches
    /// at the round barrier in node-index order — this is that commit
    /// path. With tracing disabled the batch is dropped, exactly as the
    /// per-event [`Recorder::emit`] would have dropped each event.
    pub fn absorb(&mut self, ts: u64, events: Vec<ObsEvent>) {
        if let Some(trace) = &mut self.trace {
            for ev in events {
                trace.record(ts, ev);
            }
        }
    }

    // --------------------------------------------------------------
    // Hot-path counter bumps (metrics only; no event construction).
    // --------------------------------------------------------------

    /// One instruction retired in the current context.
    #[inline]
    pub fn instruction_retired(&mut self) {
        self.metrics.totals.instructions += 1;
        if self.ctx != NO_CONTEXT {
            self.metrics.regime_mut(self.ctx as usize).instructions += 1;
        }
    }

    /// `n` instructions retired in the current context, in one bump. The
    /// machine's batched `step_n` uses this to amortize recorder dispatch:
    /// the final counter values are identical to `n` calls of
    /// [`Recorder::instruction_retired`] under an unchanged context.
    #[inline]
    pub fn instructions_retired(&mut self, n: u64) {
        self.metrics.totals.instructions += n;
        if self.ctx != NO_CONTEXT {
            self.metrics.regime_mut(self.ctx as usize).instructions += n;
        }
    }

    /// One native-regime step in the current context.
    #[inline]
    pub fn native_step(&mut self) {
        if self.ctx != NO_CONTEXT {
            self.metrics.regime_mut(self.ctx as usize).native_steps += 1;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_recorder_counts_but_keeps_no_events() {
        let mut r = Recorder::disabled();
        r.set_context(0);
        r.instruction_retired();
        r.emit(1, ObsEvent::ContextSwitch { from: 0, to: 1 });
        assert_eq!(r.metrics.totals.instructions, 1);
        assert!(r.trace().is_none());
    }

    #[test]
    fn tracing_keeps_events_with_timestamps() {
        let mut r = Recorder::with_trace(4);
        r.emit(7, ObsEvent::DmaBlocked { device: 0 });
        let t = r.trace().unwrap();
        assert_eq!(t.len(), 1);
        assert_eq!(t.events()[0].ts, 7);
    }

    #[test]
    fn context_attributes_instructions() {
        let mut r = Recorder::disabled();
        r.instruction_retired(); // no context yet: totals only
        r.set_context(1);
        r.instruction_retired();
        assert_eq!(r.metrics.totals.instructions, 2);
        assert_eq!(r.metrics.regime(1).unwrap().instructions, 1);
        assert!(r.metrics.regime(0).unwrap().instructions == 0);
    }

    #[test]
    fn batched_retirement_matches_per_instruction_bumps() {
        let mut one_by_one = Recorder::disabled();
        one_by_one.set_context(2);
        for _ in 0..5 {
            one_by_one.instruction_retired();
        }
        let mut batched = Recorder::disabled();
        batched.set_context(2);
        batched.instructions_retired(5);
        assert_eq!(one_by_one.metrics, batched.metrics);
    }

    #[test]
    fn disable_tracing_returns_the_buffer() {
        let mut r = Recorder::with_trace(2);
        r.emit(0, ObsEvent::DmaBlocked { device: 1 });
        let buf = r.disable_tracing().unwrap();
        assert_eq!(buf.len(), 1);
        assert!(!r.tracing());
    }
}

//! Observability for the separation kernel reproduction.
//!
//! Rushby's claims about the SUE — "minimally small and very simple", fields
//! every interrupt, mediates *only* channel traffic — are measurable claims,
//! and the formal-methods literature on separation kernels insists that
//! assurance evidence be *reproducible measurement*, not assertion. This
//! crate is the measurement substrate:
//!
//! * [`event`] — structured kernel events ([`ObsEvent`]): context switches,
//!   traps, interrupts fielded and delivered, channel `SEND`/`RECV` with
//!   byte counts, MMU faults, wire traffic, and the conventional baseline's
//!   policy mediations.
//! * [`sink`] — the [`EventSink`] trait, the no-op [`Disabled`] sink, and
//!   the fixed-capacity ring-buffer [`TraceBuffer`].
//! * [`metrics`] — a [`Metrics`] registry of per-regime and per-device
//!   counters with `#[inline]` increment paths.
//! * [`recorder`] — a [`Recorder`] bundling metrics with an optional trace,
//!   owned by whatever executes (machine, network, conventional kernel).
//! * [`json`] — a dependency-free JSON writer (no serde).
//! * [`report`] — [`RunReport`], the `BENCH_obs.json`-style machine-readable
//!   run report the experiment binaries emit.
//!
//! Everything is timestamped by **deterministic instruction count** (or
//! round number), never wall clock: two identical runs produce byte-identical
//! traces and reports, so a measurement can be replayed as evidence.
//!
//! Instrumentation is *not modelled state*: the Proof-of-Separability
//! adapter's state vector excludes it, so enabling tracing cannot change a
//! verification verdict (the root test suite checks this).

#![forbid(unsafe_code)]

pub mod event;
pub mod json;
pub mod metrics;
pub mod recorder;
pub mod report;
pub mod sink;

pub use event::{ObsEvent, TrapKind};
pub use json::Json;
pub use metrics::{DeviceCounters, HotPathCounters, Metrics, RegimeCounters, Totals};
pub use recorder::{Recorder, NO_CONTEXT};
pub use report::{hotpath_json, metrics_json, RunReport};
pub use sink::{Disabled, EventSink, TimedEvent, TraceBuffer};

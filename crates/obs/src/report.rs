//! Machine-readable run reports (`BENCH_obs_*.json`).
//!
//! A [`RunReport`] is what an experiment binary emits next to its Markdown
//! tables: the experiment name, its parameters, the metrics of every run,
//! and (optionally) a trace summary. Reports built without wall-clock
//! timing are **deterministic**: two identical runs serialize to identical
//! bytes, which is what makes an EXPERIMENTS.md row reproducible evidence
//! rather than an anecdote. Wall-clock timing, when attached, is kept in a
//! separate `wall` section so consumers can diff everything else across
//! machines.
//!
//! Report schema (`sep-obs/v1`):
//!
//! ```json
//! {
//!   "schema": "sep-obs/v1",
//!   "experiment": "e1_kernel_size",
//!   "params": { "...": "..." },
//!   "runs": [
//!     {
//!       "name": "separation",
//!       "totals": { "instructions": 0, "traps": 0, "switches": 0, ... },
//!       "regimes": [ { "name": "r0", "instructions": 0, ... } ],
//!       "devices": [ { "name": "r0-tty0", "interrupts": 0, ... } ],
//!       "trace": { "capacity": 0, "recorded": 0, "dropped": 0, "events": [...] }
//!     }
//!   ],
//!   "wall": { "separation_ms": 1.25 }
//! }
//! ```

use crate::json::Json;
use crate::metrics::Metrics;
use crate::sink::TraceBuffer;
use std::io;
use std::path::Path;

/// The schema identifier written into every report.
pub const SCHEMA: &str = "sep-obs/v1";

/// A run report under construction.
#[derive(Debug, Clone, Default)]
pub struct RunReport {
    experiment: String,
    params: Vec<(String, Json)>,
    runs: Vec<(String, Json)>,
    wall: Vec<(String, f64)>,
}

impl RunReport {
    /// A report for the named experiment.
    pub fn new(experiment: &str) -> RunReport {
        RunReport {
            experiment: experiment.to_string(),
            ..RunReport::default()
        }
    }

    /// Attaches an experiment parameter.
    pub fn param(mut self, key: &str, value: impl Into<Json>) -> RunReport {
        self.params.push((key.to_string(), value.into()));
        self
    }

    /// Attaches one named run's metrics (no trace).
    pub fn run(self, name: &str, metrics: &Metrics) -> RunReport {
        self.run_with_trace(name, metrics, None, 0)
    }

    /// Attaches one named run's metrics plus a trace summary keeping at
    /// most `keep_events` rendered events.
    pub fn run_with_trace(
        mut self,
        name: &str,
        metrics: &Metrics,
        trace: Option<&TraceBuffer>,
        keep_events: usize,
    ) -> RunReport {
        let mut run = Json::obj().field("name", name);
        run = match run {
            Json::Obj(mut members) => {
                if let Json::Obj(metric_members) = metrics_json(metrics) {
                    members.extend(metric_members);
                }
                Json::Obj(members)
            }
            other => other,
        };
        if let Some(t) = trace {
            run = run.field("trace", trace_json(t, keep_events));
        }
        self.runs.push((name.to_string(), run));
        self
    }

    /// Attaches one named run whose body is caller-supplied JSON, for
    /// experiments whose unit of record is not a [`Metrics`] registry (the
    /// E2 checker runs record states, check counts, and shard statistics).
    /// A `name` field is injected first; non-object bodies are wrapped
    /// under a `value` field.
    pub fn run_custom(mut self, name: &str, body: Json) -> RunReport {
        let run = match body {
            Json::Obj(members) => match Json::obj().field("name", name) {
                Json::Obj(mut m) => {
                    m.extend(members);
                    Json::Obj(m)
                }
                other => other,
            },
            other => Json::obj().field("name", name).field("value", other),
        };
        self.runs.push((name.to_string(), run));
        self
    }

    /// Attaches a wall-clock timing (kept apart from the deterministic
    /// sections). The key is rendered with an `_ms` suffix.
    pub fn wall_ms(self, name: &str, ms: f64) -> RunReport {
        self.wall(&format!("{name}_ms"), ms)
    }

    /// Attaches a wall-clock entry under exactly `key` (no suffix), for
    /// derived quantities like speedups or per-shard states/sec that are
    /// machine-dependent but not milliseconds.
    pub fn wall(mut self, key: &str, value: f64) -> RunReport {
        self.wall.push((key.to_string(), value));
        self
    }

    /// The report as a JSON value. Deterministic given identical inputs.
    pub fn to_json(&self) -> Json {
        let mut report = Json::obj()
            .field("schema", SCHEMA)
            .field("experiment", self.experiment.as_str())
            .field("params", Json::Obj(self.params.clone()))
            .field(
                "runs",
                Json::Arr(self.runs.iter().map(|(_, j)| j.clone()).collect()),
            );
        if !self.wall.is_empty() {
            report = report.field(
                "wall",
                Json::Obj(
                    self.wall
                        .iter()
                        .map(|(k, v)| (k.clone(), Json::Float(*v)))
                        .collect(),
                ),
            );
        }
        report
    }

    /// The pretty-printed report.
    pub fn render(&self) -> String {
        self.to_json().to_pretty()
    }

    /// Writes the report to `path`.
    pub fn write_to(&self, path: impl AsRef<Path>) -> io::Result<()> {
        std::fs::write(path, self.render())
    }
}

/// A [`Metrics`] registry as the `totals`/`regimes`/`devices` JSON members.
pub fn metrics_json(m: &Metrics) -> Json {
    let t = &m.totals;
    let totals = Json::obj()
        .field("instructions", t.instructions)
        .field("traps", t.traps)
        .field("switches", t.switches)
        .field("interrupts_fielded", t.interrupts_fielded)
        .field("interrupts_delivered", t.interrupts_delivered)
        .field("interrupts_discarded", t.interrupts_discarded)
        .field("messages", t.messages)
        .field("channel_bytes", t.channel_bytes)
        .field("faults", t.faults)
        .field("restarts", t.restarts)
        .field("retransmissions", t.retransmissions)
        .field("policy_mediations", t.policy_mediations)
        .field("wire_messages", t.wire_messages)
        .field("wire_bytes", t.wire_bytes);
    let regimes = Json::Arr(
        m.regimes()
            .iter()
            .map(|(name, c)| {
                Json::obj()
                    .field("name", name.as_str())
                    .field("instructions", c.instructions)
                    .field("native_steps", c.native_steps)
                    .field("traps", c.traps)
                    .field("syscalls", c.syscalls)
                    .field("mmu_faults", c.mmu_faults)
                    .field("switches_in", c.switches_in)
                    .field("switches_out", c.switches_out)
                    .field("interrupts_fielded", c.interrupts_fielded)
                    .field("interrupts_delivered", c.interrupts_delivered)
                    .field("interrupts_discarded", c.interrupts_discarded)
                    .field("faults", c.faults)
                    .field("restarts", c.restarts)
                    .field("retransmissions", c.retransmissions)
                    .field("messages_sent", c.messages_sent)
                    .field("messages_received", c.messages_received)
                    .field("channel_bytes_sent", c.channel_bytes_sent)
                    .field("channel_bytes_received", c.channel_bytes_received)
            })
            .collect(),
    );
    let devices = Json::Arr(
        m.devices()
            .iter()
            .map(|(name, c)| {
                Json::obj()
                    .field("name", name.as_str())
                    .field("interrupts", c.interrupts)
                    .field("dma_blocked", c.dma_blocked)
            })
            .collect(),
    );
    Json::obj()
        .field("totals", totals)
        .field("regimes", regimes)
        .field("devices", devices)
}

/// The fast-path cache and fingerprint-dedup counters as JSON.
///
/// Deliberately **not** part of [`metrics_json`]: hit/miss ratios describe
/// how a run was computed, not what it computed, and folding them into the
/// default serialization would break the pinned guarantee that run reports
/// are byte-identical with the fast path on and off. The E10 bench attaches
/// this explicitly where cache behaviour *is* the measurement.
///
/// Schema note: the `sb_*` members describe the superblock tier —
/// `sb_compiles` (runs translated), `sb_hits` (full block executions),
/// `sb_chains` (block→block transitions that skipped the dispatcher),
/// `sb_flushes` (wholesale cache drops), and `sb_instructions` (retired
/// inside blocks, a subset of the run's instruction total). Like every
/// other member here they are how-counters, excluded from [`metrics_json`]
/// so run reports stay byte-identical with the tier on and off.
pub fn hotpath_json(m: &Metrics) -> Json {
    let h = &m.hotpath;
    Json::obj()
        .field("icache_hits", h.icache_hits)
        .field("icache_misses", h.icache_misses)
        .field("tlb_hits", h.tlb_hits)
        .field("tlb_misses", h.tlb_misses)
        .field("tlb_invalidations", h.tlb_invalidations)
        .field("sb_compiles", h.sb_compiles)
        .field("sb_hits", h.sb_hits)
        .field("sb_chains", h.sb_chains)
        .field("sb_flushes", h.sb_flushes)
        .field("sb_instructions", h.sb_instructions)
        .field("fp_states", h.fp_states)
        .field("fp_bytes", h.fp_bytes)
}

/// A trace as JSON: counts always, plus up to `keep_events` rendered
/// events (oldest first of the retained window).
pub fn trace_json(t: &TraceBuffer, keep_events: usize) -> Json {
    let events: Vec<Json> = t
        .events()
        .into_iter()
        .take(keep_events)
        .map(|e| {
            Json::obj()
                .field("ts", e.ts)
                .field("kind", e.event.label())
                .field("event", e.event.to_string())
        })
        .collect();
    Json::obj()
        .field("capacity", t.capacity())
        .field("recorded", t.recorded())
        .field("dropped", t.dropped())
        .field("events", Json::Arr(events))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::ObsEvent;
    use crate::sink::EventSink;

    #[test]
    fn report_is_deterministic_for_identical_inputs() {
        let build = || {
            let mut m = Metrics::new();
            m.register_regime(0, "red");
            m.regime_mut(0).instructions = 42;
            m.totals.instructions = 42;
            RunReport::new("e0")
                .param("n", 2u64)
                .run("separation", &m)
                .render()
        };
        assert_eq!(build(), build());
    }

    #[test]
    fn schema_and_sections_present() {
        let m = Metrics::new();
        let s = RunReport::new("e9").run("a", &m).wall_ms("a", 1.5).render();
        assert!(s.contains("\"schema\": \"sep-obs/v1\""));
        assert!(s.contains("\"experiment\": \"e9\""));
        assert!(s.contains("\"totals\""));
        assert!(s.contains("\"a_ms\""));
    }

    #[test]
    fn hotpath_counters_stay_out_of_the_default_report() {
        let mut with = Metrics::new();
        with.hotpath.icache_hits = 1_000;
        with.hotpath.tlb_hits = 2_000;
        with.hotpath.sb_compiles = 3;
        with.hotpath.sb_hits = 4_000;
        with.hotpath.sb_chains = 3_900;
        with.hotpath.sb_flushes = 2;
        with.hotpath.sb_instructions = 9_000;
        let without = Metrics::new();
        let render = |m: &Metrics| RunReport::new("e10").run("run", m).render();
        assert_eq!(render(&with), render(&without));
        let j = hotpath_json(&with).to_compact();
        assert!(j.contains("\"icache_hits\":1000"));
        assert!(j.contains("\"tlb_hits\":2000"));
        assert!(j.contains("\"sb_compiles\":3"));
        assert!(j.contains("\"sb_hits\":4000"));
        assert!(j.contains("\"sb_chains\":3900"));
        assert!(j.contains("\"sb_flushes\":2"));
        assert!(j.contains("\"sb_instructions\":9000"));
    }

    #[test]
    fn superblock_counters_never_leak_into_metrics_json() {
        // The leak test from first principles: serialize the default report
        // with extreme superblock counters and confirm no `sb_` key (or
        // value) appears anywhere in the bytes.
        let mut m = Metrics::new();
        m.register_regime(0, "red");
        m.totals.instructions = 7;
        m.hotpath.sb_compiles = u64::MAX;
        m.hotpath.sb_hits = u64::MAX;
        m.hotpath.sb_chains = u64::MAX;
        m.hotpath.sb_flushes = u64::MAX;
        m.hotpath.sb_instructions = u64::MAX;
        let rendered = RunReport::new("e10").run("run", &m).render();
        assert!(!rendered.contains("sb_"));
        assert!(!rendered.contains(&u64::MAX.to_string()));
        assert_eq!(rendered, {
            let mut clean = Metrics::new();
            clean.register_regime(0, "red");
            clean.totals.instructions = 7;
            RunReport::new("e10").run("run", &clean).render()
        });
    }

    #[test]
    fn trace_summary_counts_and_limits_events() {
        let mut t = TraceBuffer::new(4);
        for i in 0..6u64 {
            t.record(i, ObsEvent::DmaBlocked { device: 0 });
        }
        let j = trace_json(&t, 2).to_compact();
        assert!(j.contains("\"recorded\":6"));
        assert!(j.contains("\"dropped\":2"));
        assert_eq!(j.matches("\"kind\"").count(), 2);
    }
}

//! Structured kernel events.
//!
//! Events are small, `Copy`, and carry indices rather than names: the hot
//! paths that emit them must not allocate. Names are resolved at report
//! time through the [`crate::metrics::Metrics`] registry.

use core::fmt;

/// The class of a trap, mirrored from the machine's trap enum so this crate
/// stays dependency-free.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrapKind {
    /// Memory-management abort (the MMU said no).
    Mmu,
    /// Word access to an odd address.
    OddAddress,
    /// Bus timeout (no device at an I/O-page address).
    BusError,
    /// Reserved or unimplemented instruction.
    Illegal,
    /// EMT instruction.
    Emt,
    /// TRAP instruction — the kernel-call vehicle.
    TrapInstr,
    /// Breakpoint.
    Bpt,
    /// I/O trap instruction.
    Iot,
    /// HALT in user mode.
    Halt,
}

impl TrapKind {
    /// Stable lowercase label used in traces and reports.
    pub fn label(self) -> &'static str {
        match self {
            TrapKind::Mmu => "mmu",
            TrapKind::OddAddress => "odd-address",
            TrapKind::BusError => "bus-error",
            TrapKind::Illegal => "illegal",
            TrapKind::Emt => "emt",
            TrapKind::TrapInstr => "trap",
            TrapKind::Bpt => "bpt",
            TrapKind::Iot => "iot",
            TrapKind::Halt => "halt",
        }
    }
}

/// One observable thing the system did.
///
/// `regime`, `device`, `channel`, and `node` are indices into the owning
/// configuration; `u16::MAX` (from [`crate::recorder::Recorder`]'s default
/// context) means "no regime established yet" (boot-time activity).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ObsEvent {
    /// Control passed between regimes.
    ContextSwitch {
        /// Outgoing regime.
        from: u16,
        /// Incoming regime.
        to: u16,
    },
    /// A trap transferred control to the kernel.
    Trap {
        /// The trapping regime.
        regime: u16,
        /// What kind of trap.
        kind: TrapKind,
    },
    /// A kernel call was serviced.
    Syscall {
        /// The calling regime.
        regime: u16,
        /// The TRAP operand.
        number: u8,
    },
    /// A device interrupt was fielded by the kernel (acknowledged and
    /// queued for the owning regime).
    InterruptFielded {
        /// The regime the interrupt was queued for.
        regime: u16,
        /// Machine device index.
        device: u16,
        /// The interrupt vector.
        vector: u16,
    },
    /// A queued interrupt was delivered into a regime's handler.
    InterruptDelivered {
        /// The receiving regime.
        regime: u16,
        /// The interrupt vector.
        vector: u16,
    },
    /// A queued interrupt was discarded because the owning regime's vector
    /// slot holds no handler (PC 0).
    InterruptDiscarded {
        /// The regime whose vector slot was empty.
        regime: u16,
        /// The interrupt vector.
        vector: u16,
    },
    /// The kernel accepted a message onto a channel.
    ChannelSend {
        /// Channel index.
        channel: u16,
        /// Sending regime.
        from: u16,
        /// Message bytes copied out of the sender's partition.
        bytes: u32,
    },
    /// The kernel delivered a message from a channel.
    ChannelRecv {
        /// Channel index.
        channel: u16,
        /// Receiving regime.
        to: u16,
        /// Message bytes copied into the receiver's partition.
        bytes: u32,
    },
    /// The MMU refused a reference (detail for a `Trap { kind: Mmu }`).
    MmuFault {
        /// The faulting regime.
        regime: u16,
        /// The offending virtual address.
        vaddr: u16,
        /// Whether the reference was a write.
        write: bool,
    },
    /// A DMA attempt was refused (DMA is excluded from the system).
    DmaBlocked {
        /// The offending device index.
        device: u16,
    },
    /// The conventional baseline kernel evaluated a policy decision.
    PolicyMediation {
        /// The mediated subject (process index).
        subject: u16,
        /// Whether the access was allowed.
        allowed: bool,
    },
    /// A node pushed a message onto a dedicated wire.
    WireSend {
        /// Sending node index.
        node: u16,
        /// Message bytes.
        bytes: u32,
    },
    /// A node popped a message off a dedicated wire.
    WireRecv {
        /// Receiving node index.
        node: u16,
        /// Message bytes.
        bytes: u32,
    },
    /// A regime faulted and was stopped (pending restart, if it has one).
    Fault {
        /// The faulting regime.
        regime: u16,
        /// Fault class: 0 = trap, 1 = watchdog, 2 = injected.
        cause: u8,
    },
    /// A faulted regime was re-imaged from its boot image and resumed.
    Restart {
        /// The restarted regime.
        regime: u16,
    },
    /// A node retransmitted an unacknowledged frame.
    Retransmit {
        /// The sending node.
        node: u16,
        /// The frame's sequence number.
        seq: u16,
    },
}

impl ObsEvent {
    /// Stable lowercase label of the event class, used in reports.
    pub fn label(&self) -> &'static str {
        match self {
            ObsEvent::ContextSwitch { .. } => "context-switch",
            ObsEvent::Trap { .. } => "trap",
            ObsEvent::Syscall { .. } => "syscall",
            ObsEvent::InterruptFielded { .. } => "interrupt-fielded",
            ObsEvent::InterruptDelivered { .. } => "interrupt-delivered",
            ObsEvent::InterruptDiscarded { .. } => "interrupt-discarded",
            ObsEvent::ChannelSend { .. } => "channel-send",
            ObsEvent::ChannelRecv { .. } => "channel-recv",
            ObsEvent::MmuFault { .. } => "mmu-fault",
            ObsEvent::DmaBlocked { .. } => "dma-blocked",
            ObsEvent::PolicyMediation { .. } => "policy-mediation",
            ObsEvent::WireSend { .. } => "wire-send",
            ObsEvent::WireRecv { .. } => "wire-recv",
            ObsEvent::Fault { .. } => "fault",
            ObsEvent::Restart { .. } => "restart",
            ObsEvent::Retransmit { .. } => "retransmit",
        }
    }
}

impl fmt::Display for ObsEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match *self {
            ObsEvent::ContextSwitch { from, to } => write!(f, "context-switch {from}->{to}"),
            ObsEvent::Trap { regime, kind } => write!(f, "trap r{regime} {}", kind.label()),
            ObsEvent::Syscall { regime, number } => write!(f, "syscall r{regime} #{number}"),
            ObsEvent::InterruptFielded {
                regime,
                device,
                vector,
            } => {
                write!(f, "interrupt-fielded r{regime} dev{device} vec{vector:o}")
            }
            ObsEvent::InterruptDelivered { regime, vector } => {
                write!(f, "interrupt-delivered r{regime} vec{vector:o}")
            }
            ObsEvent::InterruptDiscarded { regime, vector } => {
                write!(f, "interrupt-discarded r{regime} vec{vector:o}")
            }
            ObsEvent::ChannelSend {
                channel,
                from,
                bytes,
            } => {
                write!(f, "channel-send ch{channel} r{from} {bytes}B")
            }
            ObsEvent::ChannelRecv { channel, to, bytes } => {
                write!(f, "channel-recv ch{channel} r{to} {bytes}B")
            }
            ObsEvent::MmuFault {
                regime,
                vaddr,
                write,
            } => {
                write!(
                    f,
                    "mmu-fault r{regime} va{vaddr:o} {}",
                    if write { "w" } else { "r" }
                )
            }
            ObsEvent::DmaBlocked { device } => write!(f, "dma-blocked dev{device}"),
            ObsEvent::PolicyMediation { subject, allowed } => {
                write!(
                    f,
                    "policy-mediation s{subject} {}",
                    if allowed { "allow" } else { "deny" }
                )
            }
            ObsEvent::WireSend { node, bytes } => write!(f, "wire-send n{node} {bytes}B"),
            ObsEvent::WireRecv { node, bytes } => write!(f, "wire-recv n{node} {bytes}B"),
            ObsEvent::Fault { regime, cause } => {
                let kind = match cause {
                    0 => "trap",
                    1 => "watchdog",
                    _ => "injected",
                };
                write!(f, "fault r{regime} {kind}")
            }
            ObsEvent::Restart { regime } => write!(f, "restart r{regime}"),
            ObsEvent::Retransmit { node, seq } => write!(f, "retransmit n{node} seq{seq}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn labels_are_stable() {
        assert_eq!(
            ObsEvent::ContextSwitch { from: 0, to: 1 }.label(),
            "context-switch"
        );
        assert_eq!(TrapKind::TrapInstr.label(), "trap");
    }

    #[test]
    fn fault_events_render_their_class() {
        assert_eq!(
            ObsEvent::Fault {
                regime: 1,
                cause: 1
            }
            .to_string(),
            "fault r1 watchdog"
        );
        assert_eq!(ObsEvent::Restart { regime: 1 }.label(), "restart");
        assert_eq!(
            ObsEvent::Retransmit { node: 0, seq: 7 }.to_string(),
            "retransmit n0 seq7"
        );
    }

    #[test]
    fn display_is_compact() {
        let e = ObsEvent::ChannelSend {
            channel: 2,
            from: 0,
            bytes: 4,
        };
        assert_eq!(e.to_string(), "channel-send ch2 r0 4B");
    }
}

//! A dependency-free JSON writer.
//!
//! The run reports must be machine-readable without dragging serde into an
//! offline-built workspace, so this is the minimal value tree plus a
//! deterministic serializer: object members keep insertion order, numbers
//! render via Rust's shortest-roundtrip formatting, and strings are escaped
//! per RFC 8259. Writing only — the reports are produced here and parsed
//! elsewhere.

use core::fmt::Write;

/// A JSON value.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// An integer (most counters).
    Int(u64),
    /// A float (timings, rates). NaN/infinite values render as `null`.
    Float(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object; members serialize in insertion order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// An empty object.
    pub fn obj() -> Json {
        Json::Obj(Vec::new())
    }

    /// Adds a member to an object, builder-style.
    ///
    /// # Panics
    ///
    /// Panics when `self` is not an object.
    pub fn field(mut self, key: &str, value: impl Into<Json>) -> Json {
        match &mut self {
            Json::Obj(members) => members.push((key.to_string(), value.into())),
            _ => panic!("field() on a non-object"),
        }
        self
    }

    /// Serializes compactly (no whitespace).
    pub fn to_compact(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, None, 0);
        out
    }

    /// Serializes with two-space indentation.
    pub fn to_pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, Some(2), 0);
        out.push('\n');
        out
    }

    fn write(&self, out: &mut String, indent: Option<usize>, depth: usize) {
        let (nl, pad, pad_in) = match indent {
            Some(w) => ("\n", " ".repeat(w * depth), " ".repeat(w * (depth + 1))),
            None => ("", String::new(), String::new()),
        };
        match self {
            Json::Null => out.push_str("null"),
            Json::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            Json::Int(n) => {
                let _ = write!(out, "{n}");
            }
            Json::Float(x) => {
                if x.is_finite() {
                    let _ = write!(out, "{x}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    item.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push(']');
            }
            Json::Obj(members) => {
                if members.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (k, v)) in members.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push_str(nl);
                    out.push_str(&pad_in);
                    write_escaped(out, k);
                    out.push(':');
                    if indent.is_some() {
                        out.push(' ');
                    }
                    v.write(out, indent, depth + 1);
                }
                out.push_str(nl);
                out.push_str(&pad);
                out.push('}');
            }
        }
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

impl From<bool> for Json {
    fn from(b: bool) -> Json {
        Json::Bool(b)
    }
}

impl From<u64> for Json {
    fn from(n: u64) -> Json {
        Json::Int(n)
    }
}

impl From<usize> for Json {
    fn from(n: usize) -> Json {
        Json::Int(n as u64)
    }
}

impl From<u32> for Json {
    fn from(n: u32) -> Json {
        Json::Int(n as u64)
    }
}

impl From<f64> for Json {
    fn from(x: f64) -> Json {
        Json::Float(x)
    }
}

impl From<&str> for Json {
    fn from(s: &str) -> Json {
        Json::Str(s.to_string())
    }
}

impl From<String> for Json {
    fn from(s: String) -> Json {
        Json::Str(s)
    }
}

impl<T: Into<Json>> From<Vec<T>> for Json {
    fn from(v: Vec<T>) -> Json {
        Json::Arr(v.into_iter().map(Into::into).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn compact_object_in_insertion_order() {
        let j = Json::obj().field("b", 1u64).field("a", "x");
        assert_eq!(j.to_compact(), r#"{"b":1,"a":"x"}"#);
    }

    #[test]
    fn strings_escape_controls_and_quotes() {
        let j = Json::Str("a\"b\\c\nd\u{1}".into());
        assert_eq!(j.to_compact(), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn nested_pretty_round_trips_shape() {
        let j = Json::obj()
            .field("xs", vec![1u64, 2, 3])
            .field("o", Json::obj().field("k", Json::Null));
        let pretty = j.to_pretty();
        assert!(pretty.contains("\"xs\": [\n"));
        assert!(pretty.ends_with("}\n"));
        // Compact form of the same tree.
        assert_eq!(j.to_compact(), r#"{"xs":[1,2,3],"o":{"k":null}}"#);
    }

    #[test]
    fn non_finite_floats_render_null() {
        assert_eq!(Json::Float(f64::NAN).to_compact(), "null");
        assert_eq!(Json::Float(1.5).to_compact(), "1.5");
    }

    #[test]
    fn empty_containers_stay_compact_when_pretty() {
        let j = Json::obj()
            .field("a", Json::Arr(vec![]))
            .field("o", Json::obj());
        assert_eq!(j.to_compact(), r#"{"a":[],"o":{}}"#);
    }
}

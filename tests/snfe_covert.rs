//! SNFE security properties end-to-end: no cleartext on the network, and
//! the censor's measured effect on covert bypass bandwidth (experiment E4's
//! test-sized core).

use sep_components::snfe::{
    build_snfe_network, decode_exfiltration, CensorPolicy, ExfilMode, Header, MaliciousRed,
    RedComponent, HEADER_LEN,
};
use sep_components::util::Sink;
use sep_components::NodeAdapter;
use sep_covert::channel::score_transfer;

const KEY: [u32; 4] = [0x1111, 0x2222, 0x3333, 0x4444];

fn host_frames(n: usize) -> Vec<Vec<u8>> {
    (0..n)
        .map(|i| format!("ordinary host traffic item {i}").into_bytes())
        .collect()
}

/// Runs an SNFE and returns the frames the network saw.
fn run_snfe(
    red: Box<dyn sep_components::Component>,
    policy: CensorPolicy,
    n: usize,
    rounds: u64,
) -> Vec<Vec<u8>> {
    let mut snfe = build_snfe_network(red, policy, KEY, host_frames(n));
    snfe.network.run(rounds);
    // Recover the sink's received frames from its trace.
    snfe.network
        .traces
        .trace("network")
        .iter()
        .filter(|e| e.starts_with("recv in "))
        .map(|e| {
            let hex = e.rsplit(' ').next().unwrap();
            (0..hex.len())
                .step_by(2)
                .map(|i| u8::from_str_radix(&hex[i..i + 2], 16).unwrap())
                .collect()
        })
        .collect()
}

#[test]
fn cleartext_never_reaches_the_network_with_honest_red() {
    let frames = run_snfe(
        Box::new(RedComponent::new(1)),
        CensorPolicy::strict(),
        8,
        80,
    );
    assert!(!frames.is_empty());
    for f in &frames {
        let body = &f[HEADER_LEN + 2..];
        assert!(
            !body
                .windows(8)
                .any(|w| b"ordinary host traffic".windows(8).any(|s| s == w)),
            "cleartext fragment on the network"
        );
    }
}

#[test]
fn pad_channel_bandwidth_collapses_under_canonicalization() {
    let secret = b"EXFILTRATE-ME-PLEASE";
    let rounds = 200u64;

    let mut results = Vec::new();
    for policy in [CensorPolicy::format_only(), CensorPolicy::canonical()] {
        let red = Box::new(MaliciousRed::new(ExfilMode::PadByte, secret.to_vec()));
        let frames = run_snfe(red, policy, secret.len(), rounds);
        let headers: Vec<Header> = frames
            .iter()
            .filter_map(|f| Header::decode(&f[..HEADER_LEN]))
            .collect();
        let recovered = decode_exfiltration(ExfilMode::PadByte, &headers);
        results.push(score_transfer(secret, &recovered, rounds));
    }
    let (open, closed) = (&results[0], &results[1]);
    assert!(
        open.error_rate < 0.01,
        "pad channel is clean when unchecked: {open:?}"
    );
    assert!(
        closed.bits_per_round < open.bits_per_round / 10.0,
        "canonicalization collapses the channel: {open:?} vs {closed:?}"
    );
}

#[test]
fn dst_bit_channel_is_slow_but_survives() {
    let secret = [0b1100_0101u8, 0b0011_1010];
    let rounds = 200u64;
    let red = Box::new(MaliciousRed::new(ExfilMode::DstBits, secret.to_vec()));
    let frames = run_snfe(red, CensorPolicy::canonical(), 16, rounds);
    let headers: Vec<Header> = frames
        .iter()
        .filter_map(|f| Header::decode(&f[..HEADER_LEN]))
        .collect();
    let recovered = decode_exfiltration(ExfilMode::DstBits, &headers);
    let score = score_transfer(&secret, &recovered, rounds);
    // The semantic-field channel still works (1 bit/packet)...
    assert!(score.error_rate < 0.01, "{score:?}");
    // ...but is an order of magnitude slower than the free pad channel.
    assert!(score.bits_per_round < 0.2, "{score:?}");
}

#[test]
fn black_component_cannot_be_reached_except_via_crypto_and_censor() {
    // Structural check on the built topology: the network object has no
    // red→black wire. (The policy-level statement is in sep-policy's
    // `ChannelPolicy::snfe`.)
    let snfe = build_snfe_network(
        Box::new(RedComponent::new(1)),
        CensorPolicy::strict(),
        KEY,
        vec![],
    );
    // If a direct wire existed, connect() would have been called with it —
    // the builder wires exactly six links, none red→black.
    drop(snfe);
    let (policy, [_, red, crypto, censor, black, _]) = sep_policy::channels::ChannelPolicy::snfe();
    assert!(!policy.is_allowed(red, black));
    assert!(policy.is_allowed(red, crypto));
    assert!(policy.is_allowed(red, censor));
    assert!(policy.is_allowed(crypto, black));
    assert!(policy.is_allowed(censor, black));
}

#[test]
fn sink_component_collects_in_isolation() {
    // Direct check that the sink utility behaves (guards the trace-based
    // frame recovery used above).
    let mut net = sep_distributed::Network::new();
    let sink = Sink::new("solo");
    net.add_node(NodeAdapter::new(Box::new(sink)));
    net.run(3);
    assert!(net.traces.trace("solo").is_empty());
}

//! Cross-crate verification experiments in test form: the SWAP verdict
//! matrix (E3) and the wire-cutting argument (E9).

use sep_flow::swap::{ifa_verdict_for_all_register_classes, SwapMachine};
use sep_model::check::SeparabilityChecker;
use sep_model::cut::{check_isolation, cut, verify_channels_exhaustive, CutVerificationError};
use sep_model::objects::ObjectSystem;

#[test]
fn e3_swap_verdict_matrix() {
    // IFA: every classification of the shared register file fails.
    let verdicts = ifa_verdict_for_all_register_classes();
    assert_eq!(verdicts.len(), 4);
    for (class, violations) in &verdicts {
        assert!(
            !violations.is_empty(),
            "IFA certified SWAP under {class:?}?!"
        );
    }
    // Proof of Separability: the same semantics is verified, exhaustively.
    let machine = SwapMachine::new(3);
    let report = SeparabilityChecker::new().check(&machine, &machine.abstractions());
    assert!(report.is_separable(), "{report}");
    // The contrast is the experiment: syntactic rejection, semantic proof.
}

/// The SNFE's channel structure as a shared-object system: red and black
/// sharing exactly two objects — the crypto path and the bypass.
fn snfe_object_system() -> (ObjectSystem, Vec<sep_model::objects::ObjRef>) {
    let mut sys = ObjectSystem::new(4);
    let red = sys.add_colour("red");
    let black = sys.add_colour("black");
    let red_state = sys.add_object("red_state", 0);
    let crypto_path = sys.add_object("crypto_path", 0);
    let bypass = sys.add_object("bypass", 0);
    let black_state = sys.add_object("black_state", 0);
    // Red: compute, place payload on crypto path, header on bypass.
    sys.add_op(red, "compute", vec![red_state], vec![red_state], |v| {
        vec![v[0] + 1]
    });
    sys.add_op(
        red,
        "send_payload",
        vec![red_state],
        vec![crypto_path],
        |v| vec![v[0]],
    );
    sys.add_op(red, "send_header", vec![red_state], vec![bypass], |v| {
        vec![v[0] & 1]
    });
    // Black: read both, accumulate.
    sys.add_op(
        black,
        "recv",
        vec![crypto_path, bypass, black_state],
        vec![black_state],
        |v| vec![v[0] + v[1] + v[2]],
    );
    (sys, vec![crypto_path, bypass])
}

#[test]
fn e9_cutting_declared_channels_proves_their_exclusivity() {
    let (sys, channels) = snfe_object_system();
    // Uncut: red and black visibly share objects.
    assert!(check_isolation(&sys).is_err());
    // Cut the two declared channels: isolation, statically and by PoS.
    let report = verify_channels_exhaustive(&sys, &channels).expect("channels are exclusive");
    assert!(report.is_separable());
}

#[test]
fn e9_hidden_channel_is_exposed() {
    let (mut sys, channels) = snfe_object_system();
    // A developer "optimization": red and black share a scratch cell.
    let scratch = sys.add_object("shared_scratch", 0);
    sys.add_op(
        0,
        "stash",
        vec![sys.object_by_name("red_state").unwrap()],
        vec![scratch],
        |v| vec![v[0]],
    );
    sys.add_op(
        1,
        "peek",
        vec![scratch, sys.object_by_name("black_state").unwrap()],
        vec![sys.object_by_name("black_state").unwrap()],
        |v| vec![v[0] + v[1]],
    );
    match verify_channels_exhaustive(&sys, &channels) {
        Err(CutVerificationError::SharedObjects(ws)) => {
            assert!(ws.iter().any(|w| w.object == "shared_scratch"));
        }
        other => panic!("hidden channel missed: {other:?}"),
    }
}

#[test]
fn e9_cut_system_keeps_local_behaviour() {
    // Cutting only aliases channel references; each side's own computation
    // is untouched.
    let (sys, channels) = snfe_object_system();
    let cut_sys = cut(&sys, &channels);
    assert_eq!(cut_sys.system.programs[0].len(), sys.programs[0].len());
    assert_eq!(cut_sys.system.programs[1].len(), sys.programs[1].len());
    // Two referencing colours per channel → four aliases.
    assert_eq!(cut_sys.aliases.len(), 4);
}

#[test]
fn ifa_and_pos_agree_on_straightline_mls_programs() {
    // For ordinary (non-interpretive) programs the two techniques agree;
    // the divergence is specifically about kernels. Upward flow: both OK.
    use sep_flow::{certify, parse};
    use sep_policy::lattice::TwoPoint;
    use std::collections::HashMap;

    let program = parse(
        "var l : low; var h : high;
         h := l + 1;
         l := l * 2;",
    )
    .unwrap();
    let classes = HashMap::from([
        ("low".to_string(), TwoPoint::Low),
        ("high".to_string(), TwoPoint::High),
    ]);
    assert!(certify(&program, &classes).unwrap().is_empty());

    let leaky = parse("var l : low; var h : high; l := h;").unwrap();
    assert_eq!(certify(&leaky, &classes).unwrap().len(), 1);
}

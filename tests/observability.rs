//! Observability is evidence, not state: identical runs produce
//! byte-identical reports, and instrumentation can neither perturb the
//! machine nor change a verification verdict.

use sep_bench::{checker_run_json, memory_workload};
use sep_kernel::config::{KernelConfig, RegimeSpec};
use sep_kernel::kernel::SeparationKernel;
use sep_kernel::verify::{CheckerSelect, KernelSystem};
use sep_model::check::SeparabilityChecker;
use sep_obs::RunReport;

const SENDER: &str = "
start:  MOV #0, R0
        MOV #msg, R1
        MOV #4, R2
        TRAP 1
        TRAP 0
        BR start
msg:    .byte 1, 2, 3, 4
        .even
";

const RECEIVER: &str = "
start:  MOV #0, R0
        MOV #buf, R1
        MOV #8, R2
        TRAP 2
        TRAP 0
        BR start
buf:    .blkw 4
";

fn channel_workload() -> KernelConfig {
    KernelConfig::new(vec![
        RegimeSpec::assembly("tx", SENDER),
        RegimeSpec::assembly("rx", RECEIVER),
    ])
    .with_channel(0, 1, 4)
}

fn run_report(steps: u64) -> String {
    let mut k = SeparationKernel::boot(channel_workload().with_trace(64)).unwrap();
    k.run(steps);
    let trace = k.machine.obs.disable_tracing();
    RunReport::new("observability_test")
        .param("steps", steps)
        .run_with_trace("kernel", &k.machine.obs.metrics, trace.as_ref(), 16)
        .render()
}

#[test]
fn identical_runs_render_byte_identical_reports() {
    let a = run_report(1500);
    let b = run_report(1500);
    assert_eq!(a, b);
    // And the report is not trivially empty: it carries real traffic.
    assert!(a.contains("\"schema\": \"sep-obs/v1\""));
    assert!(a.contains("\"tx\""));
    assert!(a.contains("\"rx\""));
}

#[test]
fn report_matches_the_pre_scheduler_refactor_golden() {
    // `tests/golden/observability_roundrobin.json` was rendered before the
    // scheduler layer existed. The default (round-robin) kernel must still
    // produce it byte for byte — the only permitted differences are the
    // counters later PRs added to the schema (`interrupts_discarded` from
    // the scheduler PR, `restarts`/`retransmissions` from the fault PR), so
    // those lines are filtered from the fresh report before comparing.
    let golden = include_str!("golden/observability_roundrobin.json");
    let fresh: String = run_report(1500)
        .lines()
        .filter(|l| {
            !l.contains("\"interrupts_discarded\"")
                && !l.contains("\"restarts\"")
                && !l.contains("\"retransmissions\"")
        })
        .map(|l| format!("{l}\n"))
        .collect();
    for field in ["interrupts_discarded", "restarts", "retransmissions"] {
        assert!(!golden.contains(field), "golden predates the {field} field");
    }
    assert_eq!(golden, fresh);
}

#[test]
fn tracing_does_not_perturb_execution() {
    // The recorder hangs off the machine but is not machine state: a traced
    // run and an untraced run retire the same instructions, take the same
    // traps, and move the same bytes.
    let run = |cfg: KernelConfig| {
        let mut k = SeparationKernel::boot(cfg).unwrap();
        k.run(2000);
        (
            k.machine.instructions,
            k.stats.swaps,
            k.stats.messages_sent,
            k.machine.obs.metrics.totals.channel_bytes,
        )
    };
    let untraced = run(channel_workload());
    let traced = run(channel_workload().with_trace(8));
    assert_eq!(untraced, traced);
}

#[test]
fn tracing_does_not_change_the_separability_verdict() {
    // Instrumentation lives outside the state vector the Proof of
    // Separability quantifies over, so enabling it cannot flip a verdict.
    let workload = || {
        KernelConfig::new(vec![
            RegimeSpec::assembly(
                "a",
                "start: INC R1\n BIC #0o177774, R1\n TRAP 0\n BR start\n",
            ),
            RegimeSpec::assembly(
                "b",
                "start: INC R2\n BIC #0o177774, R2\n TRAP 0\n BR start\n",
            ),
        ])
    };
    let verdict = |cfg: KernelConfig| {
        let sys = KernelSystem::new(cfg).unwrap();
        let abstractions = sys.abstractions();
        let report = SeparabilityChecker::new().check(&sys, &abstractions);
        (report.is_separable(), report.states, report.total_checks())
    };
    let plain = verdict(workload());
    let traced = verdict(workload().with_trace(32));
    assert!(plain.0, "baseline workload must verify");
    assert_eq!(plain, traced);

    // The frontier-sharded checker is no more perturbable than the
    // sequential one: with the recorder attached its report still equals
    // the untraced sequential report.
    let sharded = |cfg: KernelConfig| {
        let sys = KernelSystem::new(cfg).unwrap();
        sys.check_with(&CheckerSelect::Sharded { shards: 4 })
    };
    let seq_plain = {
        let sys = KernelSystem::new(workload()).unwrap();
        sys.check_with(&CheckerSelect::Sequential)
    };
    assert_eq!(seq_plain, sharded(workload()));
    assert_eq!(seq_plain, sharded(workload().with_trace(32)));
}

#[test]
fn sharded_checker_reports_are_byte_identical_across_runs() {
    // The deterministic sections of an E2-style run report — counts,
    // verdicts, per-shard ownership — must not vary run to run or depend
    // on scheduler interleaving. (Wall-clock timing is exactly what the
    // `wall` section exists to segregate, so none is attached here.)
    let render = || {
        let sys = KernelSystem::new(memory_workload(2)).unwrap();
        let (report, stats) = sys.check_with_stats(&CheckerSelect::Sharded { shards: 4 });
        let stats = stats.expect("sharded runs report stats");
        RunReport::new("e2_pos_verify_test")
            .param("shards", 4u64)
            .run_custom("memory_2", checker_run_json(&report, Some(&stats)))
            .render()
    };
    let a = render();
    assert_eq!(a, render());
    assert_eq!(a, render());
    assert!(a.contains("\"per_shard\""));
    assert!(a.contains("\"separable\": true"));
}

#[test]
fn metrics_agree_with_kernel_stats() {
    // Two books, one truth: the kernel's own stats and the observability
    // counters are maintained independently and must agree.
    let mut k = SeparationKernel::boot(channel_workload()).unwrap();
    k.run(3000);
    let totals = &k.machine.obs.metrics.totals;
    assert_eq!(totals.switches, k.stats.swaps);
    assert_eq!(totals.instructions, k.machine.instructions);
    let sent: u64 = k
        .machine
        .obs
        .metrics
        .regimes()
        .iter()
        .map(|(_, c)| c.messages_sent)
        .sum();
    assert_eq!(sent, k.stats.messages_sent);
    assert!(
        totals.messages > 0,
        "workload must actually exchange messages"
    );
    // Per-regime attribution covers the whole machine run.
    let per_regime: u64 = k
        .machine
        .obs
        .metrics
        .regimes()
        .iter()
        .map(|(_, c)| c.instructions)
        .sum();
    assert_eq!(per_regime, k.machine.instructions);
}

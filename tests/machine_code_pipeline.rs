//! The machine-code pipeline of `examples/assembly_regimes.rs` as a test:
//! three PDP-11 regimes — serial producer, uppercasing filter, serial
//! consumer — connected only by kernel channels.

use sep_kernel::config::{DeviceSpec, KernelConfig, RegimeSpec};
use sep_kernel::kernel::SeparationKernel;

const PRODUCER: &str = "
start:  MOV #buf, R1
        MOV #0, R5
fill:   BIT #0o200, @#0o160000
        BEQ flush
        MOVB @#0o160002, (R1)+
        INC R5
        CMP R5, #8
        BNE fill
flush:  TST R5
        BEQ yield
resend: MOV #0, R0
        MOV #buf, R1
        MOV R5, R2
        TRAP 1
        TST R0
        BEQ yield           ; accepted
        TRAP 0              ; channel full: yield, then retry
        BR resend
yield:  TRAP 0
        BR start
buf:    .blkw 4
";

const FILTER: &str = "
start:  MOV #0, R0
        MOV #buf, R1
        MOV #8, R2
        TRAP 2
        TST R0
        BNE yield
        MOV R2, R5
        MOV #buf, R1
loop:   TST R5
        BEQ send
        MOVB (R1), R3
        CMPB R3, #'a
        BLT next
        CMPB R3, #'z
        BGT next
        SUB #32, R3
        MOVB R3, (R1)
next:   INC R1
        DEC R5
        BR loop
send:   MOV #1, R0
        MOV #buf, R1
        TRAP 1
yield:  TRAP 0
        BR start
buf:    .blkw 4
";

const CONSUMER: &str = "
start:  MOV #1, R0
        MOV #buf, R1
        MOV #8, R2
        TRAP 2
        TST R0
        BNE yield
        MOV R2, R5
        MOV #buf, R1
putc:   TST R5
        BEQ yield
wait:   BIT #0o200, @#0o160004
        BEQ wait
        MOVB (R1)+, @#0o160006
        DEC R5
        BR putc
yield:  TRAP 0
        BR start
buf:    .blkw 4
";

fn pipeline() -> SeparationKernel {
    let cfg = KernelConfig::new(vec![
        RegimeSpec::assembly("producer", PRODUCER).with_device(DeviceSpec::Serial),
        RegimeSpec::assembly("filter", FILTER),
        RegimeSpec::assembly("consumer", CONSUMER).with_device(DeviceSpec::Serial),
    ])
    .with_channel(0, 1, 4)
    .with_channel(1, 2, 4);
    SeparationKernel::boot(cfg).unwrap()
}

#[test]
fn uppercases_host_traffic_end_to_end() {
    let mut k = pipeline();
    k.host_send_serial(0, b"mixed Case Text 123!");
    k.run(6000);
    assert_eq!(k.host_take_serial_output(2), b"MIXED CASE TEXT 123!");
}

#[test]
fn pipeline_handles_trickled_input() {
    // Bytes arriving one at a time across the run still come out in order.
    let mut k = pipeline();
    let message = b"one byte at a time";
    let mut sent = 0usize;
    for step in 0..12_000u64 {
        if step % 40 == 0 && sent < message.len() {
            k.host_send_serial(0, &message[sent..sent + 1]);
            sent += 1;
        }
        k.step();
    }
    assert_eq!(k.host_take_serial_output(2), b"ONE BYTE AT A TIME");
}

#[test]
fn pipeline_survives_bursts_beyond_channel_capacity() {
    // A burst larger than buffers: nothing is lost — the channels'
    // back-pressure (Full status) makes the producer retry.
    let mut k = pipeline();
    let burst: Vec<u8> = (0..64).map(|i| b'a' + (i % 26)).collect();
    k.host_send_serial(0, &burst);
    k.run(40_000);
    let out = k.host_take_serial_output(2);
    let expected: Vec<u8> = burst.iter().map(|b| b.to_ascii_uppercase()).collect();
    assert_eq!(out, expected);
}

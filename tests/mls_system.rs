//! End-to-end multilevel service: auth + file-server + printer-server
//! composed on the separation kernel, exercised through user terminals.

use sep_components::auth::AuthServer;
use sep_components::fileserver::{request as fsreq, FileServer, FsClient};
use sep_components::printserver::PrintServer;
use sep_components::proto::{MsgReader, Status};
use sep_components::util::{Sink, Source};
use sep_core::spec::SystemSpec;
use sep_core::traced::{PortLog, Traced};
use sep_policy::level::{Classification, SecurityLevel};

fn secret() -> SecurityLevel {
    SecurityLevel::plain(Classification::Secret)
}

fn unclass() -> SecurityLevel {
    SecurityLevel::plain(Classification::Unclassified)
}

/// The full MLS service: two user terminals (scripted sources), the auth
/// server, the file server, the print server, and the physical printer
/// (sink). Returns the kernel plus the printer-paper log and the users'
/// response logs.
fn build_system() -> (SystemSpec, PortLog, Vec<PortLog>) {
    let mut spec = SystemSpec::new();

    // Scripted user sessions: spool a file, then print it.
    let low_script = [
        fsreq::create("spool/low-report", unclass()),
        fsreq::write("spool/low-report", unclass(), b"low body"),
        PrintServer::submit_request("spool/low-report", unclass()),
    ];
    let high_script = [
        fsreq::create("spool/high-report", secret()),
        fsreq::write("spool/high-report", secret(), b"high body"),
        fsreq::read("spool/low-report", unclass()), // read down: fine
        PrintServer::submit_request("spool/high-report", secret()),
    ];

    // Users talk to the FS on their dedicated lines and to the print
    // server on others; the scripted Source just emits frames in order, so
    // each user gets one source per service line.
    let low_fs = spec.add(
        "low-fs-line",
        Box::new(Source::new("low-fs-line", low_script[..2].to_vec())),
    );
    let high_fs = spec.add(
        "high-fs-line",
        Box::new(Source::new("high-fs-line", high_script[..3].to_vec())),
    );
    let low_ps = spec.add(
        "low-ps-line",
        Box::new(Source::new("low-ps-line", vec![low_script[2].clone()])),
    );
    let high_ps = spec.add(
        "high-ps-line",
        Box::new(Source::new("high-ps-line", vec![high_script[3].clone()])),
    );

    let fs = FileServer::new(vec![
        FsClient {
            name: "low".into(),
            level: unclass(),
            special_delete: false,
        },
        FsClient {
            name: "high".into(),
            level: secret(),
            special_delete: false,
        },
        FsClient {
            name: "printer".into(),
            level: SecurityLevel::plain(Classification::TopSecret),
            special_delete: true,
        },
    ]);
    let (fs_traced, _fs_log) = Traced::new(Box::new(fs));
    let fs_id = spec.add("file-server", fs_traced);

    let (ps_traced, _ps_log) = Traced::new(Box::new(PrintServer::new(2)));
    let ps_id = spec.add("print-server", ps_traced);

    let (paper_traced, paper_log) = Traced::new(Box::new(Sink::new("paper")));
    let paper = spec.add("paper", paper_traced);

    let (low_rsp_traced, low_rsp_log) = Traced::new(Box::new(Sink::new("low-rsp")));
    let low_rsp = spec.add("low-rsp", low_rsp_traced);
    let (high_rsp_traced, high_rsp_log) = Traced::new(Box::new(Sink::new("high-rsp")));
    let high_rsp = spec.add("high-rsp", high_rsp_traced);

    // Dedicated lines, as the idealized design prescribes.
    spec.connect(low_fs, "out", fs_id, "c0.req", 16);
    spec.connect(high_fs, "out", fs_id, "c1.req", 16);
    spec.connect(fs_id, "c0.rsp", low_rsp, "in", 16);
    spec.connect(fs_id, "c1.rsp", high_rsp, "in", 16);
    spec.connect(low_ps, "out", ps_id, "c0.submit", 16);
    spec.connect(high_ps, "out", ps_id, "c1.submit", 16);
    spec.connect(ps_id, "fs.req", fs_id, "c2.req", 16);
    spec.connect(fs_id, "c2.rsp", ps_id, "fs.rsp", 16);
    spec.connect(ps_id, "paper", paper, "in", 32);
    (spec, paper_log, vec![low_rsp_log, high_rsp_log])
}

#[test]
fn mls_print_pipeline_on_the_kernel() {
    let (spec, paper_log, _user_logs) = build_system();
    let n = spec.len() as u64;
    let mut kernel = spec.build_kernel().unwrap();
    kernel.run(120 * n);

    let paper: Vec<u8> = paper_log
        .borrow()
        .get("in/rx")
        .cloned()
        .unwrap_or_default()
        .concat();
    let text = String::from_utf8(paper).unwrap();
    // Both jobs printed with correct banners, never interleaved.
    assert!(text.contains("CLASSIFICATION: UNCLASSIFIED"));
    assert!(text.contains("low body"));
    assert!(text.contains("CLASSIFICATION: SECRET"));
    assert!(text.contains("high body"));
    let low_pos = text.find("low body").unwrap();
    let low_end = text[low_pos..].find("END OF JOB").unwrap() + low_pos;
    let high_pos = text.find("high body").unwrap();
    assert!(high_pos > low_end || high_pos + 9 < low_pos);
}

#[test]
fn mls_policy_enforced_across_the_pipeline() {
    let (spec, _paper, user_logs) = build_system();
    let n = spec.len() as u64;
    let mut kernel = spec.build_kernel().unwrap();
    kernel.run(120 * n);

    // The high user's read-down succeeded: third response carries data.
    let high_rsps = user_logs[1]
        .borrow()
        .get("in/rx")
        .cloned()
        .unwrap_or_default();
    assert_eq!(high_rsps.len(), 3);
    let (status, payload) = fsreq::decode(&high_rsps[2]);
    assert_eq!(status, Status::Ok);
    let mut r = MsgReader::new(payload);
    assert_eq!(r.bytes().unwrap(), b"low body");
}

#[test]
fn mls_same_results_on_distributed_substrate() {
    let (spec, paper_log, _logs) = build_system();
    let mut net = spec.build_network();
    net.run(160);
    let paper: Vec<u8> = paper_log
        .borrow()
        .get("in/rx")
        .cloned()
        .unwrap_or_default()
        .concat();
    let text = String::from_utf8(paper).unwrap();
    assert!(text.contains("low body") && text.contains("high body"));
}

#[test]
fn auth_component_integrates() {
    // Terminal logs in and a server resolves the token, across the kernel.
    let mut spec = SystemSpec::new();
    let term = spec.add(
        "terminal",
        Box::new(Source::new(
            "terminal",
            vec![AuthServer::login_request("alice", "wonderland")],
        )),
    );
    let mut auth = AuthServer::new(1);
    auth.add_user("alice", "wonderland", secret());
    let auth_id = spec.add("auth", Box::new(auth));
    let (rsp_traced, rsp_log) = Traced::new(Box::new(Sink::new("rsp")));
    let rsp = spec.add("rsp", rsp_traced);
    spec.connect(term, "out", auth_id, "t0.req", 4);
    spec.connect(auth_id, "t0.rsp", rsp, "in", 4);
    let mut kernel = spec.build_kernel().unwrap();
    kernel.run(40);
    let rsps = rsp_log.borrow().get("in/rx").cloned().unwrap_or_default();
    assert_eq!(rsps.len(), 1);
    let mut r = MsgReader::new(&rsps[0]);
    assert_eq!(r.u8().unwrap(), Status::Ok.code());
    let _token = r.u32().unwrap();
    assert_eq!(r.u8().unwrap(), Classification::Secret.rank());
}

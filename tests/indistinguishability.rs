//! Experiment E6's core claim as a test: the same component suite, run on
//! the physically distributed network and on the separation kernel,
//! observes identical per-port streams.

use sep_components::snfe::{BlackComponent, Censor, CensorPolicy, CryptoBox, RedComponent};
use sep_components::util::{Sink, Source};
use sep_core::spec::SystemSpec;
use sep_core::traced::{logs_equal, PortLog, Traced};

/// Builds the SNFE as a SystemSpec with every component traced; returns the
/// spec and the logs in component order.
fn traced_snfe(host_frames: Vec<Vec<u8>>) -> (SystemSpec, Vec<PortLog>) {
    let mut spec = SystemSpec::new();
    let mut logs = Vec::new();
    let mut add = |spec: &mut SystemSpec, name: &str, c: Box<dyn sep_components::Component>| {
        let (traced, log) = Traced::new(c);
        logs.push(log);
        spec.add(name, traced)
    };
    let host = add(
        &mut spec,
        "host",
        Box::new(Source::new("host", host_frames)),
    );
    let red = add(&mut spec, "red", Box::new(RedComponent::new(1)));
    let crypto = add(&mut spec, "crypto", Box::new(CryptoBox::new([9, 8, 7, 6])));
    let censor = add(
        &mut spec,
        "censor",
        Box::new(Censor::new(CensorPolicy::canonical())),
    );
    let black = add(&mut spec, "black", Box::new(BlackComponent::new()));
    let net = add(&mut spec, "network", Box::new(Sink::new("network")));

    spec.connect(host, "out", red, "host.in", 32);
    spec.connect(red, "crypto.out", crypto, "in", 32);
    spec.connect(crypto, "out", black, "crypto.in", 32);
    spec.connect(red, "bypass.out", censor, "red.in", 32);
    spec.connect(censor, "black.out", black, "bypass.in", 32);
    spec.connect(black, "net.out", net, "in", 32);
    (spec, logs)
}

fn frames() -> Vec<Vec<u8>> {
    (0..6u8)
        .map(|i| format!("host message number {i}").into_bytes())
        .collect()
}

#[test]
fn snfe_observations_identical_on_both_substrates() {
    // Distributed run.
    let (spec_a, logs_a) = traced_snfe(frames());
    let mut net = spec_a.build_network();
    net.run(60);

    // Kernel run (fresh spec: logs must not mix).
    let (spec_b, logs_b) = traced_snfe(frames());
    let mut kernel = spec_b.build_kernel().unwrap();
    kernel.run(60 * 6); // one kernel step per component per round

    for (i, (a, b)) in logs_a.iter().zip(logs_b.iter()).enumerate() {
        assert!(
            logs_equal(a, b).is_ok(),
            "component {i} distinguishes the substrates: {:?}",
            logs_equal(a, b)
        );
    }
    // And traffic actually flowed.
    let net_rx = logs_a[5]
        .borrow()
        .get("in/rx")
        .map(|v| v.len())
        .unwrap_or(0);
    assert_eq!(net_rx, 6, "all six frames reached the network");
}

#[test]
fn tampered_kernel_is_distinguished() {
    // Sanity for the method: if the kernel delivers *different* traffic
    // (here: we sabotage by dropping the censor link capacity to 1 so
    // back-pressure changes behaviour), the logs differ.
    let (spec_a, logs_a) = traced_snfe(frames());
    let mut net = spec_a.build_network();
    net.run(60);

    let (mut spec_b, logs_b) = {
        let mut spec = SystemSpec::new();
        let mut logs = Vec::new();
        let mut add = |spec: &mut SystemSpec, name: &str, c: Box<dyn sep_components::Component>| {
            let (traced, log) = Traced::new(c);
            logs.push(log);
            spec.add(name, traced)
        };
        let host = add(&mut spec, "host", Box::new(Source::new("host", frames())));
        let red = add(&mut spec, "red", Box::new(RedComponent::new(1)));
        let crypto = add(&mut spec, "crypto", Box::new(CryptoBox::new([9, 8, 7, 6])));
        // Sabotage: a different censor policy on the kernel realization.
        let censor = add(
            &mut spec,
            "censor",
            Box::new(Censor::new(CensorPolicy::off())),
        );
        let black = add(&mut spec, "black", Box::new(BlackComponent::new()));
        let net_ = add(&mut spec, "network", Box::new(Sink::new("network")));
        spec.connect(host, "out", red, "host.in", 32);
        spec.connect(red, "crypto.out", crypto, "in", 32);
        spec.connect(crypto, "out", black, "crypto.in", 32);
        spec.connect(red, "bypass.out", censor, "red.in", 32);
        spec.connect(censor, "black.out", black, "bypass.in", 32);
        spec.connect(black, "net.out", net_, "in", 32);
        (spec, logs)
    };
    let mut kernel = spec_b.build_kernel().unwrap();
    kernel.run(360);
    let _ = &mut spec_b;

    // Honest red + different censor policy: pad is zero either way, so the
    // *pass-through* header bytes still match... but `off` forwards frames
    // unparsed, so canonicalized vs raw headers agree only when pad == 0.
    // Use the malicious pad channel to force a visible difference.
    let differs = logs_a
        .iter()
        .zip(logs_b.iter())
        .any(|(a, b)| logs_equal(a, b).is_err());
    // With honest red both policies behave identically — the method only
    // reports a difference when there IS one.
    assert!(!differs, "honest traffic is policy-invariant");
}

#[test]
fn guard_pipeline_identical_on_both_substrates() {
    use sep_components::guard::{DirtyWordOfficer, Guard};

    let build = || {
        let mut spec = SystemSpec::new();
        let mut logs = Vec::new();
        let mut add = |spec: &mut SystemSpec, name: &str, c: Box<dyn sep_components::Component>| {
            let (traced, log) = Traced::new(c);
            logs.push(log);
            spec.add(name, traced)
        };
        let low = add(
            &mut spec,
            "low-sys",
            Box::new(Source::new(
                "low-sys",
                vec![b"query 1".to_vec(), b"query 2".to_vec()],
            )),
        );
        let high = add(
            &mut spec,
            "high-sys",
            Box::new(Source::new(
                "high-sys",
                vec![b"clean answer".to_vec(), b"the SECRET one".to_vec()],
            )),
        );
        let guard = add(
            &mut spec,
            "guard",
            Box::new(Guard::new(Box::new(DirtyWordOfficer::new(&["SECRET"])))),
        );
        let high_sink = add(&mut spec, "high-sink", Box::new(Sink::new("high-sink")));
        let low_sink = add(&mut spec, "low-sink", Box::new(Sink::new("low-sink")));
        spec.connect(low, "out", guard, "low.in", 8);
        spec.connect(high, "out", guard, "high.in", 8);
        spec.connect(guard, "high.out", high_sink, "in", 8);
        spec.connect(guard, "low.out", low_sink, "in", 8);
        (spec, logs)
    };

    let (spec_a, logs_a) = build();
    let mut net = spec_a.build_network();
    net.run(30);

    let (spec_b, logs_b) = build();
    let mut kernel = spec_b.build_kernel().unwrap();
    kernel.run(30 * 5);

    for (a, b) in logs_a.iter().zip(logs_b.iter()) {
        assert!(logs_equal(a, b).is_ok(), "{:?}", logs_equal(a, b));
    }
    // The dirty-word message was withheld on both substrates.
    let low_rx = logs_a[4].borrow().get("in/rx").cloned().unwrap_or_default();
    assert_eq!(low_rx, vec![b"clean answer".to_vec()]);
}

//! Noninterference for the multilevel file-server.
//!
//! The paper: "It turns out that the role of a multilevel secure file-server
//! matches the security model developed at SRI [Feiertag et al.] and this
//! model therefore provides both a specification for the security
//! requirements of the file-server and the justification for its
//! verification."
//!
//! Feiertag's model is input-tagged: outputs at level L must depend only on
//! inputs at levels ⊑ L. We check exactly that, exhaustively over a small
//! request alphabet: for *every* pair of HIGH request sequences, the LOW
//! client's complete response stream is identical.

use sep_components::component::TestIo;
use sep_components::fileserver::{request as fsreq, FileServer, FsClient};
use sep_covert::analysis::probe_interference;
use sep_policy::level::{Classification, SecurityLevel};

fn secret() -> SecurityLevel {
    SecurityLevel::plain(Classification::Secret)
}

fn unclass() -> SecurityLevel {
    SecurityLevel::plain(Classification::Unclassified)
}

/// The HIGH request alphabet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum HighReq {
    Noop,
    Create,
    Write,
    Delete,
    List,
    ReadDown,
}

impl HighReq {
    const ALL: [HighReq; 6] = [
        HighReq::Noop,
        HighReq::Create,
        HighReq::Write,
        HighReq::Delete,
        HighReq::List,
        HighReq::ReadDown,
    ];

    fn frame(self) -> Option<Vec<u8>> {
        match self {
            HighReq::Noop => None,
            HighReq::Create => Some(fsreq::create("hfile", secret())),
            HighReq::Write => Some(fsreq::write("hfile", secret(), b"classified")),
            HighReq::Delete => Some(fsreq::delete("hfile", secret())),
            HighReq::List => Some(fsreq::list()),
            HighReq::ReadDown => Some(fsreq::read("lfile", unclass())),
        }
    }
}

/// Runs the server with a fixed LOW probe sequence interleaved with the
/// given HIGH sequence; returns LOW's complete response stream.
fn low_observations(high_seq: &[HighReq]) -> Vec<Vec<u8>> {
    let mut fs = FileServer::new(vec![
        FsClient {
            name: "low".into(),
            level: unclass(),
            special_delete: false,
        },
        FsClient {
            name: "high".into(),
            level: secret(),
            special_delete: false,
        },
    ]);
    // LOW's fixed probe: own-level traffic, error paths, and — crucially —
    // *blind upward* operations probing the HIGH namespace: their statuses
    // must be masked, or HIGH's create/delete pattern becomes a storage
    // channel (found and fixed during review).
    let low_probe = [
        fsreq::create("lfile", unclass()),
        fsreq::write("lfile", unclass(), b"public"),
        fsreq::list(),
        fsreq::read("lfile", unclass()),
        fsreq::create("lfile", unclass()),
        fsreq::create("hfile", secret()), // blind create-up collision probe
        fsreq::write("hfile", secret(), b"probe"), // blind write-up existence probe
        fsreq::append("hfile", secret(), b"p2"), // blind append-up existence probe
        fsreq::list(),
    ];
    let mut low_out = Vec::new();
    let rounds = low_probe.len().max(high_seq.len());
    for i in 0..rounds {
        let mut io = TestIo::new();
        // HIGH acts first in the round — its effects, if any leak existed,
        // would be visible to LOW's same-round request.
        if let Some(frame) = high_seq.get(i).and_then(|r| r.frame()) {
            io.push("c1.req", &frame);
        }
        if let Some(frame) = low_probe.get(i) {
            io.push("c0.req", frame);
        }
        io.run(&mut fs, 1);
        low_out.extend(io.take_sent("c0.rsp"));
    }
    low_out
}

#[test]
fn low_view_is_invariant_under_all_high_behaviours() {
    // Every HIGH sequence of length 3 over the 6-symbol alphabet: 216
    // behaviours, compared pairwise against the first via the probe.
    let mut behaviours = Vec::new();
    for a in HighReq::ALL {
        for b in HighReq::ALL {
            for c in HighReq::ALL {
                behaviours.push([a, b, c]);
            }
        }
    }
    let report = probe_interference(&behaviours, |seq| low_observations(seq));
    assert!(
        !report.interferes,
        "HIGH activity visible to LOW at observation {:?}",
        report.first_difference
    );
    assert!(report.compared >= 6, "the probe produced observations");
}

#[test]
fn high_view_does_change_with_high_behaviour() {
    // Sanity: the probe is sensitive — HIGH's own responses differ between
    // behaviours, so an identical-LOW result is not vacuous.
    let run_high = |seq: &[HighReq; 3]| -> Vec<Vec<u8>> {
        let mut fs = FileServer::new(vec![FsClient {
            name: "high".into(),
            level: secret(),
            special_delete: false,
        }]);
        let mut out = Vec::new();
        for r in seq {
            let mut io = TestIo::new();
            if let Some(frame) = r.frame() {
                io.push("c0.req", &frame);
            }
            io.run(&mut fs, 1);
            out.extend(io.take_sent("c0.rsp"));
        }
        out
    };
    let a = run_high(&[HighReq::Create, HighReq::Write, HighReq::List]);
    let b = run_high(&[HighReq::Noop, HighReq::Noop, HighReq::List]);
    assert_ne!(a, b);
}

#[test]
fn a_leaky_server_would_be_caught() {
    // Demonstrate the method's discrimination: a variant where LOW's LIST
    // shows all levels (a one-line "bug") interferes immediately.
    let leaky_observations = |seq: &[HighReq; 3]| -> Vec<Vec<u8>> {
        // Simulate the leak by running LOW's list at a clearance that sees
        // everything (as a buggy, dominance-ignoring LIST would).
        let mut fs = FileServer::new(vec![
            FsClient {
                name: "low-with-buggy-list".into(),
                level: secret(), // the "bug": LIST uses the wrong level
                special_delete: false,
            },
            FsClient {
                name: "high".into(),
                level: secret(),
                special_delete: false,
            },
        ]);
        let mut out = Vec::new();
        for r in seq {
            let mut io = TestIo::new();
            if let Some(frame) = r.frame() {
                io.push("c1.req", &frame);
            }
            io.push("c0.req", &fsreq::list());
            io.run(&mut fs, 1);
            out.extend(io.take_sent("c0.rsp"));
        }
        out
    };
    let behaviours = [
        [HighReq::Noop, HighReq::Noop, HighReq::Noop],
        [HighReq::Create, HighReq::Write, HighReq::Noop],
    ];
    let report = probe_interference(&behaviours, |seq| leaky_observations(seq));
    assert!(report.interferes, "the buggy LIST leaks HIGH activity");
}
